//! Crash-consistent durability: checkpoints, WAL replay, and a durable
//! maintainer wrapper.
//!
//! The paper's maintenance scheme is deliberately deterministic: given the
//! same batch stream, the same RNG seeds and the same engine, every run
//! produces bit-identical bubbles (DESIGN.md §9–10). This module turns
//! that determinism into crash consistency. The write-ahead log
//! ([`idb_store::wal`]) records each applied batch together with its
//! maintenance decision and RNG seed; periodic checkpoints capture the
//! full store + summarization state in the checksummed v2 snapshot
//! format; and [`recover`] rebuilds the exact in-memory state by loading
//! the newest usable checkpoint and replaying the WAL tail through the
//! very same `try_apply_batch`/`maintain` code the live path runs.
//!
//! A torn WAL tail (the crash happened mid-commit) is truncated, not an
//! error: those batches were never acknowledged as durable. Everything
//! else that can go wrong — bit damage in a mid-log record, a checkpoint
//! that fails its checksum, a replay that does not apply — surfaces as a
//! typed [`RecoveryError`], never a panic.
//!
//! [`DurableMaintainer`] is the live-side wrapper: validate → log → apply,
//! with group-commit batching, bounded retry-with-backoff on transient
//! sink errors, and graceful degradation (keep running in memory,
//! surface [`Health::Degraded`]) when the sink is persistently down.

use crate::config::MaintainerConfig;
use crate::error::UpdateError;
use crate::incremental::{BubbleChange, IncrementalBubbles};
use idb_geometry::SearchStats;
use idb_obs::{EventKind, Obs};
use idb_store::segment::{read_chain, SegmentMedium};
use idb_store::snapshot::{
    read_frame, read_u32, read_u64, write_frame, write_u32, write_u64, SnapshotError,
};
use idb_store::wal::{read_wal, DurableSink, WalContents, WalError, WalRecord, WalWriter};
use idb_store::{Batch, PointId, PointStore, StorageBudget, StorageError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic prefix of a full checkpoint blob.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"IDBC";

/// Magic prefix of an incremental (delta) checkpoint blob: only the
/// bubbles dirtied since the newest full base are persisted; the store
/// contents are reconstructed by replaying the WAL from the base's
/// coverage.
pub const DELTA_CHECKPOINT_MAGIC: &[u8; 4] = b"IDBD";

/// Recovery failure. Torn WAL tails are *not* errors (they are truncated
/// silently, per the WAL module docs); everything here is real damage or
/// a real I/O fault.
#[derive(Debug)]
pub enum RecoveryError {
    /// Underlying I/O failure while reading or writing durable state.
    Io(io::Error),
    /// The WAL contains a structurally damaged record before its tail.
    CorruptWal {
        /// Byte offset of the damaged record.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// No checkpoint could be loaded, decoded and aligned with the WAL.
    NoUsableCheckpoint {
        /// How many checkpoints were tried.
        tried: usize,
        /// Why the last candidate was rejected.
        detail: String,
    },
    /// A WAL record did not apply cleanly on top of the checkpoint state —
    /// the log and the checkpoint disagree about history.
    Replay {
        /// Absolute sequence number of the failing record.
        record: u64,
        /// The validation error the apply path reported.
        source: UpdateError,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "recovery i/o error: {e}"),
            Self::CorruptWal { offset, detail } => {
                write!(f, "corrupt wal record at byte {offset}: {detail}")
            }
            Self::NoUsableCheckpoint { tried, detail } => {
                write!(f, "no usable checkpoint ({tried} tried): {detail}")
            }
            Self::Replay { record, source } => {
                write!(f, "wal record {record} does not replay: {source}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Replay { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Where checkpoint blobs live. Like [`DurableSink`], this is injectable
/// so the fault harness can corrupt, drop or fail checkpoints at will.
pub trait CheckpointStore {
    /// Persists the blob for checkpoint `seq` (replacing any previous blob
    /// with the same sequence number).
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn save(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()>;

    /// The sequence numbers of every stored checkpoint, in any order.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn seqs(&self) -> io::Result<Vec<u64>>;

    /// Loads the blob for checkpoint `seq`.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn load(&self, seq: u64) -> io::Result<Vec<u8>>;

    /// Whether this medium supports chunked (streaming) saves. When
    /// `false` (the default), [`DurableMaintainer`] falls back to one
    /// [`CheckpointStore::save`] call per checkpoint.
    fn supports_streaming(&self) -> bool {
        false
    }

    /// Opens a streaming save of checkpoint `seq`, discarding any
    /// abandoned stream for the same sequence. The chunks are staged:
    /// until [`CheckpointStore::finish_stream`] returns, the checkpoint
    /// must not be visible to [`CheckpointStore::seqs`] /
    /// [`CheckpointStore::load`] — a crash mid-stream must leave the
    /// previous checkpoint population intact.
    ///
    /// # Errors
    /// `Unsupported` unless the medium opts in; otherwise whatever it
    /// reports.
    fn begin_stream(&mut self, _seq: u64) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "checkpoint medium does not stream",
        ))
    }

    /// Appends one chunk to the open stream for `seq`.
    ///
    /// # Errors
    /// As [`CheckpointStore::begin_stream`].
    fn stream_chunk(&mut self, _seq: u64, _chunk: &[u8]) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "checkpoint medium does not stream",
        ))
    }

    /// Atomically publishes the staged stream for `seq` as the
    /// checkpoint blob.
    ///
    /// # Errors
    /// As [`CheckpointStore::begin_stream`].
    fn finish_stream(&mut self, _seq: u64) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "checkpoint medium does not stream",
        ))
    }

    /// Discards the staged stream for `seq`, if any. Infallible: abort is
    /// best-effort cleanup on an already-failing path.
    fn abort_stream(&mut self, _seq: u64) {}
}

/// An in-memory [`CheckpointStore`] for tests; `Clone` lets the
/// crash-consistency suite snapshot the exact checkpoint population at
/// every crash point.
#[derive(Debug, Clone, Default)]
pub struct MemCheckpoints {
    entries: Vec<(u64, Vec<u8>)>,
    /// The open streaming save, staged apart from `entries` so a "crash"
    /// (cloning the store mid-stream) never exposes a half-written blob.
    staging: Option<(u64, Vec<u8>)>,
}

impl MemCheckpoints {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes the checkpoint with sequence `seq`, if present (fault
    /// simulation: a checkpoint lost to the crash).
    pub fn remove(&mut self, seq: u64) {
        self.entries.retain(|(s, _)| *s != seq);
    }

    /// Mutable access to a stored blob (fault simulation: bit damage).
    pub fn blob_mut(&mut self, seq: u64) -> Option<&mut Vec<u8>> {
        self.entries
            .iter_mut()
            .find(|(s, _)| *s == seq)
            .map(|(_, b)| b)
    }
}

impl CheckpointStore for MemCheckpoints {
    fn save(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        self.remove(seq);
        self.entries.push((seq, bytes.to_vec()));
        Ok(())
    }

    fn seqs(&self) -> io::Result<Vec<u64>> {
        Ok(self.entries.iter().map(|(s, _)| *s).collect())
    }

    fn load(&self, seq: u64) -> io::Result<Vec<u8>> {
        self.entries
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("checkpoint {seq}")))
    }

    fn supports_streaming(&self) -> bool {
        true
    }

    fn begin_stream(&mut self, seq: u64) -> io::Result<()> {
        self.staging = Some((seq, Vec::new()));
        Ok(())
    }

    fn stream_chunk(&mut self, seq: u64, chunk: &[u8]) -> io::Result<()> {
        match &mut self.staging {
            Some((s, buf)) if *s == seq => {
                buf.extend_from_slice(chunk);
                Ok(())
            }
            _ => Err(io::Error::other(format!("no open stream for {seq}"))),
        }
    }

    fn finish_stream(&mut self, seq: u64) -> io::Result<()> {
        match self.staging.take() {
            Some((s, buf)) if s == seq => self.save(seq, &buf),
            other => {
                self.staging = other;
                Err(io::Error::other(format!("no open stream for {seq}")))
            }
        }
    }

    fn abort_stream(&mut self, seq: u64) {
        if matches!(self.staging, Some((s, _)) if s == seq) {
            self.staging = None;
        }
    }
}

/// A directory-backed [`CheckpointStore`]: one `checkpoint-<seq>.idbc`
/// file per checkpoint, written via a temp file + rename so a kill during
/// `save` never leaves a half-written blob under the final name.
#[derive(Debug, Clone)]
pub struct FsCheckpoints {
    dir: PathBuf,
}

impl FsCheckpoints {
    /// Uses (creating if needed) `dir` as the checkpoint directory.
    ///
    /// # Errors
    /// Whatever the filesystem reports.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{seq}.idbc"))
    }

    fn tmp_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!(".checkpoint-{seq}.tmp"))
    }
}

impl CheckpointStore for FsCheckpoints {
    fn save(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path(seq);
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.path(seq))
    }

    fn seqs(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("checkpoint-")
                .and_then(|s| s.strip_suffix(".idbc"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        Ok(seqs)
    }

    fn load(&self, seq: u64) -> io::Result<Vec<u8>> {
        fs::read(self.path(seq))
    }

    fn supports_streaming(&self) -> bool {
        true
    }

    fn begin_stream(&mut self, seq: u64) -> io::Result<()> {
        fs::write(self.tmp_path(seq), [])
    }

    fn stream_chunk(&mut self, seq: u64, chunk: &[u8]) -> io::Result<()> {
        use io::Write as _;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(self.tmp_path(seq))?;
        f.write_all(chunk)
    }

    fn finish_stream(&mut self, seq: u64) -> io::Result<()> {
        // The rename is the publication point: a kill anywhere earlier
        // leaves only the `.tmp`, which `seqs` never lists.
        fs::rename(self.tmp_path(seq), self.path(seq))
    }

    fn abort_stream(&mut self, seq: u64) {
        let _ = fs::remove_file(self.tmp_path(seq));
    }
}

/// Encodes a checkpoint blob: a v2 frame whose payload is
/// `seq u64 | batches_covered u64 | store snapshot | bubbles snapshot`
/// (both snapshots are themselves framed and self-delimiting).
///
/// # Errors
/// Propagates serialization I/O failures (never occurs for the in-memory
/// buffers used here, but the signature keeps the writer honest).
pub fn encode_checkpoint(
    seq: u64,
    covered: u64,
    store: &PointStore,
    bubbles: &IncrementalBubbles,
) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    write_u64(&mut payload, seq)?;
    write_u64(&mut payload, covered)?;
    store.write_snapshot(&mut payload)?;
    bubbles.write_snapshot(&mut payload)?;
    let mut out = Vec::with_capacity(payload.len() + 24);
    write_frame(&mut out, CHECKPOINT_MAGIC, &payload)?;
    Ok(out)
}

/// Decodes a checkpoint blob, validating both nested snapshots. Returns
/// `(seq, batches_covered, store, bubbles)`.
///
/// # Errors
/// [`SnapshotError`] when the frame, either nested snapshot, or the
/// trailing byte accounting is damaged.
pub fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(u64, u64, PointStore, IncrementalBubbles), SnapshotError> {
    let mut r: &[u8] = bytes;
    let Some(payload) = read_frame(&mut r, CHECKPOINT_MAGIC)? else {
        // Checkpoints never existed in the unchecksummed v1 format.
        return Err(SnapshotError::Corrupt(
            "legacy v1 framing is not valid for checkpoints".into(),
        ));
    };
    let mut cur: &[u8] = &payload;
    let seq = read_u64(&mut cur)?;
    let covered = read_u64(&mut cur)?;
    let store = PointStore::read_snapshot(&mut cur)?;
    let bubbles = IncrementalBubbles::read_snapshot(&mut cur, &store)?;
    if !cur.is_empty() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after checkpoint payload",
            cur.len()
        )));
    }
    Ok((seq, covered, store, bubbles))
}

/// A bubbles-snapshot body plus the byte span of each live bubble record.
type BodySpans = (Vec<u8>, Vec<(usize, usize)>);

/// Parses a framed bubbles snapshot into its raw body plus the byte span
/// of each live bubble record — the splice points delta checkpoints work
/// over. Record layout per `snapshot::write_body`: `seed f64×dim | n u64 |
/// ls f64×dim | ss f64 | member_count u64 | ids u32×mc`.
fn bubble_record_spans(frame: &[u8]) -> Result<BodySpans, SnapshotError> {
    let mut r: &[u8] = frame;
    let Some(body) = read_frame(&mut r, crate::snapshot::MAGIC)? else {
        return Err(SnapshotError::Corrupt(
            "legacy v1 bubble snapshots cannot be delta-spliced".into(),
        ));
    };
    // Header: dim u64 | num_bubbles u64 | probability f64 | 3 enum bytes |
    // live_count u64 — records start at byte 35.
    if body.len() < 35 {
        return Err(SnapshotError::Corrupt(
            "bubble snapshot body too short for its header".into(),
        ));
    }
    let dim = read_u64(&mut &body[0..8])? as usize;
    if dim == 0 || dim > (1 << 20) {
        return Err(SnapshotError::Corrupt(format!(
            "implausible dimensionality {dim} in bubble snapshot"
        )));
    }
    let live = read_u64(&mut &body[27..35])? as usize;
    if live > (1 << 24) {
        return Err(SnapshotError::Corrupt(format!(
            "implausible bubble count {live} in bubble snapshot"
        )));
    }
    let fixed = 16 * dim + 24;
    let mut spans = Vec::with_capacity(live);
    let mut at = 35usize;
    for slot in 0..live {
        let mc_at = at + 16 * dim + 16;
        if mc_at + 8 > body.len() {
            return Err(SnapshotError::Corrupt(format!(
                "bubble record {slot} is truncated"
            )));
        }
        let mc = read_u64(&mut &body[mc_at..mc_at + 8])? as usize;
        if mc > (1 << 32) {
            return Err(SnapshotError::Corrupt(format!(
                "implausible member count {mc} in bubble record {slot}"
            )));
        }
        let len = fixed + 4 * mc;
        if at + len > body.len() {
            return Err(SnapshotError::Corrupt(format!(
                "bubble record {slot} overruns the body"
            )));
        }
        spans.push((at, at + len));
        at += len;
    }
    if at != body.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the bubble records",
            body.len() - at
        )));
    }
    Ok((body, spans))
}

/// Encodes an incremental (delta) checkpoint: a v2 frame whose payload is
/// `seq | covered | base_seq | base_covered | live_count | dirty_count |
/// (slot u32 | record_len u64 | record bytes)×` — only the bubble records
/// in `dirty` (slots dirtied since the full checkpoint `base_seq`, which
/// covered `base_covered` batches) are persisted. [`decode_delta_checkpoint`]
/// reconstructs the full state from the base blob plus the WAL records in
/// `[base_covered, covered)`.
///
/// # Errors
/// When a dirty slot is out of range for the live population (a dirty-
/// tracking bug, surfaced as a typed error rather than a bad blob).
pub fn encode_delta_checkpoint(
    seq: u64,
    covered: u64,
    base_seq: u64,
    base_covered: u64,
    bubbles: &IncrementalBubbles,
    dirty: &BTreeSet<u32>,
) -> io::Result<Vec<u8>> {
    let mut snap = Vec::new();
    bubbles.write_snapshot(&mut snap)?;
    let (body, spans) = bubble_record_spans(&snap)
        .map_err(|e| io::Error::other(format!("own snapshot failed to parse: {e}")))?;
    let live = spans.len();
    let mut payload = Vec::new();
    write_u64(&mut payload, seq)?;
    write_u64(&mut payload, covered)?;
    write_u64(&mut payload, base_seq)?;
    write_u64(&mut payload, base_covered)?;
    write_u64(&mut payload, live as u64)?;
    write_u64(&mut payload, dirty.len() as u64)?;
    for &slot in dirty {
        let (start, end) = *spans.get(slot as usize).ok_or_else(|| {
            io::Error::other(format!("dirty slot {slot} out of range ({live} live)"))
        })?;
        write_u32(&mut payload, slot)?;
        write_u64(&mut payload, (end - start) as u64)?;
        payload.extend_from_slice(&body[start..end]);
    }
    let mut out = Vec::with_capacity(payload.len() + 24);
    write_frame(&mut out, DELTA_CHECKPOINT_MAGIC, &payload)?;
    Ok(out)
}

/// The `base_seq` a delta checkpoint builds on, without decoding the rest.
///
/// # Errors
/// [`SnapshotError`] when the frame is damaged or not a delta checkpoint.
pub fn delta_base_seq(bytes: &[u8]) -> Result<u64, SnapshotError> {
    let mut r: &[u8] = bytes;
    let Some(payload) = read_frame(&mut r, DELTA_CHECKPOINT_MAGIC)? else {
        return Err(SnapshotError::Corrupt(
            "legacy v1 framing is not valid for delta checkpoints".into(),
        ));
    };
    let mut cur: &[u8] = &payload;
    let _seq = read_u64(&mut cur)?;
    let _covered = read_u64(&mut cur)?;
    Ok(read_u64(&mut cur)?)
}

/// Decodes a delta checkpoint against its full base blob and the WAL it
/// was logged into: the base's store is rolled forward by replaying the
/// logged batches in `[base_covered, covered)` (deletes then inserts per
/// record, exactly the live path's order, so the free list is
/// bit-identical), the dirty bubble records are spliced over the base's
/// snapshot body, and the result is validated by the ordinary snapshot
/// reader. Returns `(seq, covered, store, bubbles)`.
///
/// # Errors
/// [`SnapshotError`] when either frame is damaged, the base does not
/// match what the delta claims, the WAL no longer covers
/// `[base_covered, covered)`, or the spliced snapshot fails validation.
pub fn decode_delta_checkpoint(
    bytes: &[u8],
    base: &[u8],
    wal_base: u64,
    wal_records: &[WalRecord],
) -> Result<(u64, u64, PointStore, IncrementalBubbles), SnapshotError> {
    let mut r: &[u8] = bytes;
    let Some(payload) = read_frame(&mut r, DELTA_CHECKPOINT_MAGIC)? else {
        return Err(SnapshotError::Corrupt(
            "legacy v1 framing is not valid for delta checkpoints".into(),
        ));
    };
    let mut cur: &[u8] = &payload;
    let seq = read_u64(&mut cur)?;
    let covered = read_u64(&mut cur)?;
    let base_seq = read_u64(&mut cur)?;
    let base_covered = read_u64(&mut cur)?;
    let live = read_u64(&mut cur)? as usize;
    let dirty_count = read_u64(&mut cur)? as usize;
    if covered < base_covered {
        return Err(SnapshotError::Corrupt(format!(
            "delta covers {covered} batches, before its base's {base_covered}"
        )));
    }
    let mut dirty: BTreeMap<u32, &[u8]> = BTreeMap::new();
    for _ in 0..dirty_count {
        let slot = read_u32(&mut cur)?;
        let len = read_u64(&mut cur)? as usize;
        if len > cur.len() {
            return Err(SnapshotError::Corrupt(format!(
                "dirty record for slot {slot} overruns the payload"
            )));
        }
        let (rec, rest) = cur.split_at(len);
        dirty.insert(slot, rec);
        cur = rest;
    }
    if !cur.is_empty() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the delta payload",
            cur.len()
        )));
    }

    // The full base: `seq | covered | store | bubbles`.
    let mut br: &[u8] = base;
    let Some(bpayload) = read_frame(&mut br, CHECKPOINT_MAGIC)? else {
        return Err(SnapshotError::Corrupt(
            "a delta's base must be a full checkpoint".into(),
        ));
    };
    let mut bcur: &[u8] = &bpayload;
    let bseq = read_u64(&mut bcur)?;
    let bcov = read_u64(&mut bcur)?;
    if bseq != base_seq || bcov != base_covered {
        return Err(SnapshotError::Corrupt(format!(
            "delta claims base {base_seq} covering {base_covered}, \
             blob is {bseq} covering {bcov}"
        )));
    }
    let mut store = PointStore::read_snapshot(&mut bcur)?;
    let bubbles_frame = bcur;

    // Roll the store forward with the logged batches the delta sits on.
    if wal_base > base_covered {
        return Err(SnapshotError::Corrupt(format!(
            "wal base {wal_base} is past the delta's store base {base_covered}"
        )));
    }
    let have = wal_base + wal_records.len() as u64;
    if have < covered {
        return Err(SnapshotError::Corrupt(format!(
            "wal holds batches up to {have}, delta needs {covered}"
        )));
    }
    for i in (base_covered - wal_base)..(covered - wal_base) {
        let batch = &wal_records[usize::try_from(i).expect("record index fits usize")].batch;
        for &id in &batch.deletes {
            store.remove(id);
        }
        for (p, label) in &batch.inserts {
            store.insert(p, *label);
        }
    }

    // Splice the dirty records over the base body.
    let (body, spans) = bubble_record_spans(bubbles_frame)?;
    let mut new_body = Vec::with_capacity(body.len());
    new_body.extend_from_slice(&body[0..27]);
    write_u64(&mut new_body, live as u64)?;
    for slot in 0..live {
        if let Some(rec) = dirty.get(&u32::try_from(slot).expect("slot fits u32")) {
            new_body.extend_from_slice(rec);
        } else if let Some(&(s, e)) = spans.get(slot) {
            new_body.extend_from_slice(&body[s..e]);
        } else {
            return Err(SnapshotError::Corrupt(format!(
                "slot {slot} grew past the base population but is not in the delta"
            )));
        }
    }
    let mut framed = Vec::with_capacity(new_body.len() + 24);
    write_frame(&mut framed, crate::snapshot::MAGIC, &new_body)?;
    let mut fr: &[u8] = &framed;
    let bubbles = IncrementalBubbles::read_snapshot(&mut fr, &store)?;
    Ok((seq, covered, store, bubbles))
}

/// The state [`recover`] rebuilds, plus provenance for observability.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered point database.
    pub store: PointStore,
    /// The recovered summarization, bit-identical to the uninterrupted
    /// run's state after `batches_durable` batches.
    pub bubbles: IncrementalBubbles,
    /// How many batches of the stream are reflected in the state.
    pub batches_durable: u64,
    /// Records found intact in the WAL.
    pub wal_records: usize,
    /// Records actually replayed on top of the checkpoint.
    pub replayed: usize,
    /// Whether a torn final record was truncated.
    pub torn_tail: bool,
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
}

/// Rebuilds the maintainer state from a WAL byte stream plus a checkpoint
/// store: the newest checkpoint that loads, decodes and aligns with the
/// WAL epoch is taken as the base, and every WAL record past its coverage
/// is replayed with the deterministic maintenance path.
///
/// # Errors
/// * [`RecoveryError::CorruptWal`] — bit damage before the WAL tail (a
///   torn tail itself is truncated, not an error);
/// * [`RecoveryError::NoUsableCheckpoint`] — every checkpoint failed to
///   load, decode, or align (corrupt candidates are skipped, not fatal,
///   as long as an older one works);
/// * [`RecoveryError::Replay`] — a WAL record does not apply on top of
///   the checkpoint state;
/// * [`RecoveryError::Io`] — the checkpoint medium failed while listing.
pub fn recover<C: CheckpointStore>(
    wal_bytes: &[u8],
    checkpoints: &C,
) -> Result<Recovered, RecoveryError> {
    recover_with_obs(wal_bytes, checkpoints, &Obs::from_env())
}

/// [`recover`] journaling through an explicit observability handle: a
/// `recover_start` event up front, a `recover_checkpoint` event for the
/// checkpoint actually adopted, the recovered maintainer's structural
/// events while the WAL tail replays (the handle is installed *before*
/// replay, so the replayed stream is comparable to the uninterrupted
/// run's), and a closing `recover_done` event.
///
/// # Errors
/// As [`recover`].
pub fn recover_with_obs<C: CheckpointStore>(
    wal_bytes: &[u8],
    checkpoints: &C,
    obs: &Obs,
) -> Result<Recovered, RecoveryError> {
    let timer = obs.start();
    obs.emit(
        EventKind::RecoverStart {
            wal_bytes: wal_bytes.len() as u64,
        },
        0,
    );
    let wal = read_wal(wal_bytes).map_err(wal_to_recovery)?;
    recover_parsed(&wal, checkpoints, obs, &timer)
}

/// [`recover`] over a segmented WAL chain: walks the newest epoch on
/// `medium` (see [`read_chain`]) and recovers from the merged record
/// stream. Compaction may have reclaimed the chain's oldest segments;
/// checkpoints older than the surviving base are skipped exactly like
/// checkpoints from an earlier epoch.
///
/// # Errors
/// As [`recover`]; chain-level damage ([`WalError::ChainGap`],
/// [`WalError::CorruptSegment`]) surfaces as
/// [`RecoveryError::CorruptWal`].
pub fn recover_chain<M: SegmentMedium, C: CheckpointStore>(
    medium: &M,
    checkpoints: &C,
) -> Result<Recovered, RecoveryError> {
    recover_chain_with_obs(medium, checkpoints, &Obs::from_env())
}

/// [`recover_chain`] journaling through an explicit observability handle.
///
/// # Errors
/// As [`recover_chain`].
pub fn recover_chain_with_obs<M: SegmentMedium, C: CheckpointStore>(
    medium: &M,
    checkpoints: &C,
    obs: &Obs,
) -> Result<Recovered, RecoveryError> {
    let timer = obs.start();
    let chain = read_chain(medium).map_err(wal_to_recovery)?;
    obs.emit(
        EventKind::RecoverStart {
            wal_bytes: chain.bytes,
        },
        0,
    );
    let wal = chain.into_wal_contents();
    recover_parsed(&wal, checkpoints, obs, &timer)
}

fn wal_to_recovery(e: WalError) -> RecoveryError {
    match e {
        WalError::Io(e) => RecoveryError::Io(e),
        WalError::Corrupt { offset, detail } => RecoveryError::CorruptWal { offset, detail },
        e @ (WalError::ChainGap { .. } | WalError::CorruptSegment { .. }) => {
            RecoveryError::CorruptWal {
                offset: 0,
                detail: e.to_string(),
            }
        }
    }
}

/// The shared checkpoint-candidate loop: newest first, skipping damaged
/// or misaligned candidates. Full blobs decode directly; delta blobs pull
/// in their full base and the WAL records they sit on.
fn recover_parsed<C: CheckpointStore>(
    wal: &WalContents,
    checkpoints: &C,
    obs: &Obs,
    timer: &idb_obs::ObsTimer,
) -> Result<Recovered, RecoveryError> {
    let mut seqs = checkpoints.seqs()?;
    seqs.sort_unstable();
    let mut tried = 0;
    let mut detail = String::from("no checkpoints present");
    for &seq in seqs.iter().rev() {
        tried += 1;
        let blob = match checkpoints.load(seq) {
            Ok(b) => b,
            Err(e) => {
                detail = format!("checkpoint {seq}: load failed: {e}");
                continue;
            }
        };
        let decoded = if blob.starts_with(DELTA_CHECKPOINT_MAGIC) {
            match delta_base_seq(&blob) {
                Err(e) => Err(e.to_string()),
                Ok(bseq) => match checkpoints.load(bseq) {
                    Err(e) => Err(format!("delta base {bseq}: load failed: {e}")),
                    Ok(base) => decode_delta_checkpoint(&blob, &base, wal.base, &wal.records)
                        .map_err(|e| e.to_string()),
                },
            }
        } else {
            decode_checkpoint(&blob).map_err(|e| e.to_string())
        };
        let (cseq, covered, store, bubbles) = match decoded {
            Ok(parts) => parts,
            Err(e) => {
                detail = format!("checkpoint {seq}: {e}");
                continue;
            }
        };
        if cseq != seq {
            detail = format!("checkpoint {seq}: blob claims sequence {cseq}");
            continue;
        }
        if covered < wal.base {
            // Taken in an earlier WAL epoch (or before the compaction
            // floor); this log's records would be double-counted on top
            // of it.
            detail = format!(
                "checkpoint {seq} covers {covered} batches, before the wal epoch base {}",
                wal.base
            );
            continue;
        }
        if !wal.records.is_empty() && store.dim() != wal.dim {
            detail = format!(
                "checkpoint {seq} is {}-dimensional but the wal is {}-dimensional",
                store.dim(),
                wal.dim
            );
            continue;
        }
        obs.emit(EventKind::RecoverCheckpoint { seq, covered }, 0);
        return replay(wal, seq, covered, store, bubbles, obs, timer);
    }
    Err(RecoveryError::NoUsableCheckpoint { tried, detail })
}

fn replay(
    wal: &idb_store::wal::WalContents,
    checkpoint_seq: u64,
    covered: u64,
    mut store: PointStore,
    mut bubbles: IncrementalBubbles,
    obs: &Obs,
    timer: &idb_obs::ObsTimer,
) -> Result<Recovered, RecoveryError> {
    // Install the handle before replaying so the replayed structural
    // events land in the same journal (and in the same order as the
    // uninterrupted run produced them).
    bubbles.set_obs(obs.clone());
    let mut search = SearchStats::new();
    let mut replayed = 0;
    for (i, rec) in wal.records.iter().enumerate() {
        let abs = wal.base + i as u64;
        if abs < covered {
            continue; // Already inside the checkpoint.
        }
        bubbles
            .try_apply_batch(&mut store, &rec.batch, &mut search)
            .map_err(|source| RecoveryError::Replay {
                record: abs,
                source,
            })?;
        if rec.maintain {
            // The live path seeded a fresh StdRng from this value for the
            // round; replay does the identical thing, so the merge/split
            // decisions are bit-identical.
            let mut rng = StdRng::seed_from_u64(rec.round_seed);
            bubbles.maintain(&store, &mut rng, &mut search);
        }
        replayed += 1;
    }
    // A checkpoint may run ahead of the durable WAL (group-commit window):
    // the state then simply reflects the checkpoint.
    let batches_durable = covered.max(wal.base + wal.records.len() as u64);
    obs.emit(
        EventKind::RecoverDone {
            replayed: replayed as u64,
            batches_durable,
            torn_tail: wal.torn_tail,
        },
        timer.us(),
    );
    Ok(Recovered {
        store,
        bubbles,
        batches_durable,
        wal_records: wal.records.len(),
        replayed,
        torn_tail: wal.torn_tail,
        checkpoint_seq,
    })
}

/// Tunables of the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// WAL records buffered per group commit (1 = commit every batch; the
    /// crash window grows with this value, trading durability lag for
    /// fsync amortization).
    pub group_commit: usize,
    /// Take a checkpoint every this many applied batches.
    pub checkpoint_interval: u64,
    /// Extra commit attempts after a sink failure before degrading.
    pub max_retries: u32,
    /// Sleep before the first retry, doubling each attempt. Zero (the
    /// default, and what tests use) retries immediately without sleeping.
    pub retry_backoff: Duration,
    /// Hard cap on WAL records buffered in memory while the sink is down.
    /// Past it, new batches are shed with a typed
    /// [`StorageError`] instead of growing memory without bound.
    pub max_buffered: usize,
    /// Bytes of an in-flight checkpoint written per applied batch when the
    /// checkpoint medium streams: chunked writes interleave with batch
    /// application instead of stopping the world.
    pub checkpoint_chunk_bytes: usize,
    /// Every Nth checkpoint is a full rebase; the ones between persist
    /// only the bubbles dirtied since the newest full base (a delta
    /// checkpoint). `1` takes a full checkpoint every time.
    pub full_rebase_interval: u64,
    /// Budget on the live WAL chain's disk footprint. On breach the
    /// maintainer compacts first, then forces a full checkpoint to
    /// advance the compaction floor, and only then sheds the batch with a
    /// typed [`StorageError::BudgetExceeded`].
    pub disk_budget: StorageBudget,
    /// Hot-point budget for the tiered point store: at most this many
    /// payloads stay resident; the rest spill to the cold medium.
    /// `None` (the default when `IDB_HOT_POINTS` is unset) keeps the
    /// store untiered — every payload resident, no cold tier at all.
    pub hot_points: Option<usize>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            group_commit: 1,
            checkpoint_interval: 64,
            max_retries: 3,
            retry_backoff: Duration::ZERO,
            max_buffered: 1024,
            checkpoint_chunk_bytes: 64 * 1024,
            full_rebase_interval: 4,
            disk_budget: StorageBudget::from_env(),
            hot_points: idb_store::tier::hot_points_from_env(),
        }
    }
}

/// Durability health of a [`DurableMaintainer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// The sink and checkpoint store are accepting writes.
    Healthy,
    /// The sink (or checkpoint store) is down, or the disk budget is
    /// breached; the maintainer keeps serving from memory and buffers WAL
    /// records (up to [`DurabilityConfig::max_buffered`]) for when it
    /// heals.
    Degraded {
        /// WAL records buffered in memory, not yet durable.
        buffered_batches: usize,
        /// Batches shed with a typed error over the maintainer's life
        /// (buffer cap or disk budget).
        shed_batches: u64,
    },
}

/// Mirrors the maintainer's [`BubbleChange`] log into the set of bubble
/// slots dirtied since the newest full checkpoint — what a delta
/// checkpoint persists. The key invariant: a slot *not* in `dirty` holds
/// byte-identical snapshot content to the same slot in the base full
/// checkpoint (only the last slot ever moves, and its landing slot is
/// marked dirty).
#[derive(Debug)]
struct DirtyTracker {
    /// `false` until the first full rebase, or after an untrackable
    /// operation (repair) — a delta cannot be taken, only a full.
    valid: bool,
    /// Mirror of the live bubble count.
    count: usize,
    dirty: BTreeSet<u32>,
}

impl DirtyTracker {
    fn new() -> Self {
        Self {
            valid: false,
            count: 0,
            dirty: BTreeSet::new(),
        }
    }

    /// Folds one drained change log in. `None` (tracking gap) invalidates.
    fn absorb(&mut self, changes: Option<Vec<BubbleChange>>) {
        let Some(changes) = changes else {
            self.invalidate();
            return;
        };
        if !self.valid {
            return;
        }
        for c in changes {
            match c {
                BubbleChange::Touched(i) => {
                    self.dirty.insert(i);
                }
                BubbleChange::Pushed => {
                    self.dirty.insert(self.count as u32);
                    self.count += 1;
                }
                BubbleChange::SwapRemoved(i) => {
                    let last = (self.count - 1) as u32;
                    // The old last slot's content moved into `i`; the
                    // vacated slot no longer exists.
                    self.dirty.remove(&last);
                    if i != last {
                        self.dirty.insert(i);
                    }
                    self.count -= 1;
                }
            }
        }
    }

    /// Starts a fresh dirty window against a just-encoded full base.
    fn rebase(&mut self, live_count: usize) {
        self.valid = true;
        self.count = live_count;
        self.dirty.clear();
    }

    fn invalidate(&mut self) {
        self.valid = false;
        self.dirty.clear();
    }
}

/// A checkpoint being streamed out across batch applications.
#[derive(Debug)]
struct PendingCheckpoint {
    seq: u64,
    covered: u64,
    blob: Vec<u8>,
    written: usize,
    is_full: bool,
}

/// The live-side durability wrapper: validate → log → apply.
///
/// Every batch is validated first (so the WAL only ever holds batches
/// that replay cleanly), appended to the WAL, group-committed, applied
/// through the ordinary transactional path, and periodically folded into
/// a checkpoint. Transient sink failures are retried with bounded
/// exponential backoff; persistent failures degrade the maintainer to
/// in-memory operation ([`Health::Degraded`]) instead of stopping the
/// stream — records stay buffered and flush when the sink heals.
#[derive(Debug)]
pub struct DurableMaintainer<S: DurableSink, C: CheckpointStore> {
    store: PointStore,
    bubbles: IncrementalBubbles,
    wal: WalWriter<S>,
    checkpoints: C,
    dcfg: DurabilityConfig,
    batches_applied: u64,
    next_checkpoint_seq: u64,
    last_checkpoint_at: u64,
    wal_down: bool,
    checkpoint_down: bool,
    obs: Obs,
    /// Whether the last emitted health event said "degraded" — health
    /// events fire on transitions only.
    reported_degraded: bool,
    /// Absolute batch sequence number of this WAL epoch's first record
    /// (what rotation stamps into new segment headers).
    wal_base: u64,
    /// `(seq, covered)` of the newest durable *full* checkpoint: the
    /// delta base and the compaction floor.
    last_full: Option<(u64, u64)>,
    /// Checkpoints taken since the last full rebase.
    checkpoints_since_full: u64,
    /// Bubble slots dirtied since `last_full`.
    dirty: DirtyTracker,
    /// The checkpoint currently streaming out, one chunk per batch.
    pending_ckpt: Option<PendingCheckpoint>,
    /// Batches shed with a typed error (buffer cap or disk budget).
    shed_batches: u64,
    /// Whether the last sink failure reported `StorageFull` (ENOSPC) —
    /// a shed at the buffer cap then surfaces as
    /// [`StorageError::Enospc`] rather than a plain buffer overflow.
    sink_full: bool,
    /// Whether the disk budget was breached and could not be compacted
    /// back under the cap.
    budget_pressure: bool,
    /// Whether the cold tier last refused IO (outage on the spill medium).
    /// Batches are rejected typed while down; a successful prefetch or
    /// budget sweep heals it.
    tier_down: bool,
    /// Whether a cold failure struck *after* a batch was logged (mid-apply
    /// or mid-maintenance): the in-memory state then diverges from what
    /// replaying the WAL would produce, so every further batch is rejected
    /// until the caller rebuilds via recovery.
    tier_poisoned: bool,
    /// Tier counters at the last mirror, for per-batch deltas.
    tier_seen: idb_store::TierCounters,
}

impl<S: DurableSink, C: CheckpointStore> DurableMaintainer<S, C> {
    /// Builds a fresh summarization over `store` and starts durable
    /// operation: the WAL header and a baseline checkpoint (sequence 0,
    /// covering 0 batches) are written immediately.
    ///
    /// # Errors
    /// [`RecoveryError::Io`] when the initial header commit or baseline
    /// checkpoint cannot be written — durable operation cannot start
    /// without its recovery anchor.
    ///
    /// # Panics
    /// Panics if the store holds fewer points than `config.num_bubbles`
    /// (as [`IncrementalBubbles::build`] does).
    pub fn create<R: Rng + ?Sized>(
        store: PointStore,
        config: MaintainerConfig,
        dcfg: DurabilityConfig,
        sink: S,
        checkpoints: C,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Result<Self, RecoveryError> {
        let bubbles = IncrementalBubbles::build(&store, config, rng, search);
        Self::start(store, bubbles, dcfg, sink, checkpoints, 0)
    }

    /// Starts durable operation over an existing store + summarization
    /// pair at batch sequence 0 (a fresh stream).
    ///
    /// # Errors
    /// As [`DurableMaintainer::create`].
    pub fn adopt(
        store: PointStore,
        bubbles: IncrementalBubbles,
        dcfg: DurabilityConfig,
        sink: S,
        checkpoints: C,
    ) -> Result<Self, RecoveryError> {
        Self::start(store, bubbles, dcfg, sink, checkpoints, 0)
    }

    /// Continues a recovered stream: truncates the sink and begins a fresh
    /// WAL epoch whose base is `recovered.batches_durable`, then anchors it
    /// with an immediate checkpoint. Checkpoints from before the crash
    /// remain valid fallbacks — their coverage is never behind the new
    /// epoch's base.
    ///
    /// # Errors
    /// As [`DurableMaintainer::create`].
    pub fn resume(
        recovered: Recovered,
        dcfg: DurabilityConfig,
        mut sink: S,
        checkpoints: C,
    ) -> Result<Self, RecoveryError> {
        sink.truncate(0)?;
        Self::start(
            recovered.store,
            recovered.bubbles,
            dcfg,
            sink,
            checkpoints,
            recovered.batches_durable,
        )
    }

    fn start(
        store: PointStore,
        mut bubbles: IncrementalBubbles,
        dcfg: DurabilityConfig,
        sink: S,
        checkpoints: C,
        base: u64,
    ) -> Result<Self, RecoveryError> {
        // The wrapper journals into the same stream as the summarization
        // it wraps; the WAL writer gets a clone so commits land there too.
        let obs = bubbles.obs().clone();
        // The incremental-checkpoint dirty tracker feeds off the
        // checkpoint-side change channel (independent of the consumer-
        // facing one).
        bubbles.set_ckpt_tracking(true);
        let mut wal = WalWriter::new(sink, store.dim(), base, dcfg.group_commit);
        wal.set_obs(obs.clone());
        wal.commit()?; // The header must be durable before any checkpoint.
        let next_checkpoint_seq = checkpoints.seqs()?.iter().max().map_or(0, |m| m + 1);
        let mut this = Self {
            store,
            bubbles,
            wal,
            checkpoints,
            dcfg,
            batches_applied: base,
            next_checkpoint_seq,
            last_checkpoint_at: base,
            wal_down: false,
            checkpoint_down: false,
            obs,
            reported_degraded: false,
            wal_base: base,
            last_full: None,
            checkpoints_since_full: 0,
            dirty: DirtyTracker::new(),
            pending_ckpt: None,
            shed_batches: 0,
            sink_full: false,
            budget_pressure: false,
            tier_down: false,
            tier_poisoned: false,
            tier_seen: idb_store::TierCounters::default(),
        };
        // Tiering starts *after* the (untiered) build/recovery produced the
        // summarization: the store spills everything to the cold medium and
        // serves reads on demand. The cold file is an ephemeral spill, not
        // durability state — recovery always rebuilds untiered and re-tiers
        // here.
        if let Some(hot) = this.dcfg.hot_points {
            if !this.store.tiered() {
                this.store
                    .enable_tier(idb_store::tier::default_cold_medium(), hot.max(1))
                    .map_err(|e| RecoveryError::Io(io::Error::other(e.to_string())))?;
            }
            this.tier_seen = this.store.tier_counters().unwrap_or_default();
        }
        this.checkpoint_now()?; // The recovery anchor for this epoch.
        Ok(this)
    }

    /// Emits a `health` journal event when the degraded/healthy state has
    /// changed since the last one.
    fn note_health(&mut self) {
        let degraded = self.wal_down
            || self.checkpoint_down
            || self.budget_pressure
            || self.tier_down
            || self.tier_poisoned;
        if degraded != self.reported_degraded {
            self.reported_degraded = degraded;
            self.obs.emit(
                EventKind::Health {
                    degraded,
                    buffered: self.wal.pending_records() as u64,
                },
                0,
            );
        }
    }

    /// Applies one batch durably, drawing the maintenance seed from `rng`
    /// and always running a maintenance round — the common live-path call.
    ///
    /// # Errors
    /// The typed [`UpdateError`] of
    /// [`IncrementalBubbles::try_apply_batch`]; a rejected batch is logged
    /// nowhere and changes nothing.
    pub fn apply<R: Rng + ?Sized>(
        &mut self,
        batch: &Batch,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Result<Vec<PointId>, UpdateError> {
        let round_seed = rng.gen::<u64>();
        self.apply_with(batch, round_seed, true, search)
    }

    /// Applies one batch durably with an explicit maintenance decision and
    /// RNG seed (what gets logged — and therefore what replay reproduces).
    ///
    /// Sink failures do **not** fail the batch: the maintainer retries per
    /// [`DurabilityConfig`], then degrades to in-memory operation and
    /// keeps the record buffered (see [`DurableMaintainer::health`]) — up
    /// to [`DurabilityConfig::max_buffered`] records, past which batches
    /// are shed with a typed error. The disk budget is enforced the same
    /// way: compact first, then force a full checkpoint to advance the
    /// floor, and only shed when the chain still will not fit.
    ///
    /// # Errors
    /// The typed [`UpdateError`] when the batch itself is invalid, or
    /// [`UpdateError::Storage`] when the batch was shed by the bounded
    /// durability layer (the summarization and the store are untouched).
    pub fn apply_with(
        &mut self,
        batch: &Batch,
        round_seed: u64,
        maintain: bool,
        search: &mut SearchStats,
    ) -> Result<Vec<PointId>, UpdateError> {
        // A poisoned tier means the in-memory state diverged from what
        // replaying the WAL would produce (a cold failure struck after a
        // record was logged); nothing further may apply until the caller
        // rebuilds through recovery.
        if self.tier_poisoned {
            return Err(UpdateError::Storage(StorageError::ColdIo {
                op: "apply",
                detail: "cold tier failed mid-round; state diverged from the WAL, \
                         rebuild via recovery"
                    .into(),
            }));
        }
        // Validate before logging: the WAL must only ever contain batches
        // that replay cleanly.
        self.bubbles.check_batch(&self.store, batch)?;
        // Probe the cold tier before logging: every payload this batch
        // needs must be fetchable, so a cold outage rejects the batch
        // typed — logged nowhere, nothing applied — instead of poisoning.
        if self.store.tiered() {
            match self.store.prefetch(&batch.deletes) {
                Ok(()) => {
                    if self.tier_down {
                        self.tier_down = false;
                        self.note_health();
                    }
                }
                Err(e) => {
                    self.tier_down = true;
                    self.shed_batches += 1;
                    self.obs.emit(
                        EventKind::StorageShed {
                            buffered: self.wal.pending_records() as u64,
                            shed: self.shed_batches,
                        },
                        0,
                    );
                    self.note_health();
                    return Err(UpdateError::Storage(e));
                }
            }
        }
        // Bounded resources next: shed (typed) before anything is logged
        // or applied.
        self.enforce_disk_budget()?;
        self.enforce_buffer_cap()?;
        self.wal.append(&WalRecord {
            round_seed,
            maintain,
            batch: batch.clone(),
        });
        if self.wal.wants_commit() {
            self.commit_wal();
        }
        // `check_batch` above guarantees this succeeds; if the validator
        // and the applier ever disagree (a bug), surface the typed error
        // instead of aborting the process — the caller still holds a
        // consistent pre-batch view and can drop the maintainer. A cold
        // failure *here* is past the point of no return (the record is
        // logged): poison the tier so the divergence cannot compound.
        let ids = match self.bubbles.try_apply_batch(&mut self.store, batch, search) {
            Ok(ids) => ids,
            Err(e) => {
                if matches!(e, UpdateError::Storage(StorageError::ColdIo { .. })) {
                    self.tier_down = true;
                    self.tier_poisoned = true;
                    self.note_health();
                }
                return Err(e);
            }
        };
        if maintain {
            let mut rng = StdRng::seed_from_u64(round_seed);
            if let Err(e) = self.bubbles.try_maintain(&self.store, &mut rng, search) {
                self.tier_down = true;
                self.tier_poisoned = true;
                self.note_health();
                return Err(UpdateError::Storage(e));
            }
        }
        self.batches_applied += 1;
        self.dirty.absorb(self.bubbles.take_ckpt_changes());
        self.drive_checkpoint();
        self.enforce_hot_budget();
        Ok(ids)
    }

    /// Per-batch tier upkeep: evict back down to the hot budget, journal
    /// the tier traffic this batch generated, and mirror the counters into
    /// metrics. Eviction failures degrade ([`Health::Degraded`]) without
    /// failing the batch — the store stays consistent, merely over budget,
    /// and the next batch (or [`DurableMaintainer::sync`]) retries.
    fn enforce_hot_budget(&mut self) {
        if !self.store.tiered() {
            return;
        }
        match self.store.enforce_hot_budget() {
            Ok(evicted) => {
                if self.tier_down {
                    self.tier_down = false;
                }
                if evicted > 0 {
                    self.obs.emit(
                        EventKind::TierEvict {
                            evicted,
                            resident: self.store.resident_points() as u64,
                        },
                        0,
                    );
                }
            }
            Err(_) => {
                self.tier_down = true;
            }
        }
        let now = self.store.tier_counters().unwrap_or_default();
        let fetches = now.cold_reads - self.tier_seen.cold_reads;
        let bytes = now.cold_bytes - self.tier_seen.cold_bytes;
        if fetches > 0 {
            // Zero-traffic windows are elided, never journaled (the
            // journal checker enforces this).
            self.obs.emit(EventKind::TierFetch { fetches, bytes }, 0);
        }
        if self.obs.metrics_on() {
            let m = self.obs.metrics();
            m.counter("tier.hits").add(now.hits - self.tier_seen.hits);
            m.counter("tier.misses")
                .add(now.misses - self.tier_seen.misses);
            m.counter("tier.cold_reads").add(fetches);
            m.counter("tier.cold_bytes").add(bytes);
            m.counter("tier.evictions")
                .add(now.evictions - self.tier_seen.evictions);
        }
        self.tier_seen = now;
        self.note_health();
    }

    /// Commits buffered WAL records with bounded retry; on persistent
    /// failure flags the sink as down and leaves the records buffered.
    /// ENOSPC from the sink triggers a compaction before the retry. After
    /// a successful commit that made new records durable, the segmented
    /// sink is offered a rotation.
    fn commit_wal(&mut self) -> bool {
        let before = self.wal.committed_records();
        let mut backoff = self.dcfg.retry_backoff;
        for attempt in 0..=self.dcfg.max_retries {
            match self.wal.commit() {
                Ok(()) => {
                    self.wal_down = false;
                    self.sink_full = false;
                    self.note_health();
                    if self.wal.committed_records() > before {
                        self.maybe_roll();
                    }
                    return true;
                }
                Err(e) => {
                    self.sink_full = e.kind() == io::ErrorKind::StorageFull;
                    if self.sink_full {
                        // Reclaiming covered segments may free exactly the
                        // space the retry needs.
                        self.compact();
                    }
                    if attempt < self.dcfg.max_retries && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
        self.wal_down = true;
        self.note_health();
        false
    }

    /// Offers the sink a segment rotation (a no-op for unsegmented sinks
    /// and for segmented ones still under their byte budget). Called only
    /// after a commit that made records durable, so a sealed segment is
    /// never empty.
    fn maybe_roll(&mut self) {
        let next_base = self.wal_base + self.wal.committed_records();
        match self.wal.sink_mut().roll(self.store.dim(), next_base) {
            Ok(None) => {}
            Ok(Some(report)) => {
                self.obs.emit(
                    EventKind::WalRotate {
                        epoch: report.new_epoch,
                        seq: report.new_seq,
                        base: next_base,
                        sealed_bytes: report.sealed_bytes,
                    },
                    0,
                );
                if self.obs.metrics_on() {
                    self.obs.metrics().counter("wal.rotations").inc();
                }
            }
            Err(_) => {
                // Transient: the active segment keeps absorbing appends;
                // rotation is retried after the next commit.
                if self.obs.metrics_on() {
                    self.obs.metrics().counter("wal.roll_failures").inc();
                }
            }
        }
    }

    /// Reclaims WAL segments fully covered by the newest durable full
    /// checkpoint. Returns the bytes reclaimed (0 when there is no floor,
    /// nothing was reclaimable, or the sink is unsegmented).
    fn compact(&mut self) -> u64 {
        let Some((_, floor)) = self.last_full else {
            return 0;
        };
        match self.wal.sink_mut().reclaim(floor) {
            Ok(report) if report.segments > 0 => {
                self.obs.emit(
                    EventKind::WalCompact {
                        segments: report.segments,
                        bytes: report.bytes,
                        floor,
                    },
                    0,
                );
                if self.obs.metrics_on() {
                    let m = self.obs.metrics();
                    m.counter("wal.compactions").inc();
                    m.counter("wal.reclaimed_bytes").add(report.bytes);
                }
                report.bytes
            }
            _ => 0,
        }
    }

    /// Compact-first-then-shed enforcement of the disk budget, before the
    /// batch is logged.
    fn enforce_disk_budget(&mut self) -> Result<(), UpdateError> {
        let Some(budget) = self.dcfg.disk_budget.max_live_bytes else {
            self.budget_pressure = false;
            return Ok(());
        };
        // An unsegmented sink cannot report (or bound) its footprint.
        let Some(live) = self.wal.sink().live_bytes() else {
            return Ok(());
        };
        if live <= budget {
            self.budget_pressure = false;
            return Ok(());
        }
        // 1) Reclaim what the existing floor already covers.
        self.compact();
        if self.wal.sink().live_bytes().unwrap_or(0) <= budget {
            self.budget_pressure = false;
            return Ok(());
        }
        // 2) Advance the floor with a forced full checkpoint (which
        //    compacts on success) and re-check.
        let _ = self.checkpoint_now();
        let live = self.wal.sink().live_bytes().unwrap_or(0);
        if live <= budget {
            self.budget_pressure = false;
            return Ok(());
        }
        // 3) Shed, typed.
        self.budget_pressure = true;
        self.shed_batches += 1;
        self.obs.emit(
            EventKind::StorageShed {
                buffered: self.wal.pending_records() as u64,
                shed: self.shed_batches,
            },
            0,
        );
        if self.obs.metrics_on() {
            self.obs.metrics().counter("storage.shed").inc();
        }
        self.note_health();
        Err(StorageError::BudgetExceeded {
            live_bytes: live,
            budget,
        }
        .into())
    }

    /// Hard cap on the degraded-mode buffer: one more drain attempt, then
    /// a typed shed.
    fn enforce_buffer_cap(&mut self) -> Result<(), UpdateError> {
        if self.wal.pending_records() < self.dcfg.max_buffered {
            return Ok(());
        }
        if self.commit_wal() && self.wal.pending_records() < self.dcfg.max_buffered {
            return Ok(());
        }
        let buffered = self.wal.pending_records();
        self.shed_batches += 1;
        self.obs.emit(
            EventKind::StorageShed {
                buffered: buffered as u64,
                shed: self.shed_batches,
            },
            0,
        );
        if self.obs.metrics_on() {
            self.obs.metrics().counter("storage.shed").inc();
        }
        self.note_health();
        let err = if self.sink_full {
            StorageError::Enospc {
                detail: format!(
                    "wal sink out of space with {buffered} records buffered at the cap"
                ),
            }
        } else {
            StorageError::BufferFull {
                buffered,
                max: self.dcfg.max_buffered,
            }
        };
        Err(err.into())
    }

    /// Starts a checkpoint when the interval is due and advances the
    /// in-flight one by one chunk — the streaming-checkpoint pump, called
    /// once per applied batch.
    fn drive_checkpoint(&mut self) {
        if self.pending_ckpt.is_none()
            && self.batches_applied - self.last_checkpoint_at >= self.dcfg.checkpoint_interval
        {
            self.begin_checkpoint();
        }
        if self.pending_ckpt.is_some() {
            self.advance_pending();
        }
        self.note_health();
    }

    /// Encodes the next checkpoint — full on the rebase cadence (or when
    /// the dirty log has a gap), delta otherwise — and stages it for
    /// chunked writing.
    fn begin_checkpoint(&mut self) {
        let seq = self.next_checkpoint_seq;
        let covered = self.batches_applied;
        let full = self.last_full.is_none()
            || !self.dirty.valid
            || self.checkpoints_since_full + 1 >= self.dcfg.full_rebase_interval.max(1);
        let blob = if full {
            let blob = encode_checkpoint(seq, covered, &self.store, &self.bubbles);
            if blob.is_ok() {
                // The blob captures the state exactly as of `covered`;
                // the dirty window restarts against it. If the stream
                // later fails, `advance_pending` invalidates the tracker.
                let _ = self.bubbles.take_ckpt_changes();
                self.dirty.rebase(self.bubbles.bubbles().len());
            }
            blob
        } else {
            let (base_seq, base_covered) = self.last_full.expect("checked above");
            encode_delta_checkpoint(
                seq,
                covered,
                base_seq,
                base_covered,
                &self.bubbles,
                &self.dirty.dirty,
            )
        };
        match blob {
            Ok(blob) => {
                self.pending_ckpt = Some(PendingCheckpoint {
                    seq,
                    covered,
                    blob,
                    written: 0,
                    is_full: full,
                });
            }
            Err(_) => {
                if full {
                    self.dirty.invalidate();
                }
                self.checkpoint_down = true;
            }
        }
    }

    /// Writes the next chunk of the pending checkpoint (or, on a
    /// non-streaming medium, the whole blob) and publishes it when done.
    fn advance_pending(&mut self) {
        let Some(mut p) = self.pending_ckpt.take() else {
            return;
        };
        let total = p.blob.len() as u64;
        let timer = self.obs.start();
        let streaming = self.checkpoints.supports_streaming();
        let step: io::Result<bool> = if streaming {
            (|| {
                if p.written == 0 {
                    self.checkpoints.begin_stream(p.seq)?;
                }
                let end = (p.written + self.dcfg.checkpoint_chunk_bytes.max(1)).min(p.blob.len());
                self.checkpoints
                    .stream_chunk(p.seq, &p.blob[p.written..end])?;
                p.written = end;
                if p.written == p.blob.len() {
                    self.checkpoints.finish_stream(p.seq)?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            })()
        } else {
            self.checkpoints.save(p.seq, &p.blob).map(|()| {
                p.written = p.blob.len();
                true
            })
        };
        match step {
            Ok(done) => {
                if streaming {
                    self.obs.emit(
                        EventKind::CheckpointChunk {
                            seq: p.seq,
                            written: p.written as u64,
                            total,
                        },
                        timer.us(),
                    );
                }
                if done {
                    self.finish_checkpoint(&p, timer.us());
                } else {
                    self.pending_ckpt = Some(p);
                }
            }
            Err(_) => {
                if streaming && p.written > 0 {
                    self.checkpoints.abort_stream(p.seq);
                }
                if p.is_full {
                    // The dirty window was rebased against this blob; it
                    // never became durable, so a delta can no longer lean
                    // on it.
                    self.dirty.invalidate();
                }
                // Burn the sequence number: a fresh attempt must not
                // continue an abandoned chunk stream under the same seq.
                self.next_checkpoint_seq = p.seq + 1;
                self.checkpoint_down = true;
            }
        }
    }

    /// Bookkeeping for a checkpoint that became durable.
    fn finish_checkpoint(&mut self, p: &PendingCheckpoint, us: u64) {
        self.obs.emit(
            EventKind::Checkpoint {
                seq: p.seq,
                covered: p.covered,
                bytes: p.blob.len() as u64,
            },
            us,
        );
        if self.obs.metrics_on() {
            let m = self.obs.metrics();
            m.counter("checkpoint.taken").inc();
            m.counter("checkpoint.bytes").add(p.blob.len() as u64);
            if !p.is_full {
                m.counter("checkpoint.delta").inc();
            }
        }
        self.next_checkpoint_seq = p.seq + 1;
        self.last_checkpoint_at = p.covered;
        if p.is_full {
            self.last_full = Some((p.seq, p.covered));
            self.checkpoints_since_full = 0;
            self.compact();
        } else {
            self.checkpoints_since_full += 1;
        }
        self.checkpoint_down = false;
    }

    /// Drives any in-flight streaming checkpoint to completion (orderly
    /// shutdown; the live path writes one chunk per batch instead).
    pub fn flush_checkpoint(&mut self) {
        while self.pending_ckpt.is_some() {
            self.advance_pending();
            if self.checkpoint_down {
                break; // Typed failure; a fresh attempt starts next interval.
            }
        }
        self.note_health();
    }

    /// Forces buffered WAL records to the sink (with the configured
    /// retries), retries a failed hot-budget sweep when the cold tier was
    /// down, and reports the resulting health.
    pub fn sync(&mut self) -> Health {
        if self.wal.pending_records() > 0 || self.wal_down {
            self.commit_wal();
        }
        if self.tier_down && !self.tier_poisoned {
            self.enforce_hot_budget();
        }
        self.health()
    }

    /// Takes a **full** checkpoint of the current state right now,
    /// bypassing the chunked stream (and abandoning any checkpoint that
    /// was mid-stream). On success the compaction floor advances and
    /// covered segments are reclaimed.
    ///
    /// # Errors
    /// Whatever the checkpoint medium reports; the maintainer stays
    /// usable and will retry at the next interval.
    pub fn checkpoint_now(&mut self) -> Result<(), RecoveryError> {
        if let Some(p) = self.pending_ckpt.take() {
            if self.checkpoints.supports_streaming() && p.written > 0 {
                self.checkpoints.abort_stream(p.seq);
            }
            if p.is_full {
                self.dirty.invalidate();
            }
            // The abandoned stream's seq is burned (see `advance_pending`).
            self.next_checkpoint_seq = p.seq + 1;
        }
        let timer = self.obs.start();
        let blob = encode_checkpoint(
            self.next_checkpoint_seq,
            self.batches_applied,
            &self.store,
            &self.bubbles,
        )?;
        self.checkpoints.save(self.next_checkpoint_seq, &blob)?;
        self.obs.emit(
            EventKind::Checkpoint {
                seq: self.next_checkpoint_seq,
                covered: self.batches_applied,
                bytes: blob.len() as u64,
            },
            timer.us(),
        );
        if self.obs.metrics_on() {
            let m = self.obs.metrics();
            m.counter("checkpoint.taken").inc();
            m.counter("checkpoint.bytes").add(blob.len() as u64);
            m.histogram("checkpoint.encode_us").record(timer.us());
        }
        let _ = self.bubbles.take_ckpt_changes();
        self.dirty.rebase(self.bubbles.bubbles().len());
        self.last_full = Some((self.next_checkpoint_seq, self.batches_applied));
        self.checkpoints_since_full = 0;
        self.next_checkpoint_seq += 1;
        self.last_checkpoint_at = self.batches_applied;
        self.checkpoint_down = false;
        self.compact();
        Ok(())
    }

    /// Current durability health: [`Health::Degraded`] while the WAL sink
    /// or the checkpoint store is rejecting writes, while the disk
    /// budget is forcing sheds, or while the cold tier is down/poisoned.
    #[must_use]
    pub fn health(&self) -> Health {
        if self.wal_down
            || self.checkpoint_down
            || self.budget_pressure
            || self.tier_down
            || self.tier_poisoned
        {
            Health::Degraded {
                buffered_batches: self.wal.pending_records(),
                shed_batches: self.shed_batches,
            }
        } else {
            Health::Healthy
        }
    }

    /// Batches shed by the bounded durability layer over this process
    /// epoch (buffer cap, disk budget, or cold-tier outage).
    #[must_use]
    pub fn shed_batches(&self) -> u64 {
        self.shed_batches
    }

    /// Whether a cold-tier failure after a logged record poisoned the
    /// live state (see [`DurableMaintainer::apply_with`]): every further
    /// batch is rejected typed until the caller rebuilds via recovery.
    #[must_use]
    pub fn tier_poisoned(&self) -> bool {
        self.tier_poisoned
    }

    /// Live (unreclaimed) bytes of the WAL chain, when the sink can
    /// report them (`None` for unsegmented sinks).
    #[must_use]
    pub fn live_wal_bytes(&self) -> Option<u64> {
        self.wal.sink().live_bytes()
    }

    /// The live point database.
    #[must_use]
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The live summarization.
    #[must_use]
    pub fn bubbles(&self) -> &IncrementalBubbles {
        &self.bubbles
    }

    /// Turns structural change recording on or off on the live
    /// summarization (see
    /// [`IncrementalBubbles::set_change_tracking`]). Purely an output
    /// channel for delta-clustering consumers; never journaled, never
    /// persisted.
    pub fn set_change_tracking(&mut self, on: bool) {
        self.bubbles.set_change_tracking(on);
    }

    /// Drains the structural change log of the live summarization (see
    /// [`IncrementalBubbles::take_changes`]); `None` obliges the consumer
    /// to treat every bubble slot as changed.
    pub fn take_changes(&mut self) -> Option<Vec<crate::incremental::BubbleChange>> {
        self.bubbles.take_changes()
    }

    /// Batches applied over the stream's whole life (across epochs).
    #[must_use]
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The WAL sink (tests read crash-point bytes from it).
    #[must_use]
    pub fn wal_sink(&self) -> &S {
        self.wal.sink()
    }

    /// The WAL sink, mutably (tests toggle faults on it).
    pub fn wal_sink_mut(&mut self) -> &mut S {
        self.wal.sink_mut()
    }

    /// The checkpoint store.
    #[must_use]
    pub fn checkpoints(&self) -> &C {
        &self.checkpoints
    }

    /// Tears the wrapper apart (tests hand the pieces to [`recover`]).
    #[must_use]
    pub fn into_parts(self) -> (PointStore, IncrementalBubbles, S, C) {
        (
            self.store,
            self.bubbles,
            self.wal.into_sink(),
            self.checkpoints,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_store::wal::MemSink;
    use rand::Rng;

    fn fixture(n: usize, seed: u64) -> (PointStore, MaintainerConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = PointStore::new(2);
        for _ in 0..n {
            let p = [rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)];
            store.insert(&p, Some(0));
        }
        (store, MaintainerConfig::new(8))
    }

    fn random_batch(store: &PointStore, rng: &mut StdRng) -> Batch {
        let deletes = store.sample_distinct(rng.gen_range(0..4), rng);
        let inserts = (0..rng.gen_range(1..6))
            .map(|_| {
                let p = vec![rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)];
                (p, Some(1u32))
            })
            .collect();
        Batch { deletes, inserts }
    }

    fn fingerprint(store: &PointStore, ib: &IncrementalBubbles) -> String {
        let mut s = String::new();
        let mut p = Vec::new();
        for id in store.ids() {
            p.clear();
            store.read_point_into(id, &mut p).expect("point fetch");
            let l = store.label(id);
            s.push_str(&format!("{};{p:?};{l:?}|", id.0));
        }
        s.push_str(&format!("free={:?}|", store.free_slots()));
        for b in ib.bubbles() {
            s.push_str(&format!(
                "{:?};{};{:?};{};{:?}|",
                b.seed(),
                b.stats().n(),
                b.stats().linear_sum(),
                b.stats().square_sum(),
                b.members()
            ));
        }
        s
    }

    #[test]
    fn checkpoint_blob_round_trips() {
        let (store, config) = fixture(120, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut search = SearchStats::new();
        let ib = IncrementalBubbles::build(&store, config, &mut rng, &mut search);
        let blob = encode_checkpoint(3, 17, &store, &ib).unwrap();
        let (seq, covered, rstore, rib) = decode_checkpoint(&blob).unwrap();
        assert_eq!((seq, covered), (3, 17));
        assert_eq!(fingerprint(&store, &ib), fingerprint(&rstore, &rib));
        // Bit damage inside the blob is a typed error.
        let mut bad = blob.clone();
        bad[blob.len() / 2] ^= 0x08;
        assert!(decode_checkpoint(&bad).is_err());
    }

    #[test]
    fn clean_shutdown_recovers_bit_identically() {
        let (store, config) = fixture(150, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut search = SearchStats::new();
        let dcfg = DurabilityConfig {
            checkpoint_interval: 3,
            ..DurabilityConfig::default()
        };
        let mut dm = DurableMaintainer::create(
            store,
            config,
            dcfg,
            MemSink::new(),
            MemCheckpoints::new(),
            &mut rng,
            &mut search,
        )
        .unwrap();
        for _ in 0..10 {
            let batch = random_batch(dm.store(), &mut rng);
            dm.apply(&batch, &mut rng, &mut search).unwrap();
        }
        assert_eq!(dm.health(), Health::Healthy);
        let want = fingerprint(dm.store(), dm.bubbles());
        let (_, _, sink, checkpoints) = dm.into_parts();
        let rec = recover(sink.bytes(), &checkpoints).unwrap();
        assert_eq!(rec.batches_durable, 10);
        assert!(!rec.torn_tail);
        assert_eq!(fingerprint(&rec.store, &rec.bubbles), want);
    }

    #[test]
    fn rejected_batches_are_never_logged() {
        let (store, config) = fixture(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut search = SearchStats::new();
        let mut dm = DurableMaintainer::create(
            store,
            config,
            DurabilityConfig::default(),
            MemSink::new(),
            MemCheckpoints::new(),
            &mut rng,
            &mut search,
        )
        .unwrap();
        let wal_before = dm.wal_sink().bytes().len();
        let bad = Batch {
            deletes: vec![],
            inserts: vec![(vec![f64::NAN, 0.0], None)],
        };
        assert!(dm.apply(&bad, &mut rng, &mut search).is_err());
        assert_eq!(dm.wal_sink().bytes().len(), wal_before);
        assert_eq!(dm.batches_applied(), 0);
    }

    #[test]
    fn missing_everything_is_a_typed_error() {
        let checkpoints = MemCheckpoints::new();
        let err = recover(&[], &checkpoints).unwrap_err();
        assert!(
            matches!(err, RecoveryError::NoUsableCheckpoint { tried: 0, .. }),
            "{err}"
        );
    }
}
