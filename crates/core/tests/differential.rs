//! Differential suite: every parallel entry point of the incremental
//! maintainer must be *bit-identical* to the serial code — assignments,
//! bubble sufficient statistics, audit reports, and the instrumented
//! distance-computation counters alike — for every thread count.
//!
//! Rationale: the paper's efficiency claims are stated in distance
//! computations (Figures 10/11) and its quality claims in the summary
//! statistics feeding OPTICS, so a parallel mode that drifted in either
//! would silently invalidate both reproductions. The suite drives random
//! stores, random update batches, the six dynamic scenarios, and
//! fault-injected batches through `Serial` vs `Threads(2 | 4 | 8)` flows
//! with identically seeded RNGs and demands exact equality of the full
//! observable state after every step.
//!
//! The same contract holds across the *assignment engines*
//! ([`SeedSearch`]) and the warm-start toggle: every engine, hinted or
//! not, must leave the identical summary — they may only differ in how
//! the per-candidate accounting splits into computed/pruned/partial.

use idb_core::{
    AuditError, AuditReport, IncrementalBubbles, MaintainerConfig, Parallelism, SeedSearch,
};
use idb_geometry::SearchStats;
use idb_obs::{Obs, RingRecorder};
use idb_store::{Batch, PointId, PointStore};
use idb_synth::{faulty_batch, ScenarioEngine, ScenarioKind, ScenarioSpec, ALL_BATCH_FAULTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: usize = 256;
const THREAD_MODES: [Parallelism; 3] = [
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

/// The full observable state of one bubble: seed anchor, sufficient
/// statistics `(n, LS, SS)`, and the member list in storage order.
type BubbleState = (Vec<f64>, u64, Vec<f64>, f64, Vec<PointId>);

/// Everything a clustering consumer can observe about the maintainer.
fn fingerprint(ib: &IncrementalBubbles) -> (u64, Vec<BubbleState>) {
    let bubbles = ib
        .bubbles()
        .iter()
        .map(|b| {
            (
                b.seed().to_vec(),
                b.stats().n(),
                b.stats().linear_sum().to_vec(),
                b.stats().square_sum(),
                b.members().to_vec(),
            )
        })
        .collect();
    (ib.total_points(), bubbles)
}

/// Checks the forward assignment table against the member lists.
fn assert_assignments_consistent(ib: &IncrementalBubbles) {
    for (bi, b) in ib.bubbles().iter().enumerate() {
        for &id in b.members() {
            assert_eq!(ib.assignment(id), Some(bi));
        }
    }
}

fn random_store(rng: &mut StdRng, dim: usize, n: usize) -> PointStore {
    let mut store = PointStore::new(dim);
    for _ in 0..n {
        let p: Vec<f64> = (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
        store.insert(&p, None);
    }
    store
}

fn random_config(rng: &mut StdRng, num_bubbles: usize, par: Parallelism) -> MaintainerConfig {
    let engine = match rng.gen_range(0..3) {
        0 => SeedSearch::Brute,
        1 => SeedSearch::Pruned,
        _ => SeedSearch::KdTree,
    };
    MaintainerConfig::new(num_bubbles)
        .with_seed_search(engine)
        .with_warm_start(rng.gen_bool(0.5))
        .with_parallelism(par)
}

/// A plausible random batch against the current store: delete a few live
/// points, insert a few fresh ones.
fn random_batch(store: &PointStore, rng: &mut StdRng) -> Batch {
    let dim = store.dim();
    let deletes = store.sample_distinct(rng.gen_range(0..=store.len().min(8)), rng);
    let inserts = (0..rng.gen_range(0..=12))
        .map(|_| {
            let p: Vec<f64> = (0..dim).map(|_| rng.gen_range(-120.0..120.0)).collect();
            (p, None)
        })
        .collect();
    Batch { deletes, inserts }
}

/// Entry point 1: construction. A serial build and a threaded build from
/// the same RNG seed must agree on every bubble, every assignment, and
/// every counter.
#[test]
fn build_is_bit_identical_across_modes() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0001);
    for case_no in 0..CASES {
        let dim = rng.gen_range(1..=4);
        let num_bubbles: usize = rng.gen_range(2..=10);
        let n = rng.gen_range(num_bubbles..=num_bubbles + 90);
        let store = random_store(&mut rng, dim, n);
        let config_seed: u64 = rng.gen();
        let build_seed: u64 = rng.gen();

        let serial_config = random_config(
            &mut StdRng::seed_from_u64(config_seed),
            num_bubbles,
            Parallelism::Serial,
        );
        let mut serial_stats = SearchStats::new();
        let serial = IncrementalBubbles::build(
            &store,
            serial_config,
            &mut StdRng::seed_from_u64(build_seed),
            &mut serial_stats,
        );
        assert_assignments_consistent(&serial);

        for par in THREAD_MODES {
            let config = random_config(&mut StdRng::seed_from_u64(config_seed), num_bubbles, par);
            let mut stats = SearchStats::new();
            let parallel = IncrementalBubbles::build(
                &store,
                config,
                &mut StdRng::seed_from_u64(build_seed),
                &mut stats,
            );
            assert_eq!(
                fingerprint(&parallel),
                fingerprint(&serial),
                "case {case_no} ({par:?}): built state diverged"
            );
            assert_eq!(
                stats, serial_stats,
                "case {case_no} ({par:?}): distance accounting diverged"
            );
            assert_assignments_consistent(&parallel);
        }
    }
}

/// Entry point 2: batch application + merge/split maintenance. Whole
/// update flows (build, three batches, a maintenance round after each)
/// replayed per mode from identical seeds must match step for step.
#[test]
fn update_and_maintenance_flows_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0002);
    for case_no in 0..CASES {
        let dim = rng.gen_range(1..=3);
        let num_bubbles: usize = rng.gen_range(3..=8);
        let n = rng.gen_range(num_bubbles.max(20)..=120);
        let base_store = random_store(&mut rng, dim, n);
        let config_seed: u64 = rng.gen();
        let flow_seed: u64 = rng.gen();

        // One flow per mode, all from the same seeds; collect the
        // per-round fingerprints and counters.
        let run = |par: Parallelism| {
            let mut store = base_store.clone();
            let config = random_config(&mut StdRng::seed_from_u64(config_seed), num_bubbles, par);
            let mut flow_rng = StdRng::seed_from_u64(flow_seed);
            let mut stats = SearchStats::new();
            let mut ib = IncrementalBubbles::build(&store, config, &mut flow_rng, &mut stats);
            let mut trace = Vec::new();
            for _ in 0..3 {
                let batch = random_batch(&store, &mut flow_rng);
                ib.apply_batch(&mut store, &batch, &mut stats);
                let report = ib.maintain(&store, &mut flow_rng, &mut stats);
                assert_assignments_consistent(&ib);
                trace.push((fingerprint(&ib), report, stats));
            }
            trace
        };

        let serial_trace = run(Parallelism::Serial);
        for par in THREAD_MODES {
            assert_eq!(
                run(par),
                serial_trace,
                "case {case_no} ({par:?}): update flow diverged"
            );
        }
    }
}

/// Entry point 3: the invariant audit. Healthy and corrupted maintainers
/// alike must produce the same report (or the same issue list) in every
/// mode.
#[test]
fn audit_reports_are_bit_identical_across_modes() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0003);
    for case_no in 0..CASES {
        let dim = rng.gen_range(1..=3);
        let num_bubbles: usize = rng.gen_range(2..=8);
        let n = rng.gen_range(num_bubbles.max(10)..=80);
        let store = random_store(&mut rng, dim, n);
        let config_seed: u64 = rng.gen();
        let build_seed: u64 = rng.gen();
        // Roughly half the cases are corrupted before auditing.
        let corruption: Option<(u8, u64)> = if rng.gen_bool(0.5) {
            Some((rng.gen_range(0..4), rng.gen()))
        } else {
            None
        };

        let audit = |par: Parallelism| -> Result<AuditReport, AuditError> {
            let config = random_config(&mut StdRng::seed_from_u64(config_seed), num_bubbles, par);
            let mut stats = SearchStats::new();
            let mut ib = IncrementalBubbles::build(
                &store,
                config,
                &mut StdRng::seed_from_u64(build_seed),
                &mut stats,
            );
            if let Some((kind, cseed)) = corruption {
                let mut crng = StdRng::seed_from_u64(cseed);
                let bi = crng.gen_range(0..ib.num_bubbles());
                match kind {
                    0 => ib.corrupt_stats(bi, 999, vec![1.0; dim], -5.0),
                    1 => ib.corrupt_seed(bi, vec![f64::NAN; dim]),
                    2 => ib.corrupt_total(1_000_000),
                    _ => {
                        let slot = crng.gen_range(0..store.slots());
                        ib.corrupt_assign(slot, u32::MAX - 1);
                    }
                }
            }
            ib.audit(&store)
        };

        let serial = audit(Parallelism::Serial);
        if corruption.is_none() {
            assert!(serial.is_ok(), "case {case_no}: healthy state failed audit");
        }
        for par in THREAD_MODES {
            assert_eq!(
                audit(par),
                serial,
                "case {case_no} ({par:?}): audit outcome diverged"
            );
        }
    }
}

/// Entry point 2, adversarial inputs: a fault-injected batch must be
/// rejected with the same typed error in every mode, leaving the
/// maintainer state untouched and identical.
#[test]
fn fault_injected_batches_fail_identically_across_modes() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0004);
    // 6 fault kinds x 43 cases each > 256 cases through the entry point.
    for round in 0..43 {
        for &fault in &ALL_BATCH_FAULTS {
            let dim = rng.gen_range(1..=3);
            let num_bubbles: usize = rng.gen_range(2..=6);
            let n = rng.gen_range(num_bubbles.max(10)..=60);
            let base_store = random_store(&mut rng, dim, n);
            let build_seed: u64 = rng.gen();
            let fault_seed: u64 = rng.gen();

            let run = |par: Parallelism| {
                let mut store = base_store.clone();
                let config = MaintainerConfig::new(num_bubbles).with_parallelism(par);
                let mut stats = SearchStats::new();
                let mut ib = IncrementalBubbles::build(
                    &store,
                    config,
                    &mut StdRng::seed_from_u64(build_seed),
                    &mut stats,
                );
                let before = fingerprint(&ib);
                let batch = faulty_batch(&store, fault, &mut StdRng::seed_from_u64(fault_seed));
                let err = ib
                    .try_apply_batch(&mut store, &batch, &mut stats)
                    .expect_err("fault-injected batch must be rejected");
                assert_eq!(
                    fingerprint(&ib),
                    before,
                    "round {round} ({fault:?}, {par:?}): rejected batch mutated state"
                );
                // Compare errors by their rendering: `NonFiniteCoordinate`
                // carries the NaN itself, and NaN != NaN under PartialEq.
                (format!("{err:?}"), fingerprint(&ib), stats)
            };

            let serial = run(Parallelism::Serial);
            for par in THREAD_MODES {
                assert_eq!(
                    run(par),
                    serial,
                    "round {round} ({fault:?}, {par:?}): fault handling diverged"
                );
            }
        }
    }
}

/// End-to-end over the paper's dynamic scenarios: several batches of each
/// scenario kind, applied and maintained per mode from the same seeds,
/// must leave identical summaries and pass identical audits.
#[test]
fn dynamic_scenarios_are_bit_identical_across_modes() {
    for (k, kind) in ScenarioKind::all().into_iter().enumerate() {
        let run = |par: Parallelism| {
            let seed = 0x5CEA_0000 + k as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = ScenarioSpec::named(kind, 2, 600, 0.05);
            let mut eng = ScenarioEngine::new(spec);
            let mut store = eng.populate(&mut rng);
            let config = MaintainerConfig::new(12).with_parallelism(par);
            let mut stats = SearchStats::new();
            let mut ib = IncrementalBubbles::build(&store, config, &mut rng, &mut stats);
            let mut trace = Vec::new();
            for _ in 0..4 {
                let batch = eng.plan(&mut rng);
                let inserted = ib.apply_batch(&mut store, &batch, &mut stats);
                eng.confirm(&inserted);
                ib.maintain(&store, &mut rng, &mut stats);
                ib.audit(&store).expect("invariants hold after maintenance");
                trace.push((fingerprint(&ib), stats));
            }
            trace
        };

        let serial = run(Parallelism::Serial);
        for par in THREAD_MODES {
            assert_eq!(run(par), serial, "{kind:?} ({par:?}): scenario diverged");
        }
    }
}

/// Every assignment engine, warm-started or cold, must produce the
/// bit-identical summary through a full dynamic flow — build, update
/// batches, merge/split maintenance (whose released points run the
/// donor-neighbour warm-start path), and adaptive growth/retirement (whose
/// splits and releases re-seed the matrix the hints point into). Engines
/// may only differ in how the per-candidate accounting splits into
/// computed/pruned/partial; the per-candidate total itself must match, and
/// the pruned engines must never compute more distances than brute force.
#[test]
fn engines_and_warm_start_are_bit_identical_through_dynamic_flows() {
    const ENGINES: [SeedSearch; 3] = [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree];
    let mut rng = StdRng::seed_from_u64(0xD1FF_0005);
    for case_no in 0..CASES {
        let dim = rng.gen_range(1..=3);
        let num_bubbles: usize = rng.gen_range(3..=8);
        let n = rng.gen_range(num_bubbles.max(20)..=120);
        let base_store = random_store(&mut rng, dim, n);
        let flow_seed: u64 = rng.gen();
        let adaptive = rng.gen_bool(0.3);

        let run = |engine: SeedSearch, warm: bool| {
            let mut store = base_store.clone();
            let config = MaintainerConfig::new(num_bubbles)
                .with_seed_search(engine)
                .with_warm_start(warm)
                .with_parallelism(Parallelism::Serial);
            let mut flow_rng = StdRng::seed_from_u64(flow_seed);
            let mut stats = SearchStats::new();
            let mut ib = IncrementalBubbles::build(&store, config, &mut flow_rng, &mut stats);
            let mut trace = Vec::new();
            for round in 0..3 {
                let batch = random_batch(&store, &mut flow_rng);
                ib.apply_batch(&mut store, &batch, &mut stats);
                ib.maintain(&store, &mut flow_rng, &mut stats);
                if adaptive && round == 1 && ib.num_bubbles() > 2 {
                    ib.retire_bubble(0, &store, &mut stats);
                }
                assert_assignments_consistent(&ib);
                trace.push(fingerprint(&ib));
            }
            (trace, stats)
        };

        let (brute_trace, brute_stats) = run(SeedSearch::Brute, false);
        assert_eq!(brute_stats.pruned, 0, "case {case_no}: brute never prunes");
        assert_eq!(brute_stats.partial, 0, "case {case_no}: brute never aborts");
        for engine in ENGINES {
            for warm in [false, true] {
                let (trace, stats) = run(engine, warm);
                assert_eq!(
                    trace, brute_trace,
                    "case {case_no} ({engine:?}, warm={warm}): summary diverged from brute force"
                );
                assert_eq!(
                    stats.total(),
                    brute_stats.total(),
                    "case {case_no} ({engine:?}, warm={warm}): candidate accounting diverged"
                );
                assert!(
                    stats.computed <= brute_stats.computed,
                    "case {case_no} ({engine:?}, warm={warm}): computed more than brute force"
                );
            }
        }
    }
}

/// Regression for the stale warm-start hint: `retire_bubble` swap-removes
/// a bubble, so the hint recorded by the previous insertion can name the
/// retired bubble or the one that moved into its slot. Interleave retires
/// with single-point insertions — the pattern that makes the very next
/// search start from the (possibly remapped) hint — across every engine ×
/// warm-start combination, and demand the exact brute-force summary after
/// every step.
#[test]
fn retire_then_insert_interleavings_are_bit_identical_across_engines() {
    const ENGINES: [SeedSearch; 3] = [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree];
    let mut rng = StdRng::seed_from_u64(0x2E71_2E00);
    for case_no in 0..CASES {
        let dim = rng.gen_range(1..=3);
        let num_bubbles: usize = rng.gen_range(4..=9);
        let n = rng.gen_range(num_bubbles.max(24)..=100);
        let base_store = random_store(&mut rng, dim, n);
        let flow_seed: u64 = rng.gen();
        // Which bubble each of the rounds retires (resolved mod the live
        // population at retire time) and how many inserts chase it.
        let plan: Vec<(usize, usize)> = (0..4)
            .map(|_| (rng.gen_range(0..32), rng.gen_range(1..=4)))
            .collect();

        let run = |engine: SeedSearch, warm: bool| {
            let mut store = base_store.clone();
            let config = MaintainerConfig::new(num_bubbles)
                .with_seed_search(engine)
                .with_warm_start(warm)
                .with_parallelism(Parallelism::Serial);
            let mut flow_rng = StdRng::seed_from_u64(flow_seed);
            let mut stats = SearchStats::new();
            let mut ib = IncrementalBubbles::build(&store, config, &mut flow_rng, &mut stats);
            let mut trace = Vec::new();
            for &(retire_pick, inserts) in &plan {
                // Seed the hint: an insertion lands somewhere and is
                // remembered as the next search's warm start.
                let warmup = Batch {
                    deletes: vec![],
                    inserts: vec![(
                        (0..store.dim())
                            .map(|_| flow_rng.gen_range(-120.0..120.0))
                            .collect(),
                        None,
                    )],
                };
                ib.apply_batch(&mut store, &warmup, &mut stats);
                if ib.num_bubbles() > 3 {
                    ib.retire_bubble(retire_pick % ib.num_bubbles(), &store, &mut stats);
                }
                // Inserts straight after the retire run the hinted search
                // against the remapped population.
                let chase = Batch {
                    deletes: vec![],
                    inserts: (0..inserts)
                        .map(|_| {
                            (
                                (0..store.dim())
                                    .map(|_| flow_rng.gen_range(-120.0..120.0))
                                    .collect(),
                                None,
                            )
                        })
                        .collect(),
                };
                ib.apply_batch(&mut store, &chase, &mut stats);
                assert_assignments_consistent(&ib);
                ib.validate(&store);
                trace.push(fingerprint(&ib));
            }
            (trace, stats)
        };

        let (brute_trace, brute_stats) = run(SeedSearch::Brute, false);
        for engine in ENGINES {
            for warm in [false, true] {
                let (trace, stats) = run(engine, warm);
                assert_eq!(
                    trace, brute_trace,
                    "case {case_no} ({engine:?}, warm={warm}): retire→insert flow diverged"
                );
                assert_eq!(
                    stats.total(),
                    brute_stats.total(),
                    "case {case_no} ({engine:?}, warm={warm}): candidate accounting diverged"
                );
            }
        }
    }
}

/// The recorded journal is part of the determinism contract: a threaded
/// run must emit the identical event stream (durations masked — they are
/// the only wall-clock field) and the identical metric counters as the
/// serial run, because structural events are emitted from the single
/// driving thread and counter deltas come from the chunk-order-merged
/// search accounting.
#[test]
fn journal_and_counters_are_bit_identical_between_serial_and_threaded_runs() {
    for (k, kind) in ScenarioKind::all().into_iter().enumerate() {
        let run = |par: Parallelism| {
            let seed = 0x0B5E_0000 + k as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = ScenarioSpec::named(kind, 2, 500, 0.05);
            let mut eng = ScenarioEngine::new(spec);
            let mut store = eng.populate(&mut rng);
            let config = MaintainerConfig::new(10).with_parallelism(par);
            let mut stats = SearchStats::new();
            let mut ib = IncrementalBubbles::build(&store, config, &mut rng, &mut stats);
            let ring = Arc::new(RingRecorder::new());
            let obs = Obs::with_recorder(ring.clone());
            ib.set_obs(obs.clone());
            for _ in 0..4 {
                let batch = eng.plan(&mut rng);
                let inserted = ib.apply_batch(&mut store, &batch, &mut stats);
                eng.confirm(&inserted);
                ib.maintain(&store, &mut rng, &mut stats);
            }
            let events: Vec<_> = ring.events().iter().map(|e| e.masked()).collect();
            (events, obs.metrics().counters(), fingerprint(&ib))
        };

        let serial = run(Parallelism::Serial);
        assert!(
            !serial.0.is_empty(),
            "{kind:?}: the flow must journal something"
        );
        for par in THREAD_MODES {
            let threaded = run(par);
            assert_eq!(
                threaded.0, serial.0,
                "{kind:?} ({par:?}): journal event stream diverged"
            );
            assert_eq!(
                threaded.1, serial.1,
                "{kind:?} ({par:?}): metric counters diverged"
            );
            assert_eq!(
                threaded.2, serial.2,
                "{kind:?} ({par:?}): summary fingerprint diverged"
            );
        }
    }
}

/// Entry point 8: the cold tier. A durable stream applied with a tiny
/// hot-point budget must be bit-identical to the same stream applied
/// fully resident — per-step store and summary snapshot bytes, the final
/// WAL byte stream, the search counters, and the journal up to the
/// tier's own traffic events (`tier_fetch`/`tier_evict`, which by design
/// exist only when a tier is mounted) — while the tiered run's resident
/// payload count stays bounded by the hot budget plus one batch of
/// overshoot. Tiering, like threads and engines, is pure physics.
#[test]
fn tiered_runs_are_bit_identical_to_untiered() {
    use idb_core::{DurabilityConfig, DurableMaintainer, MemCheckpoints};
    use idb_obs::EventKind;
    use idb_store::MemSink;

    let mut rng = StdRng::seed_from_u64(0x71E2_0001);
    let mut total_cold_reads = 0u64;
    let mut total_evictions = 0u64;
    for case_no in 0..24 {
        let dim = rng.gen_range(1..=3);
        let num_bubbles: usize = rng.gen_range(3..=8);
        let n = rng.gen_range((num_bubbles + 2).max(30)..=120);
        let base_store = random_store(&mut rng, dim, n);
        let build_seed: u64 = rng.gen();
        let hot = rng.gen_range(2..=8usize);

        // Plan the whole stream against a simulation copy so both runs
        // see byte-identical batches: deletes reference ids that are live
        // at that step, and id assignment is deterministic (same
        // free-list evolution on both sides).
        let mut sim = base_store.clone();
        let steps: Vec<(Batch, u64)> = (0..5)
            .map(|_| {
                let batch = random_batch(&sim, &mut rng);
                for &id in &batch.deletes {
                    sim.remove(id);
                }
                for (p, l) in &batch.inserts {
                    sim.insert(p, *l);
                }
                (batch, rng.gen())
            })
            .collect();

        let run = |hot_points: Option<usize>| {
            let mut stats = SearchStats::new();
            let store = base_store.clone();
            let mut ib = IncrementalBubbles::build(
                &store,
                MaintainerConfig::new(num_bubbles),
                &mut StdRng::seed_from_u64(build_seed),
                &mut stats,
            );
            let ring = Arc::new(RingRecorder::new());
            ib.set_obs(Obs::with_recorder(ring.clone()));
            let dcfg = DurabilityConfig {
                checkpoint_interval: 2,
                hot_points,
                ..DurabilityConfig::default()
            };
            let mut dm =
                DurableMaintainer::adopt(store, ib, dcfg, MemSink::new(), MemCheckpoints::new())
                    .expect("adopt");
            let mut trace: Vec<Vec<u8>> = Vec::new();
            for (batch, seed) in &steps {
                dm.apply_with(batch, *seed, true, &mut stats)
                    .expect("apply");
                if let Some(hot) = hot_points {
                    let resident = dm.store().resident_points();
                    assert!(
                        resident <= hot + batch.inserts.len(),
                        "case {case_no}: {resident} resident points exceeds the \
                         hot budget {hot} plus one batch of {} inserts",
                        batch.inserts.len()
                    );
                }
                let mut snap = Vec::new();
                dm.store().write_snapshot(&mut snap).expect("vec write");
                dm.bubbles().write_snapshot(&mut snap).expect("vec write");
                trace.push(snap);
            }
            let wal = dm.wal_sink().bytes().to_vec();
            let events: Vec<_> = ring
                .events()
                .iter()
                .map(|e| e.masked())
                .filter(|e| {
                    !matches!(
                        e.kind,
                        EventKind::TierFetch { .. } | EventKind::TierEvict { .. }
                    )
                })
                .collect();
            let counters = dm.store().tier_counters();
            (trace, wal, events, stats, counters)
        };

        let untiered = run(None);
        let tiered = run(Some(hot));
        assert_eq!(
            tiered.0, untiered.0,
            "case {case_no} (hot={hot}): snapshot byte trace diverged"
        );
        assert_eq!(
            tiered.1, untiered.1,
            "case {case_no} (hot={hot}): WAL byte stream diverged"
        );
        assert_eq!(
            tiered.2, untiered.2,
            "case {case_no} (hot={hot}): journal diverged beyond tier traffic"
        );
        assert_eq!(
            tiered.3, untiered.3,
            "case {case_no} (hot={hot}): search counters diverged"
        );
        assert!(
            untiered.4.is_none(),
            "case {case_no}: the untiered run must not mount a tier"
        );
        let c = tiered.4.expect("tiered run must expose tier counters");
        total_cold_reads += c.cold_reads;
        total_evictions += c.evictions;
    }
    // The equivalence must not be vacuous: across the suite the tiered
    // runs have to actually hit the cold medium and run the clock hand.
    assert!(
        total_cold_reads > 0,
        "no case ever read from the cold tier — budgets too generous"
    );
    assert!(
        total_evictions > 0,
        "no case ever evicted — budgets too generous"
    );
}
