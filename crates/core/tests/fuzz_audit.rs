//! Ad-hoc invariant fuzz (review audit).
use idb_core::{AdaptivePolicy, IncrementalBubbles, MaintainerConfig};
use idb_geometry::SearchStats;
use idb_store::{Batch, PointId, PointStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn adaptive_mixed_ops_fuzz() {
    for seed in 0u64..60 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = PointStore::new(2);
        for _ in 0..300 {
            store.insert(
                &[rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)],
                None,
            );
        }
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(10), &mut rng, &mut search);
        ib.validate(&store);
        for step in 0..40 {
            let op = rng.gen_range(0..6);
            match op {
                0 => {
                    // batch: random deletes + inserts (sometimes heavily skewed)
                    let ndel = rng.gen_range(0..(store.len() / 2).max(1));
                    let mut ids: Vec<PointId> = store.ids().collect();
                    // random subset
                    for i in 0..ndel.min(ids.len()) {
                        let j = rng.gen_range(i..ids.len());
                        ids.swap(i, j);
                    }
                    ids.truncate(ndel);
                    let nins = rng.gen_range(0..200);
                    let c = rng.gen_range(0.0..300.0);
                    let batch = Batch {
                        deletes: ids,
                        inserts: (0..nins)
                            .map(|_| {
                                (
                                    vec![
                                        c + rng.gen_range(-3.0..3.0),
                                        c + rng.gen_range(-3.0..3.0),
                                    ],
                                    None,
                                )
                            })
                            .collect(),
                    };
                    ib.apply_batch(&mut store, &batch, &mut search);
                }
                1 => {
                    ib.maintain(&store, &mut rng, &mut search);
                }
                2 => {
                    let policy = AdaptivePolicy::around(rng.gen_range(5.0..60.0));
                    ib.maintain_adaptive(&store, &mut rng, &mut search, &policy);
                }
                3 => {
                    // grow heaviest if splittable
                    let h = (0..ib.num_bubbles())
                        .max_by_key(|&i| ib.bubble(i).members().len())
                        .unwrap();
                    if ib.bubble(h).members().len() >= 2 {
                        ib.grow_bubble(h, &store, &mut rng, &mut search);
                    }
                }
                4 => {
                    if ib.num_bubbles() > 2 {
                        let i = rng.gen_range(0..ib.num_bubbles());
                        ib.retire_bubble(i, &store, &mut search);
                    }
                }
                _ => {
                    // snapshot roundtrip
                    let mut buf = Vec::new();
                    ib.write_snapshot(&mut buf).unwrap();
                    ib = IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store)
                        .unwrap_or_else(|e| panic!("seed {seed} step {step}: snapshot {e}"));
                }
            }
            ib.validate(&store);
            assert_eq!(
                ib.total_points(),
                store.len() as u64,
                "seed {seed} step {step}"
            );
        }
    }
}
