//! Review audit: snapshot divergence via slot reuse + degenerate fuzz.
use idb_core::{IncrementalBubbles, MaintainerConfig, QualityKind, SplitSeedPolicy};
use idb_geometry::SearchStats;
use idb_store::{Batch, PointId, PointStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn snapshot_accepts_slot_reused_diverged_store() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut store = PointStore::new(2);
    for i in 0..200 {
        store.insert(&[i as f64, (i % 7) as f64], Some(0));
    }
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(8), &mut rng, &mut search);
    let mut buf = Vec::new();
    ib.write_snapshot(&mut buf).unwrap();

    // Store diverges after the checkpoint: one point is deleted and a NEW
    // point with totally different coordinates reuses the same slot.
    let victim = store.ids().next().unwrap();
    store.remove(victim);
    let reused = store.insert(&[1e6, 1e6], Some(9));
    assert_eq!(reused, victim, "slot reused");

    // The decoder promises: "a snapshot from a diverged store is rejected
    // instead of silently producing a corrupt summary."
    match IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store) {
        Err(_) => println!("rejected, as documented"),
        Ok(restored) => {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                restored.validate(&store)
            }));
            println!(
                "ACCEPTED diverged store; validate() {}",
                if r.is_err() {
                    "PANICS (corrupt stats)"
                } else {
                    "passes"
                }
            );
        }
    }
}

#[test]
fn degenerate_duplicates_fuzz() {
    for seed in 0u64..40 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = PointStore::new(1);
        // Lots of exact duplicates: degenerate splits, zero pairwise seeds.
        for _ in 0..120 {
            let v = rng.gen_range(0..4) as f64;
            store.insert(&[v], None);
        }
        let mut search = SearchStats::new();
        let cfg = MaintainerConfig::new(6)
            .with_quality(if seed % 2 == 0 {
                QualityKind::Beta
            } else {
                QualityKind::Extent
            })
            .with_split_seeds(if seed % 3 == 0 {
                SplitSeedPolicy::Spread
            } else {
                SplitSeedPolicy::Random
            });
        let mut ib = IncrementalBubbles::build(&store, cfg, &mut rng, &mut search);
        for step in 0..30 {
            match rng.gen_range(0..5) {
                0 => {
                    // delete nearly everything
                    let keep = rng.gen_range(2..10);
                    let ids: Vec<PointId> = store.ids().skip(keep).collect();
                    let batch = Batch {
                        deletes: ids,
                        inserts: Vec::new(),
                    };
                    ib.apply_batch(&mut store, &batch, &mut search);
                }
                1 => {
                    let batch = Batch {
                        deletes: Vec::new(),
                        inserts: (0..rng.gen_range(1..80))
                            .map(|_| (vec![2.0], None))
                            .collect(),
                    };
                    ib.apply_batch(&mut store, &batch, &mut search);
                }
                2 => {
                    ib.maintain(&store, &mut rng, &mut search);
                }
                3 => {
                    if ib.num_bubbles() > 2 {
                        let i = rng.gen_range(0..ib.num_bubbles());
                        ib.retire_bubble(i, &store, &mut search);
                    }
                }
                _ => {
                    let h = (0..ib.num_bubbles())
                        .max_by_key(|&i| ib.bubble(i).members().len())
                        .unwrap();
                    if ib.bubble(h).members().len() >= 2 {
                        ib.grow_bubble(h, &store, &mut rng, &mut search);
                    }
                }
            }
            ib.validate(&store);
            assert_eq!(
                ib.total_points(),
                store.len() as u64,
                "seed {seed} step {step}"
            );
        }
    }
}
