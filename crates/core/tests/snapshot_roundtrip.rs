//! Snapshot round-trip property sweep (engine × warm-start × format).
//!
//! Persisting a maintainer and reading it back must reproduce the decoded
//! configuration and every bubble's sufficient statistics *exactly* — for
//! each seed-search engine, with warm-start hints on and off, and through
//! both the current v2 checksummed framing and the legacy v1 format (for
//! both the bubble snapshot and the store snapshot it sits on).
//!
//! Two knobs are deliberately runtime-only and not persisted: `warm_start`
//! (assignment hints are rebuilt from scratch after a load) and
//! `parallelism` (an execution choice, not state). A decoded maintainer
//! therefore carries their defaults regardless of what the writer used;
//! the sweep asserts exactly that, so any accidental change to what is and
//! is not persisted fails loudly.

use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism, SeedSearch};
use idb_geometry::SearchStats;
use idb_store::PointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENGINES: [SeedSearch; 3] = [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree];

/// Re-encodes framed v2 snapshot bytes as the legacy v1 format:
/// magic + version 1 + the identical body, no length or checksums.
fn to_v1(v2: &[u8], magic: &[u8; 4]) -> Vec<u8> {
    let mut v1 = Vec::new();
    v1.extend_from_slice(magic);
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&v2[24..]);
    v1
}

/// Strips the trailing free-list section a current store snapshot carries,
/// which the v1 era predates.
fn strip_free_section(body: Vec<u8>, store: &PointStore) -> Vec<u8> {
    let free_bytes = 8 + 4 * store.free_slots().len();
    let mut body = body;
    body.truncate(body.len() - free_bytes);
    body
}

fn churned_store(dim: usize, rng: &mut StdRng) -> PointStore {
    let mut store = PointStore::new(dim);
    let mut ids = Vec::new();
    for i in 0..140 {
        let p: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        ids.push(store.insert(&p, if i % 6 == 0 { None } else { Some(i % 3) }));
    }
    for i in (0..140).step_by(5) {
        store.remove(ids[i]);
    }
    store
}

/// Per-bubble (seed bits, n, linear-sum bits, square-sum bits, member ids).
type BubbleKey = (Vec<u64>, u64, Vec<u64>, u64, Vec<u32>);

fn assert_bit_identical(a: &IncrementalBubbles, b: &IncrementalBubbles, what: &str) {
    let key = |ib: &IncrementalBubbles| -> Vec<BubbleKey> {
        ib.bubbles()
            .iter()
            .map(|bb| {
                (
                    bb.seed().iter().map(|x| x.to_bits()).collect(),
                    bb.stats().n(),
                    bb.stats()
                        .linear_sum()
                        .iter()
                        .map(|x| x.to_bits())
                        .collect(),
                    bb.stats().square_sum().to_bits(),
                    bb.members().iter().map(|id| id.0).collect(),
                )
            })
            .collect()
    };
    assert_eq!(key(a), key(b), "{what}: bubble state diverged");
}

#[test]
fn engine_by_warm_start_by_format_round_trip_sweep() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for &engine in &ENGINES {
        for warm_start in [false, true] {
            for dim in [1usize, 3] {
                let store = churned_store(dim, &mut rng);
                let config = MaintainerConfig::new(7)
                    .with_probability(0.93)
                    .with_seed_search(engine)
                    .with_warm_start(warm_start)
                    .with_parallelism(Parallelism::Serial);
                let mut stats = SearchStats::new();
                let mut build_rng = StdRng::seed_from_u64(rng.gen());
                let ib =
                    IncrementalBubbles::build(&store, config.clone(), &mut build_rng, &mut stats);

                let mut store_v2 = Vec::new();
                store.write_snapshot(&mut store_v2).unwrap();
                let mut ib_v2 = Vec::new();
                ib.write_snapshot(&mut ib_v2).unwrap();

                let store_variants: [(&str, Vec<u8>); 2] = [
                    ("store v2", store_v2.clone()),
                    (
                        "store v1",
                        strip_free_section(to_v1(&store_v2, b"IDBP"), &store),
                    ),
                ];
                let ib_variants: [(&str, Vec<u8>); 2] = [
                    ("bubbles v2", ib_v2.clone()),
                    ("bubbles v1", to_v1(&ib_v2, b"IDBB")),
                ];

                for (sname, sbytes) in &store_variants {
                    for (bname, bbytes) in &ib_variants {
                        let what =
                            format!("{engine:?}/warm={warm_start}/dim={dim}/{sname}/{bname}");
                        let rstore = PointStore::read_snapshot(&mut sbytes.as_slice())
                            .unwrap_or_else(|e| panic!("{what}: {e}"));
                        let rib =
                            IncrementalBubbles::read_snapshot(&mut bbytes.as_slice(), &rstore)
                                .unwrap_or_else(|e| panic!("{what}: {e}"));

                        // Persisted knobs decode exactly.
                        let rc = rib.config();
                        assert_eq!(rc.num_bubbles, config.num_bubbles, "{what}");
                        assert_eq!(
                            rc.probability.to_bits(),
                            config.probability.to_bits(),
                            "{what}"
                        );
                        assert_eq!(rc.seed_search, engine, "{what}");
                        assert_eq!(rc.quality, config.quality, "{what}");
                        assert_eq!(rc.split_seeds, config.split_seeds, "{what}");
                        // Runtime-only knobs come back as defaults, never
                        // as whatever the writer happened to run with.
                        let defaults = MaintainerConfig::new(rc.num_bubbles);
                        assert_eq!(rc.warm_start, defaults.warm_start, "{what}");
                        assert_eq!(rc.parallelism, defaults.parallelism, "{what}");

                        assert_bit_identical(&ib, &rib, &what);

                        // The restored maintainer is operational under its
                        // engine: one maintenance round must run clean.
                        let mut rib = rib;
                        let mut round_rng = StdRng::seed_from_u64(17);
                        let mut rstats = SearchStats::new();
                        rib.maintain(&rstore, &mut round_rng, &mut rstats);
                        rib.audit(&rstore).unwrap_or_else(|e| panic!("{what}: {e}"));
                    }
                }
            }
        }
    }
}

#[test]
fn snapshots_of_identical_state_are_byte_identical() {
    // Writer determinism: the same maintainer snapshots to the same bytes
    // every time — a prerequisite for the durability layer's checkpoint
    // comparisons.
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    let store = churned_store(2, &mut rng);
    let config = MaintainerConfig::new(6).with_seed_search(SeedSearch::KdTree);
    let mut stats = SearchStats::new();
    let mut build_rng = StdRng::seed_from_u64(3);
    let ib = IncrementalBubbles::build(&store, config, &mut build_rng, &mut stats);
    let mut a = Vec::new();
    let mut b = Vec::new();
    ib.write_snapshot(&mut a).unwrap();
    ib.write_snapshot(&mut b).unwrap();
    assert_eq!(a, b);
}
