//! Crash-consistency differential suite.
//!
//! The durability contract (DESIGN.md §11): killing the process at *any*
//! byte of the WAL and recovering from the latest usable checkpoint plus
//! the WAL tail must yield store, bubble and engine state **bit-identical**
//! to the uninterrupted run at the corresponding batch count — and after
//! finishing the remaining stream, bit-identical final state. Every
//! non-recoverable corruption must surface as a typed [`RecoveryError`],
//! never a panic.
//!
//! The suite sweeps 256+ randomized scenario × crash-point cases: the
//! paper's dynamic scenarios with varied dimensionality, engine, and
//! checkpoint cadence, killed at record boundaries, at random mid-record
//! bytes, across a full byte sweep of the final record, and under
//! fault-injected sinks (short writes, failed fsyncs, dropped and
//! corrupted checkpoints).

use idb_core::{
    recover, recover_chain, recover_with_obs, CheckpointStore, DurabilityConfig, DurableMaintainer,
    FsCheckpoints, Health, IncrementalBubbles, MaintainerConfig, MemCheckpoints, Parallelism,
    RecoveryError, SeedSearch, DELTA_CHECKPOINT_MAGIC,
};
use idb_geometry::SearchStats;
use idb_obs::{check_journal, Event, EventKind, Obs, RingRecorder};
use idb_store::segment::{MemSegments, SegmentId, SegmentedSink};
use idb_store::wal::{read_wal, scratch_dir, FileSink, MemSink};
use idb_store::{Batch, PointStore};
use idb_synth::{flip_bit, FaultSink, ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

const ENGINES: [SeedSearch; 3] = [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree];

/// Bit-exact state: live points (id, coordinate bits, label) in live-list
/// order, the free-list reuse stack, and every bubble's seed bits,
/// sufficient statistics bits and member list.
type Fingerprint = (
    Vec<(u32, Vec<u64>, Option<u32>)>,
    Vec<u32>,
    Vec<(Vec<u64>, u64, Vec<u64>, u64, Vec<u32>)>,
);

fn fingerprint(store: &PointStore, ib: &IncrementalBubbles) -> Fingerprint {
    // Payloads go through the demand-fetch path so the fingerprint works
    // over tiered stores too (ambient IDB_HOT_POINTS runs of this suite).
    let mut buf = Vec::new();
    let points = store
        .ids()
        .map(|id| {
            buf.clear();
            store
                .read_point_into(id, &mut buf)
                .expect("fingerprint: point fetch failed");
            (
                id.0,
                buf.iter().map(|x| x.to_bits()).collect(),
                store.label(id),
            )
        })
        .collect();
    let free = store.free_slots().to_vec();
    let bubbles = ib
        .bubbles()
        .iter()
        .map(|b| {
            (
                b.seed().iter().map(|x| x.to_bits()).collect(),
                b.stats().n(),
                b.stats().linear_sum().iter().map(|x| x.to_bits()).collect(),
                b.stats().square_sum().to_bits(),
                b.members().iter().map(|id| id.0).collect(),
            )
        })
        .collect();
    (points, free, bubbles)
}

/// One planned step of an update stream: the batch, the maintenance RNG
/// seed, and whether a maintenance round runs — fixed up front so the
/// stream is identical with and without crashes.
struct PlannedStep {
    batch: Batch,
    round_seed: u64,
    maintain: bool,
}

struct Scenario {
    store: PointStore,
    config: MaintainerConfig,
    build_seed: u64,
    steps: Vec<PlannedStep>,
    dcfg: DurabilityConfig,
}

fn plan_scenario(case: usize, rng: &mut StdRng) -> Scenario {
    let kinds = ScenarioKind::all();
    let kind = kinds[case % kinds.len()];
    let dim = rng.gen_range(1..=3);
    let n = rng.gen_range(300..=600);
    let num_bubbles = rng.gen_range(8..=12);
    let engine = ENGINES[rng.gen_range(0..ENGINES.len())];
    let spec = ScenarioSpec::named(kind, dim, n, 0.05);
    let mut eng = ScenarioEngine::new(spec);
    let store = eng.populate(rng);
    // Pre-generate the whole stream against a simulation copy, so the
    // batches (including which ids get deleted) are crash-independent.
    let mut sim = store.clone();
    let steps = (0..rng.gen_range(6..=10))
        .map(|_| {
            let (batch, _) = eng.step_plain(&mut sim, rng);
            PlannedStep {
                batch,
                round_seed: rng.gen(),
                maintain: rng.gen_bool(0.85),
            }
        })
        .collect();
    Scenario {
        store,
        config: MaintainerConfig::new(num_bubbles)
            .with_seed_search(engine)
            .with_parallelism(Parallelism::Serial),
        build_seed: rng.gen(),
        steps,
        dcfg: DurabilityConfig {
            checkpoint_interval: rng.gen_range(1..=4),
            ..DurabilityConfig::default()
        },
    }
}

/// Runs the uninterrupted reference over a [`MemSink`], recording after
/// every batch the committed WAL length, the checkpoint population, and
/// the state fingerprint. Returns those traces plus the final WAL bytes
/// and checkpoint store.
#[allow(clippy::type_complexity)]
fn reference_run(
    sc: &Scenario,
) -> (
    Vec<usize>,
    Vec<MemCheckpoints>,
    Vec<Fingerprint>,
    Vec<u8>,
    MemCheckpoints,
) {
    let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
    let mut stats = SearchStats::new();
    let store = sc.store.clone();
    let ib = IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
    let mut dm = DurableMaintainer::adopt(
        store,
        ib,
        sc.dcfg.clone(),
        MemSink::new(),
        MemCheckpoints::new(),
    )
    .expect("MemSink never fails");
    let mut wal_lens = vec![dm.wal_sink().bytes().len()];
    let mut ckpts = vec![dm.checkpoints().clone()];
    let mut fps = vec![fingerprint(dm.store(), dm.bubbles())];
    for step in &sc.steps {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .expect("planned batches are valid");
        wal_lens.push(dm.wal_sink().bytes().len());
        ckpts.push(dm.checkpoints().clone());
        fps.push(fingerprint(dm.store(), dm.bubbles()));
    }
    let (_, _, sink, final_ckpts) = dm.into_parts();
    (wal_lens, ckpts, fps, sink.into_bytes(), final_ckpts)
}

/// Recovers from a crash at WAL byte `cut`, asserts the recovered state is
/// bit-identical to the reference at the durable batch count, finishes the
/// stream on the recovered maintainer, and asserts the final state — plus
/// a second recovery from the post-resume disk — matches the reference
/// end state.
#[allow(clippy::too_many_arguments)]
fn crash_recover_finish(
    sc: &Scenario,
    wal_bytes: &[u8],
    ends: &[usize],
    ckpt_trace: &[MemCheckpoints],
    fps: &[Fingerprint],
    cut: usize,
    drop_newest_checkpoint: bool,
    label: &str,
) {
    let durable = ends.iter().filter(|&&e| e <= cut).count();
    // Checkpoints persisted strictly before the crash moment: the batch
    // whose WAL bytes end at `cut` may have checkpointed, anything later
    // cannot have.
    let mut ckpts = ckpt_trace[durable].clone();
    if drop_newest_checkpoint {
        // Simulate the newest checkpoint being lost: recovery must fall
        // back to an older one and replay a longer WAL tail.
        if let Some(&max) = ckpts.seqs().unwrap().iter().max() {
            if max > 0 {
                ckpts.remove(max);
            }
        }
    }
    let rec = recover(&wal_bytes[..cut], &ckpts)
        .unwrap_or_else(|e| panic!("{label}: recovery failed at byte {cut}: {e}"));
    assert_eq!(rec.batches_durable, durable as u64, "{label} at byte {cut}");
    assert_eq!(
        fingerprint(&rec.store, &rec.bubbles),
        fps[durable],
        "{label}: state after crash at byte {cut} diverged"
    );
    assert_eq!(rec.bubbles.config().seed_search, sc.config.seed_search);

    // Finish the stream from where the durable state left off.
    let mut dm = DurableMaintainer::resume(rec, sc.dcfg.clone(), MemSink::new(), ckpts)
        .expect("MemSink never fails");
    let mut stats = SearchStats::new();
    for step in &sc.steps[durable..] {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .expect("planned batches are valid");
    }
    assert_eq!(
        fingerprint(dm.store(), dm.bubbles()),
        *fps.last().unwrap(),
        "{label}: finished stream after crash at byte {cut} diverged"
    );
    // And the post-resume disk state (fresh WAL epoch + old checkpoints)
    // must itself recover to the same final state.
    let (_, _, sink, ckpts) = dm.into_parts();
    let rec2 = recover(sink.bytes(), &ckpts)
        .unwrap_or_else(|e| panic!("{label}: second recovery failed: {e}"));
    assert_eq!(rec2.batches_durable, sc.steps.len() as u64);
    assert_eq!(
        fingerprint(&rec2.store, &rec2.bubbles),
        *fps.last().unwrap(),
        "{label}: second recovery diverged"
    );
}

/// The centerpiece: randomized scenarios × crash points, ≥ 256 cases.
/// Every crash point recovers bit-identically and finishes the stream
/// bit-identically.
#[test]
fn crash_points_recover_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0001);
    let mut cases = 0;
    for case in 0..32 {
        let sc = plan_scenario(case, &mut rng);
        let (_wal_lens, ckpt_trace, fps, wal_bytes, _) = reference_run(&sc);
        let contents = read_wal(&wal_bytes).expect("reference wal is intact");
        assert_eq!(contents.records.len(), sc.steps.len());
        assert!(!contents.torn_tail);

        // Record-boundary crash points: after the header, after each batch.
        let mut cuts: Vec<usize> = vec![20];
        cuts.extend_from_slice(&contents.ends);
        // Plus random mid-record bytes (torn tails).
        for _ in 0..4 {
            cuts.push(rng.gen_range(0..wal_bytes.len()));
        }
        for cut in cuts {
            let drop_newest = rng.gen_bool(0.3);
            crash_recover_finish(
                &sc,
                &wal_bytes,
                &contents.ends,
                &ckpt_trace,
                &fps,
                cut,
                drop_newest,
                &format!("case {case}"),
            );
            cases += 1;
        }
    }
    assert!(
        cases >= 256,
        "only {cases} scenario × crash-point cases ran"
    );
}

/// A full byte sweep across the final record: every truncation point is a
/// torn tail that recovers to the previous batch and finishes identically.
#[test]
fn torn_final_record_full_byte_sweep() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0002);
    let mut sc = plan_scenario(1, &mut rng);
    // Baseline checkpoint only, so the sweep exercises pure WAL replay.
    sc.dcfg.checkpoint_interval = u64::MAX;
    let (_, ckpt_trace, fps, wal_bytes, _) = reference_run(&sc);
    let contents = read_wal(&wal_bytes).expect("reference wal is intact");
    let last_start = contents.ends[contents.ends.len() - 2];
    for cut in last_start..wal_bytes.len() {
        let rec = recover(&wal_bytes[..cut], &ckpt_trace[0])
            .unwrap_or_else(|e| panic!("torn tail at byte {cut}: {e}"));
        assert_eq!(rec.torn_tail, cut > last_start, "at byte {cut}");
        assert_eq!(rec.batches_durable, sc.steps.len() as u64 - 1);
        crash_recover_finish(
            &sc,
            &wal_bytes,
            &contents.ends,
            &ckpt_trace,
            &fps,
            cut,
            false,
            "byte sweep",
        );
    }
}

/// Mid-log bit damage: recovery either reports a typed error or — when
/// the flip is indistinguishable from a torn tail (e.g. a length field
/// now pointing past the end) — recovers a clean, shorter prefix whose
/// state matches the reference at that batch count. Never a panic, never
/// a diverged state.
#[test]
fn mid_log_bit_flips_never_panic_and_never_diverge() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0003);
    let mut sc = plan_scenario(2, &mut rng);
    sc.dcfg.checkpoint_interval = u64::MAX; // Pure WAL replay.
    let (_, ckpt_trace, fps, wal_bytes, _) = reference_run(&sc);
    for trial in 0..192 {
        let mut damaged = wal_bytes.clone();
        let len = damaged.len();
        flip_bit(&mut damaged, rng.gen_range(0..len), rng.gen());
        if trial % 3 == 0 {
            // Compound damage.
            flip_bit(&mut damaged, rng.gen_range(0..len), rng.gen());
        }
        match recover(&damaged, &ckpt_trace[0]) {
            Err(
                RecoveryError::CorruptWal { .. }
                | RecoveryError::NoUsableCheckpoint { .. }
                | RecoveryError::Replay { .. },
            ) => {}
            Err(e) => panic!("trial {trial}: unexpected error class: {e}"),
            Ok(rec) => {
                let k = rec.batches_durable as usize;
                assert!(k <= sc.steps.len(), "trial {trial}");
                assert_eq!(
                    fingerprint(&rec.store, &rec.bubbles),
                    fps[k],
                    "trial {trial}: damaged log recovered to a diverged state"
                );
            }
        }
    }
}

/// Sink fault injection: transient fsync failures degrade the maintainer
/// (which keeps serving from memory and buffers records), healing flushes
/// the backlog, and a kill during the outage still recovers and finishes
/// bit-identically from whatever made it to disk.
#[test]
fn faulty_sinks_degrade_heal_and_recover() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0004);
    let sc = plan_scenario(3, &mut rng);
    let (_, _, fps, _, _) = reference_run(&sc);

    let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
    let mut stats = SearchStats::new();
    let store = sc.store.clone();
    let ib = IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
    let mut dm = DurableMaintainer::adopt(
        store,
        ib,
        sc.dcfg.clone(),
        FaultSink::new(),
        MemCheckpoints::new(),
    )
    .expect("sink starts healthy");

    // Two healthy batches, then the sink's fsync starts failing.
    let split_at = 2.min(sc.steps.len());
    for step in &sc.steps[..split_at] {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .unwrap();
    }
    assert_eq!(dm.sync(), Health::Healthy);
    let durable_bytes = dm.wal_sink().bytes().to_vec();
    let ckpts_at_outage = dm.checkpoints().clone();

    dm.wal_sink_mut().fail_syncs = usize::MAX;
    for step in &sc.steps[split_at..] {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .unwrap();
    }
    let buffered = sc.steps.len() - split_at;
    assert_eq!(
        dm.health(),
        Health::Degraded {
            buffered_batches: buffered,
            shed_batches: 0
        },
        "outage must surface as Degraded with the backlog size"
    );
    // In-memory state marched on regardless.
    assert_eq!(fingerprint(dm.store(), dm.bubbles()), *fps.last().unwrap());
    // A kill during the outage: only bytes up to the last successful
    // fsync are guaranteed on disk — recovery from that prefix lands on
    // the pre-outage state. (Bytes past it were appended but never
    // synced; if they do survive, they are complete records and recovery
    // from the full view is exercised by the other suites.)
    let rec = recover(
        &dm.wal_sink().bytes()[..durable_bytes.len()],
        &ckpts_at_outage,
    )
    .unwrap();
    assert_eq!(rec.batches_durable, split_at as u64);
    assert_eq!(fingerprint(&rec.store, &rec.bubbles), fps[split_at]);

    // Healing flushes the whole backlog; the full WAL then decodes.
    dm.wal_sink_mut().heal();
    assert_eq!(dm.sync(), Health::Healthy);
    let contents = read_wal(dm.wal_sink().bytes()).unwrap();
    assert_eq!(contents.records.len(), sc.steps.len());
    let (_, _, sink, ckpts) = dm.into_parts();
    let rec = recover(sink.bytes(), &ckpts).unwrap();
    assert_eq!(fingerprint(&rec.store, &rec.bubbles), *fps.last().unwrap());

    // Short-write kill: an append that persists only a prefix leaves a
    // torn tail that recovers to the last durable batch.
    let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
    let mut stats = SearchStats::new();
    let store = sc.store.clone();
    let ib = IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
    let mut dm = DurableMaintainer::adopt(
        store,
        ib,
        DurabilityConfig {
            checkpoint_interval: u64::MAX,
            max_retries: 0,
            ..DurabilityConfig::default()
        },
        FaultSink::new(),
        MemCheckpoints::new(),
    )
    .unwrap();
    for step in &sc.steps[..split_at] {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .unwrap();
    }
    dm.wal_sink_mut().write_cap = Some(7); // Killed seven bytes into the write.
    dm.apply_with(
        &sc.steps[split_at].batch,
        sc.steps[split_at].round_seed,
        sc.steps[split_at].maintain,
        &mut stats,
    )
    .unwrap();
    let rec = recover(dm.wal_sink().bytes(), dm.checkpoints()).unwrap();
    assert!(rec.torn_tail);
    assert_eq!(rec.batches_durable, split_at as u64);
    assert_eq!(fingerprint(&rec.store, &rec.bubbles), fps[split_at]);
}

/// Checkpoint damage: a corrupted newest checkpoint falls back to an
/// older one; when every checkpoint is damaged, recovery reports a typed
/// `NoUsableCheckpoint`; pure garbage as a WAL is typed, never a panic.
#[test]
fn damaged_checkpoints_and_garbage_wals_are_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0005);
    let mut sc = plan_scenario(4, &mut rng);
    sc.dcfg.checkpoint_interval = 2;
    let (_, _, fps, wal_bytes, final_ckpts) = reference_run(&sc);

    // Corrupt the newest checkpoint: recovery falls back and replays.
    let mut ckpts = final_ckpts.clone();
    let newest = *ckpts.seqs().unwrap().iter().max().unwrap();
    let blob = ckpts.blob_mut(newest).unwrap();
    let mid = blob.len() / 2;
    flip_bit(blob, mid, 2);
    let rec = recover(&wal_bytes, &ckpts).unwrap();
    assert_eq!(rec.batches_durable, sc.steps.len() as u64);
    assert!(rec.checkpoint_seq < newest);
    assert_eq!(fingerprint(&rec.store, &rec.bubbles), *fps.last().unwrap());

    // Corrupt every checkpoint: a typed failure naming the attempts.
    let mut ckpts = final_ckpts.clone();
    let seqs = ckpts.seqs().unwrap();
    for &seq in &seqs {
        let blob = ckpts.blob_mut(seq).unwrap();
        let mid = blob.len() / 2;
        flip_bit(blob, mid, 4);
    }
    match recover(&wal_bytes, &ckpts) {
        Err(RecoveryError::NoUsableCheckpoint { tried, .. }) => assert_eq!(tried, seqs.len()),
        other => panic!("expected NoUsableCheckpoint, got {other:?}"),
    }

    // Garbage byte streams as a WAL — including hostile length prefixes —
    // produce typed errors or clean empty logs, never panics or OOM.
    for trial in 0..64 {
        let mut garbage: Vec<u8> = (0..rng.gen_range(0..4096))
            .map(|_| rng.gen::<u32>() as u8)
            .collect();
        if trial % 4 == 0 && garbage.len() >= 20 {
            // Make the magic/version valid so decoding reaches the hostile
            // record framing.
            garbage[..4].copy_from_slice(b"IDBW");
            garbage[4..8].copy_from_slice(&1u32.to_le_bytes());
            garbage[8..12].copy_from_slice(&2u32.to_le_bytes());
        }
        match recover(&garbage, &final_ckpts) {
            Ok(rec) => assert_eq!(rec.replayed, 0, "garbage cannot contain replayable records"),
            Err(
                RecoveryError::CorruptWal { .. }
                | RecoveryError::NoUsableCheckpoint { .. }
                | RecoveryError::Replay { .. }
                | RecoveryError::Io(_),
            ) => {}
        }
    }
}

/// The structural (state-changing) slice of a journal, wall-clock masked,
/// so event sequences compare bit-exactly across runs.
fn structural(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .filter(|e| e.kind.is_structural())
        .map(Event::masked)
        .collect()
}

/// Journal/recovery equivalence: replaying the WAL tail after a crash
/// emits exactly the structural event subsequence the uninterrupted run
/// produced for those batches — same kinds, same bubble ids, same counts,
/// same order — bracketed by `recover_start` / `recover_checkpoint` /
/// `recover_done` markers.
#[test]
fn recovery_replays_the_identical_journal_event_sequence() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0006);
    for case in 0..3 {
        let sc = plan_scenario(case, &mut rng);

        // Uninterrupted reference with a journal attached after build (so
        // the trace starts exactly at the durable stream).
        let ring = Arc::new(RingRecorder::new());
        let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
        let mut stats = SearchStats::new();
        let store = sc.store.clone();
        let mut ib =
            IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
        ib.set_obs(Obs::with_recorder(ring.clone()));
        let mut dm = DurableMaintainer::adopt(
            store,
            ib,
            sc.dcfg.clone(),
            MemSink::new(),
            MemCheckpoints::new(),
        )
        .expect("MemSink never fails");
        // Structural-event count after each durable batch, and the
        // checkpoint population at each point, as in `reference_run`.
        let mut counts = vec![structural(&ring.events()).len()];
        let mut ckpt_trace = vec![dm.checkpoints().clone()];
        for step in &sc.steps {
            dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
                .expect("planned batches are valid");
            counts.push(structural(&ring.events()).len());
            ckpt_trace.push(dm.checkpoints().clone());
        }
        let reference = structural(&ring.events());
        assert!(
            !reference.is_empty(),
            "case {case}: the reference stream journaled nothing"
        );
        let (_, _, sink, _) = dm.into_parts();
        let wal_bytes = sink.into_bytes();
        let contents = read_wal(&wal_bytes).expect("reference wal is intact");

        // Crash at every record boundary (plus right after the header) and
        // recover with a fresh journal.
        let mut cuts = vec![20];
        cuts.extend_from_slice(&contents.ends);
        for cut in cuts {
            let durable = contents.ends.iter().filter(|&&e| e <= cut).count();
            let ring2 = Arc::new(RingRecorder::new());
            let rec = recover_with_obs(
                &wal_bytes[..cut],
                &ckpt_trace[durable],
                &Obs::with_recorder(ring2.clone()),
            )
            .unwrap_or_else(|e| panic!("case {case}: recovery at byte {cut} failed: {e}"));
            assert_eq!(rec.batches_durable, durable as u64);

            let replay_events = ring2.events();
            // The recovery markers bracket the replay and carry its shape.
            assert!(matches!(
                replay_events.first().map(|e| &e.kind),
                Some(EventKind::RecoverStart { wal_bytes }) if *wal_bytes == cut as u64
            ));
            let covered = replay_events
                .iter()
                .find_map(|e| match e.kind {
                    EventKind::RecoverCheckpoint { covered, .. } => Some(covered as usize),
                    _ => None,
                })
                .expect("recovery always adopts a checkpoint");
            assert!(covered <= durable, "case {case} at byte {cut}");
            assert!(matches!(
                replay_events.last().map(|e| &e.kind),
                Some(EventKind::RecoverDone {
                    replayed,
                    batches_durable,
                    torn_tail: false,
                }) if *replayed == (durable - covered) as u64
                    && *batches_durable == durable as u64
            ));

            // The replayed structural events are exactly the reference's
            // slice for batches `covered..durable` — ids included.
            assert_eq!(
                structural(&replay_events),
                reference[counts[covered]..counts[durable]],
                "case {case}: replay after crash at byte {cut} journaled a different stream"
            );
        }
    }
}

/// File-backed smoke loop for CI: a real `FileSink` WAL and `FsCheckpoints`
/// directory under `IDB_WAL_DIR`, killed at a random crash point chosen
/// from `IDB_CRASH_SEED` (so every CI run exercises a fresh point), then
/// recovered and finished bit-identically.
#[test]
fn kill_at_random_crash_point_smoke() {
    let seed = std::env::var("IDB_CRASH_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0xC0FF_EE00);
    let mut rng = StdRng::seed_from_u64(seed);
    let sc = plan_scenario(rng.gen_range(0..6), &mut rng);
    let (_, _ckpt_trace, fps, wal_bytes, _) = reference_run(&sc);
    let contents = read_wal(&wal_bytes).unwrap();

    // Replay the reference stream onto real files.
    let dir = scratch_dir().join(format!("idb-crash-smoke-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("stream.wal");
    {
        let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
        let mut stats = SearchStats::new();
        let store = sc.store.clone();
        let ib = IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
        let sink = FileSink::create(&wal_path).unwrap();
        let ckpts = FsCheckpoints::open(dir.join("checkpoints")).unwrap();
        let mut dm = DurableMaintainer::adopt(store, ib, sc.dcfg.clone(), sink, ckpts).unwrap();
        for step in &sc.steps {
            dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
                .unwrap();
        }
        assert_eq!(dm.sync(), Health::Healthy);
    }
    let disk = std::fs::read(&wal_path).unwrap();
    assert_eq!(
        disk, wal_bytes,
        "file-backed WAL must match the MemSink run"
    );

    // Kill at a random byte and recover from the file prefix.
    let cut = rng.gen_range(0..disk.len());
    let durable = contents.ends.iter().filter(|&&e| e <= cut).count();
    let ckpts = FsCheckpoints::open(dir.join("checkpoints")).unwrap();
    let rec = recover(&disk[..cut], &ckpts).unwrap();
    // Fs checkpoints were all written by the full run, so coverage may be
    // ahead of the cut WAL — recovery then stands on the checkpoint alone.
    assert!(rec.batches_durable as usize >= durable);
    let k = rec.batches_durable as usize;
    assert_eq!(fingerprint(&rec.store, &rec.bubbles), fps[k], "seed {seed}");

    // Finish the stream and compare the end state (in-memory sink; the
    // disk artifacts have served their purpose).
    let mut dm = DurableMaintainer::resume(rec, sc.dcfg.clone(), MemSink::new(), ckpts).unwrap();
    let mut stats = SearchStats::new();
    for step in &sc.steps[k..] {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .unwrap();
    }
    assert_eq!(
        fingerprint(dm.store(), dm.bubbles()),
        *fps.last().unwrap(),
        "seed {seed}: finished stream diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Segmented-WAL crash suite: the same bit-identity contract with rotation,
// compaction, and streaming-checkpoint boundaries in the kill sweep.
// ---------------------------------------------------------------------------

/// Runs the reference stream over a tiny-budget [`SegmentedSink`] with
/// streaming checkpoints, snapshotting the entire segment map, the
/// checkpoint store, and the state fingerprint at every batch boundary —
/// each snapshot is one crash point for the sweep.
#[allow(clippy::type_complexity)]
fn segmented_reference_run(
    sc: &Scenario,
    segment_bytes: u64,
) -> (
    Vec<Fingerprint>,
    Vec<BTreeMap<SegmentId, Vec<u8>>>,
    Vec<MemCheckpoints>,
    Vec<Event>,
    MemSegments,
) {
    let ring = Arc::new(RingRecorder::new());
    let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
    let mut stats = SearchStats::new();
    let store = sc.store.clone();
    let mut ib = IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
    ib.set_obs(Obs::with_recorder(ring.clone()));
    let medium = MemSegments::new();
    let sink = SegmentedSink::fresh(medium.clone(), segment_bytes).expect("fresh chain");
    let mut dm = DurableMaintainer::adopt(store, ib, sc.dcfg.clone(), sink, MemCheckpoints::new())
        .expect("MemSegments never fails");
    let mut fps = vec![fingerprint(dm.store(), dm.bubbles())];
    let mut snaps = vec![medium.snapshot()];
    let mut ckpts = vec![dm.checkpoints().clone()];
    for step in &sc.steps {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .expect("planned batches are valid");
        fps.push(fingerprint(dm.store(), dm.bubbles()));
        snaps.push(medium.snapshot());
        ckpts.push(dm.checkpoints().clone());
    }
    dm.flush_checkpoint();
    assert_eq!(dm.health(), Health::Healthy);
    (fps, snaps, ckpts, ring.events(), medium)
}

/// Recovers a restored segment-map crash point via [`recover_chain`],
/// checks bit-identity at the recovered batch count, then finishes the
/// stream and checks the end state.
fn chain_crash_recover_finish(
    sc: &Scenario,
    snap: &BTreeMap<SegmentId, Vec<u8>>,
    ckpts: &MemCheckpoints,
    fps: &[Fingerprint],
    label: &str,
) {
    let medium = MemSegments::new();
    medium.restore(snap.clone());
    let rec = recover_chain(&medium, ckpts).unwrap_or_else(|e| panic!("{label}: {e}"));
    let k = rec.batches_durable as usize;
    assert!(k <= sc.steps.len(), "{label}: durable count out of range");
    assert_eq!(
        fingerprint(&rec.store, &rec.bubbles),
        fps[k],
        "{label}: recovered state diverged at batch {k}"
    );
    let mut dm = DurableMaintainer::resume(rec, sc.dcfg.clone(), MemSink::new(), ckpts.clone())
        .expect("MemSink never fails");
    let mut stats = SearchStats::new();
    for step in &sc.steps[k..] {
        dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
            .expect("planned batches are valid");
    }
    assert_eq!(
        fingerprint(dm.store(), dm.bubbles()),
        *fps.last().unwrap(),
        "{label}: finished stream diverged"
    );
}

/// The segmented centerpiece: kills at every batch boundary (which, with a
/// tiny segment budget, a short checkpoint cadence, and a chunk size
/// smaller than one blob, land between rotations, compactions, and
/// checkpoint chunks), plus torn cuts inside the active segment and a
/// crash mid-rotation — every one recovers and finishes bit-identically.
#[test]
fn segmented_chain_kill_points_recover_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0007);
    for case in 0..4 {
        let mut sc = plan_scenario(case, &mut rng);
        sc.dcfg.checkpoint_interval = 2;
        sc.dcfg.checkpoint_chunk_bytes = 1024; // Streams span several batches.
        sc.dcfg.full_rebase_interval = 3; // Mix of full and delta blobs.
        let (fps, snaps, ckpt_trace, _, _) = segmented_reference_run(&sc, 512);
        for (k, snap) in snaps.iter().enumerate() {
            // Clean kill exactly at the batch boundary.
            chain_crash_recover_finish(
                &sc,
                snap,
                &ckpt_trace[k],
                &fps,
                &format!("case {case}, boundary {k}"),
            );
            let Some((&last_id, last_bytes)) = snap.iter().next_back() else {
                continue;
            };
            // Torn cut inside the newest segment (a kill mid-append):
            // everything before it must still recover to *some* earlier
            // boundary, bit-identically.
            if last_bytes.len() > 1 {
                let cut = rng.gen_range(1..last_bytes.len());
                let mut torn = snap.clone();
                torn.insert(last_id, last_bytes[..cut].to_vec());
                chain_crash_recover_finish(
                    &sc,
                    &torn,
                    &ckpt_trace[k],
                    &fps,
                    &format!("case {case}, boundary {k}, torn at {cut}"),
                );
            }
            // Crash mid-rotation: the next segment exists with only a
            // partial header. It contributes nothing and recovery matches
            // the clean boundary.
            let mut mid_roll = snap.clone();
            mid_roll.insert(
                SegmentId {
                    epoch: last_id.epoch,
                    seq: last_id.seq + 1,
                },
                last_bytes[..7.min(last_bytes.len())].to_vec(),
            );
            chain_crash_recover_finish(
                &sc,
                &mid_roll,
                &ckpt_trace[k],
                &fps,
                &format!("case {case}, boundary {k}, mid-rotation"),
            );
        }
    }
}

/// The segmented run's journal carries the new storage events — rotations,
/// compactions, checkpoint chunks — and the whole stream satisfies the
/// journal invariants, including the chunk-accounting ones. The live chain
/// stays bounded: compaction reclaims sealed segments as checkpoints
/// advance.
#[test]
fn segmented_run_journal_and_footprint_are_well_formed() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0008);
    let mut sc = plan_scenario(5, &mut rng);
    sc.dcfg.checkpoint_interval = 2;
    sc.dcfg.checkpoint_chunk_bytes = 1024;
    sc.dcfg.full_rebase_interval = 2;
    let (_, _, _, events, medium) = segmented_reference_run(&sc, 512);
    let summary = check_journal(&events).expect("journal invariants");
    assert!(summary.wal_rotations > 0, "tiny budget must rotate");
    assert!(
        summary.wal_compactions > 0,
        "full checkpoints must reclaim sealed segments"
    );
    assert!(
        summary.checkpoint_chunks > summary.checkpoints,
        "a 1 KiB chunk size must split blobs across several chunk events"
    );
    // Bounded footprint: rotations minus compacted segments is what's
    // left; compaction must have removed sealed prefixes, so the live
    // chain is strictly shorter than the rotation count implies.
    let live_segments = medium.snapshot().len();
    assert!(
        live_segments < summary.wal_rotations as usize,
        "{live_segments} live segments after {} rotations — compaction never ran",
        summary.wal_rotations
    );
}

/// Full-vs-delta equivalence: with a checkpoint every batch and periodic
/// full rebases, standing recovery on **any** checkpoint alone (an empty
/// WAL tail) reproduces the reference state at that batch bit-identically
/// — whether the blob is a full snapshot or a delta over an earlier base.
#[test]
fn delta_checkpoints_decode_bit_identically_to_fulls() {
    let mut rng = StdRng::seed_from_u64(0xC4A5_0009);
    let mut sc = plan_scenario(3, &mut rng);
    sc.dcfg.checkpoint_interval = 1;
    sc.dcfg.full_rebase_interval = 3;
    sc.dcfg.checkpoint_chunk_bytes = usize::MAX; // One chunk per blob.
    let (_, _, fps, wal_bytes, final_ckpts) = reference_run(&sc);
    let seqs = final_ckpts.seqs().unwrap();
    let deltas = seqs
        .iter()
        .filter(|&&s| {
            final_ckpts
                .load(s)
                .is_ok_and(|b| b.starts_with(DELTA_CHECKPOINT_MAGIC))
        })
        .count();
    assert!(deltas > 0, "the cadence must have produced delta blobs");
    assert!(deltas < seqs.len(), "and full blobs too");

    // Keep the full WAL (deltas replay the window between their base's
    // coverage and their own from it) but drop every checkpoint newer
    // than the one under test, so recovery *must* stand on that blob.
    for k in 1..=sc.steps.len() {
        let mut ckpts = final_ckpts.clone();
        for &s in &seqs {
            if s > k as u64 {
                ckpts.remove(s);
            }
        }
        let rec = recover(&wal_bytes, &ckpts).unwrap_or_else(|e| panic!("at checkpoint {k}: {e}"));
        assert_eq!(rec.batches_durable, sc.steps.len() as u64);
        assert_eq!(
            fingerprint(&rec.store, &rec.bubbles),
            *fps.last().unwrap(),
            "recovery standing on checkpoint {k} diverged"
        );
    }
}

/// Tiered crash consistency (DESIGN.md §17): the cold tier is an
/// ephemeral spill, never durability state. A tiered run writes a WAL
/// byte-identical to the untiered one, so killing it at any byte —
/// record boundaries, mid-record, and in particular right after a
/// commit whose eviction sweep never ran — recovers through the
/// ordinary untiered replay path bit-identically, and the resumed
/// (re-tiered) maintainer finishes the stream bit-identically.
#[test]
fn tiered_crash_points_recover_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0x71E2_C4A5);
    for case in 0..6 {
        let mut sc = plan_scenario(case, &mut rng);
        let hot = rng.gen_range(2..=16);

        // Untiered reference first: identical WAL bytes let the tiered
        // run reuse the untiered crash-point arithmetic unchanged.
        sc.dcfg.hot_points = None;
        let (lens_untiered, _, _, wal_untiered, _) = reference_run(&sc);
        sc.dcfg.hot_points = Some(hot);
        let (lens, ckpts, fps, wal, _) = reference_run(&sc);
        assert_eq!(
            wal, wal_untiered,
            "case {case} (hot={hot}): tiering changed the WAL bytes"
        );
        assert_eq!(lens, lens_untiered, "case {case}: commit offsets diverged");
        let ends = read_wal(&wal).expect("reference wal is intact").ends;

        // Every record boundary — the boundary immediately after a commit
        // is exactly the kill-mid-eviction moment: the batch is durable
        // but the clock sweep it triggered is lost with the process.
        for &cut in &ends {
            crash_recover_finish(
                &sc,
                &wal,
                &ends,
                &ckpts,
                &fps,
                cut,
                false,
                "tiered boundary",
            );
        }
        for _ in 0..4 {
            let cut = rng.gen_range(0..=wal.len());
            crash_recover_finish(
                &sc,
                &wal,
                &ends,
                &ckpts,
                &fps,
                cut,
                false,
                "tiered mid-record",
            );
        }
    }
}

/// A kill mid-cold-rewrite leaves real filesystem wreckage: a stale
/// spill file with arbitrary stale bytes and an abandoned `.tmp` from
/// the interrupted tmp+rename cycle. Recovery must ignore both —
/// the WAL + checkpoints alone rebuild the state — and resuming over a
/// fresh `FsCold` at the same (polluted) path must truncate the
/// wreckage and finish the stream bit-identically.
#[test]
fn kill_mid_cold_rewrite_leaves_recoverable_wreckage() {
    let mut rng = StdRng::seed_from_u64(0x71E2_F5C0);
    let dir = scratch_dir();
    for case in 0..4 {
        let mut sc = plan_scenario(case, &mut rng);
        let hot = rng.gen_range(2..=8);
        sc.dcfg.hot_points = Some(hot);
        let cold_path = dir.join(format!("idb_test_cold_rewrite_{case}_{hot}.bin"));

        // Tiered run over a real FsCold medium. The tier is mounted by
        // hand so the test controls the spill path; `start` sees the
        // store already tiered and leaves it alone.
        let mut build_rng = StdRng::seed_from_u64(sc.build_seed);
        let mut stats = SearchStats::new();
        let mut store = sc.store.clone();
        let ib = IncrementalBubbles::build(&store, sc.config.clone(), &mut build_rng, &mut stats);
        store
            .enable_tier(
                Box::new(idb_store::tier::FsCold::create(&cold_path).expect("create spill")),
                hot,
            )
            .expect("initial spill");
        let mut dm = DurableMaintainer::adopt(
            store,
            ib,
            sc.dcfg.clone(),
            MemSink::new(),
            MemCheckpoints::new(),
        )
        .expect("MemSink never fails");
        let mut fps = vec![fingerprint(dm.store(), dm.bubbles())];
        let mut wal_lens = vec![dm.wal_sink().bytes().len()];
        let mut ckpt_trace = vec![dm.checkpoints().clone()];
        for step in &sc.steps {
            dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
                .expect("planned batches are valid");
            fps.push(fingerprint(dm.store(), dm.bubbles()));
            wal_lens.push(dm.wal_sink().bytes().len());
            ckpt_trace.push(dm.checkpoints().clone());
        }
        let final_fp = fps.last().unwrap().clone();
        let (_, _, sink, _) = dm.into_parts();
        let wal = sink.into_bytes();

        // Crash after a mid-stream batch committed, with the cold
        // rewrite caught halfway: the spill file holds stale garbage and
        // the tmp of the interrupted cycle is still on disk.
        let durable = sc.steps.len() / 2;
        std::fs::write(&cold_path, b"stale spill contents from before the kill").unwrap();
        let tmp_path = {
            let mut os = cold_path.clone().into_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        std::fs::write(&tmp_path, b"half-written rewrite").unwrap();

        // Recovery never opens the spill: WAL + checkpoints suffice, and
        // the recovered store comes back fully resident (untiered). Only
        // checkpoints persisted before the kill exist at recovery time.
        let replay_ckpts = ckpt_trace[durable].clone();
        let cut = wal_lens[durable];
        let rec = recover(&wal[..cut], &replay_ckpts).expect("recovery ignores the spill file");
        assert_eq!(rec.batches_durable, durable as u64);
        assert!(
            rec.store.all_resident(),
            "recovery must rebuild an untiered, fully resident store"
        );
        assert_eq!(
            fingerprint(&rec.store, &rec.bubbles),
            fps[durable],
            "case {case}: recovered state diverged from the reference"
        );

        // Resume re-tiers over the same polluted path: FsCold::create
        // truncates the stale spill, the abandoned tmp is inert, and the
        // finished stream is bit-identical to the uninterrupted run.
        let mut recovered = rec;
        recovered
            .store
            .enable_tier(
                Box::new(idb_store::tier::FsCold::create(&cold_path).expect("re-create spill")),
                hot,
            )
            .expect("re-tier spill");
        let mut dm =
            DurableMaintainer::resume(recovered, sc.dcfg.clone(), MemSink::new(), replay_ckpts)
                .expect("MemSink never fails");
        let mut stats = SearchStats::new();
        for step in &sc.steps[durable..] {
            dm.apply_with(&step.batch, step.round_seed, step.maintain, &mut stats)
                .expect("planned batches are valid");
        }
        assert_eq!(
            fingerprint(dm.store(), dm.bubbles()),
            final_fp,
            "case {case}: finished stream diverged after the mid-rewrite kill"
        );
        let _ = std::fs::remove_file(&cold_path);
        let _ = std::fs::remove_file(&tmp_path);
    }
}
