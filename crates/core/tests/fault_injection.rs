//! Fault-injection harness for the fault-tolerant maintenance layer.
//!
//! Four fronts, mirroring how a deployment actually fails:
//!
//! 1. **Malformed batches** (NaN/∞ points, wrong dimensionality, stale and
//!    duplicated deletes) must come back as typed [`UpdateError`]s with the
//!    store and the summarization **byte-identical** to their pre-call
//!    state — verified by comparing full snapshots.
//! 2. **Damaged internal state** (every corruption the sabotage hooks can
//!    inflict) must be caught by [`IncrementalBubbles::audit`] and healed
//!    by [`IncrementalBubbles::repair`], after which the audit is green
//!    and normal operation continues.
//! 3. **Damaged snapshots** — every single-bit flip at every byte offset
//!    and every truncation of both snapshot formats must produce a typed
//!    [`SnapshotError`], never a panic; bit flips specifically must be
//!    caught as [`SnapshotError::Corrupt`] by the CRC framing.
//! 4. **A dying WAL sink in a fleet of maintainers** — one maintainer's
//!    sink failing mid-stream must degrade only that maintainer (its
//!    siblings stay [`Health::Healthy`]), buffer its batches, and heal
//!    back to a state **bit-identical** to a never-faulted twin fleet —
//!    the per-maintainer primitive the `idb-shard` supervisor builds its
//!    quarantine/heal cycle on.

use idb_core::{
    AuditIssue, DurabilityConfig, DurableMaintainer, Health, IncrementalBubbles, MaintainerConfig,
    MemCheckpoints, UpdateError,
};
use idb_geometry::SearchStats;
use idb_obs::{check_journal, Obs, RingRecorder};
use idb_store::segment::{MemSegments, SegmentedSink};
use idb_store::wal::read_wal;
use idb_store::{Batch, PointId, PointStore, SnapshotError, StorageBudget, StorageError};
use idb_synth::{
    faulty_batch, flip_bit, BatchFault, FaultSink, ScenarioEngine, ScenarioKind, ScenarioSpec,
    ALL_BATCH_FAULTS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A store + maintainer fixture over a small clustered database.
fn fixture(seed: u64) -> (PointStore, IncrementalBubbles, StdRng, SearchStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = PointStore::new(2);
    for i in 0..240 {
        let t = f64::from(i) * 0.063;
        let c = f64::from(i % 3) * 40.0;
        store.insert(&[c + t.sin(), c + t.cos()], Some((i % 3) as u32));
    }
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(10), &mut rng, &mut search);
    (store, ib, rng, search)
}

/// Serializes the complete observable state of store + summarization.
/// "Transactional" means a rejected batch leaves this bit pattern alone.
fn fingerprint(store: &PointStore, ib: &IncrementalBubbles) -> (Vec<u8>, Vec<u8>) {
    let mut s = Vec::new();
    store.write_snapshot(&mut s).expect("vec write");
    let mut b = Vec::new();
    ib.write_snapshot(&mut b).expect("vec write");
    (s, b)
}

#[test]
fn every_batch_fault_is_rejected_with_exact_rollback() {
    for (round, &fault) in ALL_BATCH_FAULTS.iter().enumerate() {
        let (mut store, mut ib, mut rng, mut search) = fixture(100 + round as u64);
        let before = fingerprint(&store, &ib);
        let batch = faulty_batch(&store, fault, &mut rng);
        let err = ib
            .try_apply_batch(&mut store, &batch, &mut search)
            .expect_err("faulty batch must be rejected");
        match fault {
            BatchFault::NanInsert | BatchFault::InfiniteInsert => {
                assert!(
                    matches!(err, UpdateError::NonFiniteCoordinate { .. }),
                    "{fault:?} -> {err}"
                );
            }
            BatchFault::ShortInsert | BatchFault::LongInsert => {
                assert!(
                    matches!(err, UpdateError::DimensionMismatch { .. }),
                    "{fault:?} -> {err}"
                );
            }
            BatchFault::StaleDelete => {
                assert!(
                    matches!(err, UpdateError::StaleDelete { .. }),
                    "{fault:?} -> {err}"
                );
            }
            BatchFault::DuplicateDelete => {
                assert!(
                    matches!(err, UpdateError::ConflictingOps { .. }),
                    "{fault:?} -> {err}"
                );
            }
        }
        assert_eq!(
            before,
            fingerprint(&store, &ib),
            "{fault:?}: rejected batch must leave state byte-identical"
        );
        ib.audit(&store).expect("audit green after rejection");
    }
}

#[test]
fn double_delete_across_valid_batch_is_conflicting() {
    let (mut store, mut ib, _, mut search) = fixture(7);
    let id = store.ids().next().unwrap();
    let batch = idb_store::Batch {
        deletes: vec![id, id],
        inserts: Vec::new(),
    };
    let err = ib
        .try_apply_batch(&mut store, &batch, &mut search)
        .expect_err("duplicate delete");
    assert_eq!(err, UpdateError::ConflictingOps { id });
}

#[test]
fn audit_detects_and_repair_heals_every_sabotage() {
    // Each entry: a name, the sabotage, and a predicate the audit's issue
    // list must satisfy.
    type Sabotage = fn(&mut IncrementalBubbles, &PointStore);
    type IssueCheck = fn(&[AuditIssue]) -> bool;
    let cases: Vec<(&str, Sabotage, IssueCheck)> = vec![
        (
            "inflated stats n",
            |ib, _| {
                let n = ib.bubble(0).stats().n();
                let ls = ib.bubble(0).stats().linear_sum().to_vec();
                let ss = ib.bubble(0).stats().square_sum();
                ib.corrupt_stats(0, n + 5, ls, ss);
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::MemberCountMismatch { bubble: 0, .. }))
            },
        ),
        (
            "drifted linear sum",
            |ib, _| {
                let n = ib.bubble(1).stats().n();
                let mut ls = ib.bubble(1).stats().linear_sum().to_vec();
                ls[0] += 1000.0;
                let ss = ib.bubble(1).stats().square_sum();
                ib.corrupt_stats(1, n, ls, ss);
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::DriftedLinearSum { bubble: 1, .. }))
            },
        ),
        (
            "drifted square sum",
            |ib, _| {
                let n = ib.bubble(1).stats().n();
                let ls = ib.bubble(1).stats().linear_sum().to_vec();
                let ss = ib.bubble(1).stats().square_sum() * 3.0 + 1.0;
                ib.corrupt_stats(1, n, ls, ss);
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::DriftedSquareSum { bubble: 1, .. }))
            },
        ),
        (
            "NaN stats",
            |ib, _| {
                let n = ib.bubble(2).stats().n();
                let mut ls = ib.bubble(2).stats().linear_sum().to_vec();
                ls[0] = f64::NAN;
                let ss = ib.bubble(2).stats().square_sum();
                ib.corrupt_stats(2, n, ls, ss);
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::NonFiniteStats { bubble: 2 }))
            },
        ),
        (
            "cleared assignment",
            |ib, _| {
                let id = ib.bubble(0).members()[0];
                ib.corrupt_assign(id.index(), u32::MAX);
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::AssignMismatch { bubble: 0, .. }))
            },
        ),
        (
            "cross-wired assignment",
            |ib, _| {
                let id = ib.bubble(0).members()[0];
                ib.corrupt_assign(id.index(), 3);
            },
            |issues| {
                issues.iter().any(|i| {
                    matches!(
                        i,
                        AuditIssue::AssignMismatch {
                            bubble: 0,
                            assigned: Some(3),
                            ..
                        }
                    )
                })
            },
        ),
        (
            "scrambled member position",
            |ib, _| {
                let id = ib.bubble(0).members()[0];
                ib.corrupt_member_pos(id.index(), 60_000);
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::MemberPosMismatch { bubble: 0, .. }))
            },
        ),
        (
            "NaN seed",
            |ib, _| ib.corrupt_seed(0, vec![f64::NAN, f64::NAN]),
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::NonFiniteSeed { bubble: 0 }))
            },
        ),
        (
            "desynced seed",
            |ib, _| ib.corrupt_seed(0, vec![123.0, -45.0]),
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::SeedOutOfSync { bubble: 0 }))
            },
        ),
        (
            "wrong point total",
            |ib, _| ib.corrupt_total(1),
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::TotalCountMismatch { tracked: 1, .. }))
            },
        ),
        (
            "dead member injected",
            |ib, store| {
                ib.corrupt_push_member(0, PointId(store.slots() as u32 + 3));
            },
            |issues| {
                issues
                    .iter()
                    .any(|i| matches!(i, AuditIssue::DeadMember { bubble: 0, .. }))
            },
        ),
        (
            "member dropped",
            |ib, _| {
                ib.corrupt_pop_member(0);
            },
            |issues| {
                issues.iter().any(|i| {
                    matches!(
                        i,
                        AuditIssue::MemberCountMismatch { bubble: 0, .. }
                            | AuditIssue::UnassignedLivePoint { .. }
                    )
                })
            },
        ),
    ];

    for (name, sabotage, check) in cases {
        let (store, mut ib, mut rng, mut search) = fixture(500);
        ib.audit(&store).expect("fixture starts green");
        sabotage(&mut ib, &store);
        let err = ib
            .audit(&store)
            .expect_err(&format!("{name}: audit must detect the corruption"));
        assert!(
            check(&err.issues),
            "{name}: unexpected issues {:?}",
            err.issues
        );

        let report = ib.repair(&store, &mut rng, &mut search);
        assert!(!report.is_noop(), "{name}: repair must act");
        assert_eq!(report.issues_found, err.issues.len(), "{name}");
        ib.audit(&store)
            .unwrap_or_else(|e| panic!("{name}: audit red after repair: {e}"));
        ib.validate(&store);
    }
}

#[test]
fn repair_is_a_noop_on_a_healthy_population() {
    let (store, mut ib, mut rng, mut search) = fixture(11);
    let report = ib.repair(&store, &mut rng, &mut search);
    assert!(report.is_noop());
    assert_eq!(report.quarantined, 0);
}

#[test]
fn repair_restores_a_heavily_corrupted_population() {
    let (mut store, mut ib, mut rng, mut search) = fixture(77);
    // Compound damage across several bubbles at once.
    ib.corrupt_seed(0, vec![f64::INFINITY, 0.0]);
    let n = ib.bubble(1).stats().n();
    ib.corrupt_stats(1, n + 9, vec![f64::NAN, 0.0], -1.0);
    let victim = ib.bubble(2).members()[0];
    ib.corrupt_assign(victim.index(), u32::MAX);
    ib.corrupt_pop_member(3);
    ib.corrupt_total(0);

    let err = ib.audit(&store).expect_err("compound corruption detected");
    assert!(err.issues.len() >= 4, "{:?}", err.issues);

    let report = ib.repair(&store, &mut rng, &mut search);
    assert!(report.quarantined >= 3, "{report:?}");
    assert!(report.reseeded >= 1, "{report:?}");
    assert!(report.reassigned_points > 0, "{report:?}");
    ib.audit(&store).expect("green after repair");
    ib.validate(&store);
    assert_eq!(ib.total_points(), store.len() as u64);

    // The repaired population keeps operating through churn + maintenance.
    let batch = idb_store::Batch {
        deletes: store.ids().take(20).collect(),
        inserts: (0..20)
            .map(|i| (vec![f64::from(i), 1.0], Some(1)))
            .collect(),
    };
    ib.try_apply_batch(&mut store, &batch, &mut search)
        .expect("valid batch applies");
    ib.maintain(&store, &mut rng, &mut search);
    ib.audit(&store).expect("still green after further churn");
}

/// Transactionality extends to the op journal: a rejected batch emits
/// **no events at all** — not a partial per-point trail, not a
/// `batch_applied` — because validation precedes every mutation and every
/// emission.
#[test]
fn rejected_batches_leave_no_journal_trace() {
    for (round, &fault) in ALL_BATCH_FAULTS.iter().enumerate() {
        let (mut store, mut ib, mut rng, mut search) = fixture(900 + round as u64);
        let ring = Arc::new(RingRecorder::new());
        ib.set_obs(Obs::with_recorder(ring.clone()));
        let batch = faulty_batch(&store, fault, &mut rng);
        ib.try_apply_batch(&mut store, &batch, &mut search)
            .expect_err("faulty batch must be rejected");
        assert!(
            ring.is_empty(),
            "{fault:?}: rejected batch journaled {:?}",
            ring.events()
        );
        // A valid batch through the same handle journals normally.
        let id = store.ids().next().unwrap();
        ib.try_apply_batch(
            &mut store,
            &idb_store::Batch {
                deletes: vec![id],
                inserts: vec![(vec![1.0, 2.0], None)],
            },
            &mut search,
        )
        .expect("valid batch applies");
        assert!(!ring.is_empty(), "{fault:?}: valid batch journaled nothing");
    }
}

/// The journal invariants of [`check_journal`] hold over a stream of
/// churn, maintenance, retirement, sabotage and repair: split events pair
/// with the merge/grow that freed their donor, and batch accounting
/// matches the per-point trail exactly.
#[test]
fn journal_invariants_hold_across_churn_maintenance_and_repair() {
    let mut rng = StdRng::seed_from_u64(0x0B5E_CC01);
    let spec = ScenarioSpec::named(ScenarioKind::Random, 2, 500, 0.08);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);
    let mut search = SearchStats::new();
    let mut ib =
        IncrementalBubbles::build(&store, MaintainerConfig::new(12), &mut rng, &mut search);
    let ring = Arc::new(RingRecorder::new());
    ib.set_obs(Obs::with_recorder(ring.clone()));

    for round in 0..6 {
        let batch = engine.plan(&mut rng);
        let ids = ib
            .try_apply_batch(&mut store, &batch, &mut search)
            .expect("planned batches are valid");
        engine.confirm(&ids);
        ib.maintain(&store, &mut rng, &mut search);
        if round % 2 == 0 && ib.num_bubbles() > 3 {
            ib.retire_bubble(round % ib.num_bubbles(), &store, &mut search);
        }
    }
    // Sabotage + repair mid-stream journals a repair event and keeps the
    // invariants intact.
    ib.corrupt_seed(0, vec![f64::NAN, f64::NAN]);
    ib.repair(&store, &mut rng, &mut search);
    ib.audit(&store).expect("green after repair");
    let batch = engine.plan(&mut rng);
    let ids = ib
        .try_apply_batch(&mut store, &batch, &mut search)
        .expect("planned batches are valid");
    engine.confirm(&ids);
    ib.maintain(&store, &mut rng, &mut search);

    let summary = check_journal(&ring.events()).expect("journal invariants hold");
    assert!(summary.batches >= 7, "{summary:?}");
    assert!(summary.retires >= 1, "{summary:?}");
    assert!(
        summary.inserts + summary.deletes > 0,
        "churn must journal per-point events: {summary:?}"
    );
}

#[test]
fn store_snapshot_survives_exhaustive_bit_flips_and_truncation() {
    let mut store = PointStore::new(2);
    for i in 0..6 {
        store.insert(&[f64::from(i), -f64::from(i)], Some(0));
    }
    let mut buf = Vec::new();
    store.write_snapshot(&mut buf).unwrap();

    for offset in 0..buf.len() {
        for bit in 0..8u32 {
            let mut damaged = buf.clone();
            flip_bit(&mut damaged, offset, bit);
            match PointStore::read_snapshot(&mut damaged.as_slice()) {
                Err(SnapshotError::Corrupt(_)) => {}
                Err(other) => {
                    panic!("offset {offset} bit {bit}: expected Corrupt, got {other}")
                }
                Ok(_) => panic!("offset {offset} bit {bit}: corruption accepted"),
            }
        }
    }
    for len in 0..buf.len() {
        let truncated = &buf[..len];
        assert!(
            PointStore::read_snapshot(&mut &truncated[..]).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
}

#[test]
fn bubble_snapshot_survives_exhaustive_bit_flips_and_truncation() {
    let mut store = PointStore::new(2);
    for i in 0..12 {
        let c = f64::from(i % 2) * 50.0;
        store.insert(&[c + f64::from(i), c], Some(i % 2));
    }
    let mut rng = StdRng::seed_from_u64(3);
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(3), &mut rng, &mut search);
    let mut buf = Vec::new();
    ib.write_snapshot(&mut buf).unwrap();

    for offset in 0..buf.len() {
        for bit in 0..8u32 {
            let mut damaged = buf.clone();
            flip_bit(&mut damaged, offset, bit);
            match IncrementalBubbles::read_snapshot(&mut damaged.as_slice(), &store) {
                Err(SnapshotError::Corrupt(_)) => {}
                Err(other) => {
                    panic!("offset {offset} bit {bit}: expected Corrupt, got {other}")
                }
                Ok(_) => panic!("offset {offset} bit {bit}: corruption accepted"),
            }
        }
    }
    for len in 0..buf.len() {
        let truncated = &buf[..len];
        assert!(
            IncrementalBubbles::read_snapshot(&mut &truncated[..], &store).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of valid and invalid batches: invalid ones are
    /// rejected with byte-exact rollback, valid ones apply, maintenance
    /// runs every round, and the audit stays green throughout. Nothing
    /// panics.
    #[test]
    fn fault_interleaving_keeps_the_audit_green(
        seed in 0u64..1_000,
        rounds in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = ScenarioSpec::named(ScenarioKind::Random, 2, 500, 0.05);
        let mut engine = ScenarioEngine::new(spec);
        let mut store = engine.populate(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(12),
            &mut rng,
            &mut search,
        );

        for _ in 0..rounds {
            if rng.gen_bool(0.5) {
                let fault = ALL_BATCH_FAULTS[rng.gen_range(0..ALL_BATCH_FAULTS.len())];
                let batch = faulty_batch(&store, fault, &mut rng);
                let before = fingerprint(&store, &ib);
                prop_assert!(
                    ib.try_apply_batch(&mut store, &batch, &mut search).is_err(),
                    "{:?} must be rejected", fault
                );
                prop_assert_eq!(before, fingerprint(&store, &ib));
            } else {
                let batch = engine.plan(&mut rng);
                let ids = ib.try_apply_batch(&mut store, &batch, &mut search)
                    .expect("planned batches are valid");
                engine.confirm(&ids);
            }
            ib.maintain(&store, &mut rng, &mut search);
            prop_assert!(ib.audit(&store).is_ok(), "audit stays green");
        }
    }
}

/// Front 4: one maintainer of a fleet loses its WAL sink mid-stream.
///
/// Drives three fully independent `DurableMaintainer`s (the shape the
/// `idb-shard` router manages) through identical churn twice — once with
/// maintainer 1's sink failing mid-stream and healing later, once
/// without — and demands the faulted fleet end bit-identical to the
/// clean one, with the fault never visible outside maintainer 1.
#[test]
fn sink_death_in_a_fleet_stays_contained_and_heals_bit_identically() {
    const FLEET: usize = 3;
    const SICK: usize = 1;

    let run = |fault: bool| -> Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> {
        let mut fleet: Vec<(
            DurableMaintainer<FaultSink, MemCheckpoints>,
            StdRng,
            SearchStats,
        )> = (0..FLEET)
            .map(|m| {
                let (store, ib, rng, search) = fixture(3000 + m as u64);
                let maintainer = DurableMaintainer::adopt(
                    store,
                    ib,
                    DurabilityConfig::default(),
                    FaultSink::new(),
                    MemCheckpoints::new(),
                )
                .expect("adopt");
                (maintainer, rng, search)
            })
            .collect();

        let mut brng = StdRng::seed_from_u64(0xF1EE7);
        let churn = |fleet: &mut Vec<(
            DurableMaintainer<FaultSink, MemCheckpoints>,
            StdRng,
            SearchStats,
        )>,
                     brng: &mut StdRng| {
            for (maintainer, rng, search) in fleet.iter_mut() {
                let delete = maintainer.store().ids().next().unwrap();
                let batch = Batch {
                    deletes: vec![delete],
                    inserts: (0..4)
                        .map(|_| {
                            let c = f64::from(brng.gen_range(0u32..3)) * 40.0;
                            (vec![c + brng.gen_range(-1.0..1.0), c], Some(0))
                        })
                        .collect(),
                };
                maintainer
                    .apply(&batch, rng, search)
                    .expect("valid batch applies");
            }
        };

        churn(&mut fleet, &mut brng);
        if fault {
            let sink = fleet[SICK].0.wal_sink_mut();
            sink.fail_appends = 1000;
            sink.fail_syncs = 1000;
        }
        churn(&mut fleet, &mut brng);
        if fault {
            // Only the sick maintainer degrades; its batches are buffered,
            // not lost, and every sibling stays healthy.
            for (m, (maintainer, _, _)) in fleet.iter_mut().enumerate() {
                match maintainer.sync() {
                    Health::Degraded {
                        buffered_batches, ..
                    } => {
                        assert_eq!(m, SICK, "only the sick maintainer may degrade");
                        assert!(buffered_batches > 0);
                    }
                    Health::Healthy => assert_ne!(m, SICK, "the sick maintainer must degrade"),
                }
            }
            fleet[SICK].0.wal_sink_mut().heal();
        }
        churn(&mut fleet, &mut brng);

        fleet
            .iter_mut()
            .map(|(maintainer, _, _)| {
                assert_eq!(maintainer.sync(), Health::Healthy);
                let mut s = Vec::new();
                maintainer
                    .store()
                    .write_snapshot(&mut s)
                    .expect("vec write");
                let mut b = Vec::new();
                maintainer
                    .bubbles()
                    .write_snapshot(&mut b)
                    .expect("vec write");
                (s, b, maintainer.wal_sink_mut().bytes().to_vec())
            })
            .collect()
    };

    assert_eq!(
        run(true),
        run(false),
        "the healed fleet must be bit-identical to the never-faulted fleet"
    );
}

/// A small valid churn batch against the maintainer's current store.
fn churn_batch<R: Rng + ?Sized>(store: &PointStore, brng: &mut R) -> Batch {
    let delete = store.ids().next().unwrap();
    Batch {
        deletes: vec![delete],
        inserts: (0..4)
            .map(|_| {
                let c = f64::from(brng.gen_range(0u32..3)) * 40.0;
                (vec![c + brng.gen_range(-1.0..1.0), c], Some(0))
            })
            .collect(),
    }
}

/// Front 5a: the degraded-mode buffer is hard-capped. While the sink is
/// down, batches buffer up to `max_buffered`; past it they are shed with a
/// typed [`StorageError::BufferFull`], leaving state byte-identical. The
/// shed count surfaces in [`Health::Degraded`], and healing drains the
/// backlog so the shed batch goes through on retry.
#[test]
fn degraded_buffer_cap_sheds_typed_and_heals() {
    let (store, ib, mut rng, mut search) = fixture(9001);
    let dcfg = DurabilityConfig {
        checkpoint_interval: u64::MAX,
        max_retries: 0,
        max_buffered: 3,
        ..DurabilityConfig::default()
    };
    let mut dm = DurableMaintainer::adopt(store, ib, dcfg, FaultSink::new(), MemCheckpoints::new())
        .expect("sink starts healthy");
    dm.wal_sink_mut().fail_syncs = usize::MAX;

    let mut brng = StdRng::seed_from_u64(0xB0FF);
    for _ in 0..3 {
        let batch = churn_batch(dm.store(), &mut brng);
        dm.apply(&batch, &mut rng, &mut search)
            .expect("batches under the cap buffer, not fail");
    }
    let before = fingerprint(dm.store(), dm.bubbles());
    let doomed = churn_batch(dm.store(), &mut brng);
    match dm.apply(&doomed, &mut rng, &mut search) {
        Err(UpdateError::Storage(StorageError::BufferFull { buffered, max })) => {
            assert_eq!((buffered, max), (3, 3));
        }
        other => panic!("expected a BufferFull shed, got {other:?}"),
    }
    assert_eq!(
        before,
        fingerprint(dm.store(), dm.bubbles()),
        "a shed batch must leave state byte-identical"
    );
    assert_eq!(
        dm.health(),
        Health::Degraded {
            buffered_batches: 3,
            shed_batches: 1
        }
    );
    assert_eq!(dm.shed_batches(), 1);

    // Healing drains the backlog; the shed batch goes through on retry and
    // the full WAL decodes.
    dm.wal_sink_mut().heal();
    assert_eq!(dm.sync(), Health::Healthy);
    dm.apply(&doomed, &mut rng, &mut search)
        .expect("retry after heal");
    assert_eq!(dm.sync(), Health::Healthy);
    let contents = read_wal(dm.wal_sink().bytes()).expect("wal intact after heal");
    assert_eq!(contents.records.len(), 4);
}

/// Front 5b: a sink reporting `ENOSPC` (partial write included). Batches
/// buffer while the disk is full; at the cap the shed error is the typed
/// [`StorageError::Enospc`]; freeing space heals, the short write is
/// repaired, and the WAL decodes clean.
#[test]
fn enospc_sink_sheds_typed_and_repairs_after_space_frees() {
    let (store, ib, mut rng, mut search) = fixture(9002);
    let dcfg = DurabilityConfig {
        checkpoint_interval: u64::MAX,
        max_retries: 0,
        max_buffered: 2,
        ..DurabilityConfig::default()
    };
    let mut dm = DurableMaintainer::adopt(store, ib, dcfg, FaultSink::new(), MemCheckpoints::new())
        .expect("sink starts healthy");
    // The device fills five bytes past what is already durable: the next
    // commit partially writes to the boundary, then fails StorageFull.
    let full_at = dm.wal_sink().bytes().len() as u64 + 5;
    dm.wal_sink_mut().enospc_after = Some(full_at);

    let mut brng = StdRng::seed_from_u64(0xE05C);
    for _ in 0..2 {
        let batch = churn_batch(dm.store(), &mut brng);
        dm.apply(&batch, &mut rng, &mut search)
            .expect("batches under the cap buffer, not fail");
    }
    assert!(matches!(
        dm.health(),
        Health::Degraded {
            buffered_batches: 2,
            ..
        }
    ));
    let before = fingerprint(dm.store(), dm.bubbles());
    let doomed = churn_batch(dm.store(), &mut brng);
    match dm.apply(&doomed, &mut rng, &mut search) {
        Err(UpdateError::Storage(StorageError::Enospc { .. })) => {}
        other => panic!("expected an Enospc shed, got {other:?}"),
    }
    assert_eq!(before, fingerprint(dm.store(), dm.bubbles()));

    // Space frees: the torn prefix is repaired, the backlog lands, the
    // shed batch goes through on retry, and the WAL decodes clean.
    dm.wal_sink_mut().heal();
    assert_eq!(dm.sync(), Health::Healthy);
    dm.apply(&doomed, &mut rng, &mut search)
        .expect("retry after space freed");
    assert_eq!(dm.sync(), Health::Healthy);
    let contents = read_wal(dm.wal_sink().bytes()).expect("wal intact after repair");
    assert_eq!(contents.records.len(), 3);
    assert!(!contents.torn_tail);
}

/// Front 5c: the disk budget on a segmented chain. With a budget a few
/// segments wide, the maintainer holds it by compacting behind its own
/// checkpoints — no batch is ever shed and the footprint stays bounded.
/// With an impossible budget, every batch sheds with the typed
/// [`StorageError::BudgetExceeded`] and state never advances.
#[test]
fn disk_budget_compacts_first_and_sheds_only_when_impossible() {
    // Part 1: a holdable budget is held without shedding.
    let (store, ib, mut rng, mut search) = fixture(9003);
    let dcfg = DurabilityConfig {
        checkpoint_interval: 2,
        full_rebase_interval: 2,
        disk_budget: StorageBudget::bytes(2048),
        ..DurabilityConfig::default()
    };
    let sink = SegmentedSink::fresh(MemSegments::new(), 256).expect("fresh chain");
    let mut dm = DurableMaintainer::adopt(store, ib, dcfg, sink, MemCheckpoints::new())
        .expect("medium starts healthy");
    let mut brng = StdRng::seed_from_u64(0xD15C);
    for round in 0..16 {
        let batch = churn_batch(dm.store(), &mut brng);
        dm.apply(&batch, &mut rng, &mut search)
            .unwrap_or_else(|e| panic!("round {round}: a holdable budget must not shed: {e}"));
        let live = dm.live_wal_bytes().expect("segmented sinks report");
        assert!(
            live <= 2048 + 512,
            "round {round}: live chain {live} bytes despite compaction"
        );
    }
    assert_eq!(dm.shed_batches(), 0);
    assert_eq!(dm.sync(), Health::Healthy);

    // Part 2: a budget no amount of compaction can meet sheds typed, with
    // exact rollback, and surfaces in health.
    let (store, ib, mut rng, mut search) = fixture(9004);
    let dcfg = DurabilityConfig {
        checkpoint_interval: u64::MAX,
        disk_budget: StorageBudget::bytes(8),
        ..DurabilityConfig::default()
    };
    let sink = SegmentedSink::fresh(MemSegments::new(), 256).expect("fresh chain");
    let mut dm = DurableMaintainer::adopt(store, ib, dcfg, sink, MemCheckpoints::new())
        .expect("medium starts healthy");
    let before = fingerprint(dm.store(), dm.bubbles());
    for round in 0..2 {
        let batch = churn_batch(dm.store(), &mut brng);
        match dm.apply(&batch, &mut rng, &mut search) {
            Err(UpdateError::Storage(StorageError::BudgetExceeded { live_bytes, budget })) => {
                assert_eq!(budget, 8);
                assert!(live_bytes > 8);
            }
            other => panic!("round {round}: expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(
            dm.shed_batches(),
            round + 1,
            "every breach must count one shed"
        );
    }
    assert_eq!(
        before,
        fingerprint(dm.store(), dm.bubbles()),
        "budget-shed batches must leave state byte-identical"
    );
    assert!(matches!(
        dm.health(),
        Health::Degraded {
            shed_batches: 2,
            ..
        }
    ));
}

/// The cold tier's degrade → heal ladder (DESIGN.md §17). A read outage
/// on the cold medium is caught by the pre-WAL prefetch probe: the batch
/// is shed with a typed [`StorageError::ColdIo`], no WAL record lands,
/// the state fingerprint is untouched, health degrades but the tier is
/// *not* poisoned — and after the volume heals, the identical batch
/// applies. A write outage strikes only the post-commit eviction sweep:
/// the batch itself succeeds, the maintainer degrades without shedding,
/// and heal + `sync()` re-runs the sweep and restores the resident-set
/// bound.
#[test]
fn cold_tier_outage_degrades_typed_and_heals() {
    use idb_store::MemSink;
    use idb_synth::FaultCold;

    let (mut store, ib, mut rng, mut search) = fixture(0xC01D);
    let hot = 8;
    let cold = FaultCold::new();
    store
        .enable_tier(Box::new(cold.clone()), hot)
        .expect("initial spill over a healthy medium");
    let dcfg = DurabilityConfig {
        checkpoint_interval: 2,
        hot_points: Some(hot),
        ..DurabilityConfig::default()
    };
    let mut dm = DurableMaintainer::adopt(store, ib, dcfg, MemSink::new(), MemCheckpoints::new())
        .expect("MemSink never fails");

    // Warm-up: a healthy tiered batch applies clean and stays bounded.
    let b0 = churn_batch(dm.store(), &mut rng);
    dm.apply_with(&b0, 1, true, &mut search)
        .expect("healthy tier applies");
    assert_eq!(dm.health(), Health::Healthy);
    assert!(dm.store().resident_points() <= hot);
    let before = fingerprint(dm.store(), dm.bubbles());
    let wal_before = dm.wal_sink().bytes().len();

    // Read outage ("the volume detached"): shed pre-WAL, typed, clean.
    cold.set_read_outage(true);
    let b1 = churn_batch(dm.store(), &mut rng);
    let err = dm
        .apply_with(&b1, 2, true, &mut search)
        .expect_err("a read outage must shed the batch");
    assert!(
        matches!(err, UpdateError::Storage(StorageError::ColdIo { .. })),
        "expected a typed cold-IO shed, got: {err}"
    );
    assert!(
        matches!(dm.health(), Health::Degraded { .. }),
        "a cold outage must surface as degraded health"
    );
    assert!(
        !dm.tier_poisoned(),
        "a pre-WAL shed never poisons: nothing was logged"
    );
    assert_eq!(
        dm.wal_sink().bytes().len(),
        wal_before,
        "the shed happens before the WAL: no record may land"
    );

    // Heal: the state is exactly what it was before the shed, and the
    // *identical* batch now applies.
    cold.heal();
    assert_eq!(
        fingerprint(dm.store(), dm.bubbles()),
        before,
        "the shed batch must leave the state untouched"
    );
    dm.apply_with(&b1, 2, true, &mut search)
        .expect("the healed tier applies the previously shed batch");
    assert_eq!(dm.health(), Health::Healthy);

    // Write outage ("the disk stopped accepting writes"): the eviction
    // sweep runs after the commit, so the batch itself must succeed.
    cold.set_write_outage(true);
    let b2 = churn_batch(dm.store(), &mut rng);
    dm.apply_with(&b2, 3, true, &mut search)
        .expect("a write outage must not fail the committed batch");
    assert!(
        matches!(dm.health(), Health::Degraded { .. }),
        "a failed eviction sweep must degrade"
    );
    assert!(
        !dm.tier_poisoned(),
        "a failed sweep is recoverable in place"
    );

    // Heal + sync: the sweep re-runs and the bound is restored.
    cold.heal();
    assert_eq!(dm.sync(), Health::Healthy);
    assert!(
        dm.store().resident_points() <= hot,
        "post-heal sweep must restore the resident-set bound"
    );
    let counters = dm.store().tier_counters().expect("tiered");
    assert!(counters.cold_reads > 0, "the run must exercise cold reads");
    assert!(counters.evictions > 0, "the run must exercise evictions");
}
