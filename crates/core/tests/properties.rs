//! Property-based tests for the incremental maintainer.
//!
//! The crucial guarantee of the incremental scheme is *exactness of the
//! bookkeeping*: after any sequence of insertions, deletions and
//! maintenance rounds, every bubble's sufficient statistics equal what a
//! from-scratch computation over its current members would produce, every
//! live point is assigned to exactly one bubble, and the seed distance
//! matrix matches the actual seeds. `IncrementalBubbles::validate` checks
//! all of that in O(N); these tests drive it with randomized workloads.

use idb_core::{IncrementalBubbles, MaintainerConfig, QualityKind, SeedSearch};
use idb_geometry::SearchStats;
use idb_store::{Batch, PointStore};
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario_kind(i: u8) -> ScenarioKind {
    ScenarioKind::all()[i as usize % 6]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants hold through an entire dynamic run of any named scenario,
    /// with maintenance after every batch.
    #[test]
    fn maintainer_invariants_hold_across_scenarios(
        seed in 0u64..1_000,
        kind_raw in 0u8..6,
        num_bubbles in 8usize..40,
        batches in 1usize..8,
    ) {
        let kind = scenario_kind(kind_raw);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = ScenarioSpec::named(kind, 2, 800, 0.05);
        let mut engine = ScenarioEngine::new(spec);
        let mut store = engine.populate(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(num_bubbles),
            &mut rng,
            &mut search,
        );
        ib.validate(&store);

        for _ in 0..batches {
            let batch = engine.plan(&mut rng);
            let new_ids = ib.apply_batch(&mut store, &batch, &mut search);
            engine.confirm(&new_ids);
            ib.validate(&store);
            ib.maintain(&store, &mut rng, &mut search);
            ib.validate(&store);
            prop_assert_eq!(ib.total_points(), store.len() as u64);
            prop_assert_eq!(ib.num_bubbles(), num_bubbles, "compression rate is fixed");
        }
    }

    /// Every assignment engine produces the same summarization for
    /// identical seeds, on any random database.
    #[test]
    fn engines_agree_on_any_database(
        seed in 0u64..1_000,
        n in 60usize..400,
        num_bubbles in 4usize..30,
    ) {
        prop_assume!(n >= num_bubbles);
        let mut data_rng = StdRng::seed_from_u64(seed);
        let spec = ScenarioSpec::named(ScenarioKind::Random, 3, n, 0.05);
        let mut engine = ScenarioEngine::new(spec);
        let store = engine.populate(&mut data_rng);

        let mut s1 = SearchStats::new();
        let mut rng1 = StdRng::seed_from_u64(seed ^ 0xABCD);
        let brute = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(num_bubbles).with_seed_search(SeedSearch::Brute),
            &mut rng1,
            &mut s1,
        );
        let na: Vec<u64> = brute.bubbles().iter().map(|b| b.stats().n()).collect();
        for search_engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
            let mut s2 = SearchStats::new();
            let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
            let fast = IncrementalBubbles::build(
                &store,
                MaintainerConfig::new(num_bubbles).with_seed_search(search_engine),
                &mut rng2,
                &mut s2,
            );
            // Identical seed sampling → per-bubble point counts must agree
            // (individual tie-breaks could differ only for exactly
            // equidistant seeds, which random data does not produce).
            let nb: Vec<u64> = fast.bubbles().iter().map(|b| b.stats().n()).collect();
            prop_assert_eq!(&na, &nb, "{:?}", search_engine);
            // Pruned engines never compute more distances than brute force
            // and still account every candidate.
            prop_assert!(s2.computed <= s1.computed);
            prop_assert_eq!(s2.total(), s1.computed);
        }
    }

    /// Applying a batch and then reversing it restores every bubble's point
    /// count (statistics are exactly decrementable).
    #[test]
    fn batch_then_reverse_restores_counts(
        seed in 0u64..1_000,
        n in 100usize..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = ScenarioSpec::named(ScenarioKind::Random, 2, n, 0.05);
        let mut engine = ScenarioEngine::new(spec);
        let mut store = engine.populate(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(8),
            &mut rng,
            &mut search,
        );
        let before: Vec<u64> = ib.bubbles().iter().map(|b| b.stats().n()).collect();

        // Insert a handful of points, then delete exactly those points.
        let inserts: Vec<(Vec<f64>, Option<u32>)> = (0..10)
            .map(|i| (vec![i as f64 * 7.0, 50.0], None))
            .collect();
        let ids = ib.apply_batch(
            &mut store,
            &Batch { deletes: Vec::new(), inserts },
            &mut search,
        );
        let revert = Batch { deletes: ids, inserts: Vec::new() };
        ib.apply_batch(&mut store, &revert, &mut search);
        ib.validate(&store);

        let after: Vec<u64> = ib.bubbles().iter().map(|b| b.stats().n()).collect();
        prop_assert_eq!(before, after);
    }

    /// The extent-based quality measure is a drop-in alternative: the full
    /// pipeline also preserves invariants under it (the Figure 7 ablation
    /// path).
    #[test]
    fn extent_measure_pipeline_holds_invariants(
        seed in 0u64..500,
        batches in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = ScenarioSpec::named(ScenarioKind::Complex, 2, 600, 0.05);
        let mut engine = ScenarioEngine::new(spec);
        let mut store = engine.populate(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(12).with_quality(QualityKind::Extent),
            &mut rng,
            &mut search,
        );
        for _ in 0..batches {
            let batch = engine.plan(&mut rng);
            let new_ids = ib.apply_batch(&mut store, &batch, &mut search);
            engine.confirm(&new_ids);
            ib.maintain(&store, &mut rng, &mut search);
            ib.validate(&store);
        }
    }
}

/// Deterministic end-to-end check that the store and maintainer stay in
/// lock-step over a long complex run (a heavier, non-random companion to
/// the proptest above).
#[test]
fn long_complex_run_stays_consistent() {
    let mut rng = StdRng::seed_from_u64(20040613);
    let spec = ScenarioSpec::named(ScenarioKind::Complex, 5, 3_000, 0.04);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);
    let mut search = SearchStats::new();
    // Pinned to the pruned engine: the pruning-fraction assertion below is
    // about its accounting, independent of the IDB_SEED_SEARCH environment.
    let mut ib = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(60).with_seed_search(SeedSearch::Pruned),
        &mut rng,
        &mut search,
    );
    let mut total_splits = 0usize;
    for _ in 0..25 {
        let batch = engine.plan(&mut rng);
        let new_ids = ib.apply_batch(&mut store, &batch, &mut search);
        engine.confirm(&new_ids);
        let report = ib.maintain(&store, &mut rng, &mut search);
        total_splits += report.splits;
        ib.validate(&store);
    }
    // The complex scenario (appearing + disappearing + moving clusters)
    // must trigger at least some structural repair over 25 batches.
    assert!(total_splits > 0, "complex dynamics caused splits");
    // And pruning must have been substantial overall.
    assert!(
        search.pruned_fraction() > 0.3,
        "triangle inequality pruned {:.1}% of candidates",
        search.pruned_fraction() * 100.0
    );
}

#[test]
fn empty_store_build_panics() {
    let store = PointStore::new(2);
    let mut rng = StdRng::seed_from_u64(0);
    let mut search = SearchStats::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        IncrementalBubbles::build(&store, MaintainerConfig::new(4), &mut rng, &mut search)
    }));
    assert!(result.is_err(), "building over an empty store must panic");
}
