//! Records the delta-maintained clustering layer's savings profile to
//! `BENCH_delta.json` without the criterion harness (so it runs in
//! offline environments where the criterion dependency is stubbed).
//!
//! For every paper scenario plus a churn-heavy stress variant, the same
//! maintained summary is clustered two ways each epoch:
//!
//! * **full** — the from-scratch pipeline (`optics_bubbles_with` →
//!   `expand` → `cluster_tree`), which recomputes every pair
//!   neighborhood: its touched count per epoch is the slot count;
//! * **delta** — a [`DeltaEngine`] consuming the maintainer's change
//!   log, refreshing only the dirty neighborhoods and re-extracting
//!   only the changed tree components.
//!
//! The differential suite (`crates/delta/tests/equivalence.rs`) proves
//! the two produce bit-identical artifacts; this records what the delta
//! path saves. The run fails if the delta path does not touch at least
//! 2× fewer neighborhoods than full recompute overall — that floor is
//! part of the layer's contract.
//!
//! Usage: `delta_report [output.json]` (default `BENCH_delta.json`).

use idb_clustering::{cluster_tree, optics_bubbles_with, ExtractParams};
use idb_core::{IncrementalBubbles, MaintainerConfig};
use idb_delta::{DeltaEngine, DeltaParams};
use idb_geometry::{Parallelism, SearchStats};
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const DIM: usize = 2;
const POINTS: usize = 4_000;
const EPOCHS: usize = 20;
const MIN_PTS: usize = 6;
const MIN_CLUSTER: usize = 8;
const TARGET_BUBBLES: usize = 200;
const SCENARIO_SEED: u64 = 20_260_808;
const MAINT_SEED: u64 = 99;

struct ScenarioResult {
    name: String,
    epochs: usize,
    delta_secs: f64,
    full_secs: f64,
    delta_touched: u64,
    full_touched: u64,
    steady_delta_touched: u64,
    steady_full_touched: u64,
}

/// Drives one scenario for [`EPOCHS`] epochs, timing the delta engine
/// against the from-scratch pipeline on identical maintained state.
fn run_scenario(name: &str, kind: ScenarioKind, churn: f64) -> ScenarioResult {
    let spec = ScenarioSpec::named(kind, DIM, POINTS, churn);
    let mut scenario = ScenarioEngine::new(spec);
    let mut srng = StdRng::seed_from_u64(SCENARIO_SEED);
    let mut store = scenario.populate(&mut srng);
    let mut mrng = StdRng::seed_from_u64(MAINT_SEED);
    let mut search = SearchStats::new();
    let mut bubbles = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(TARGET_BUBBLES),
        &mut mrng,
        &mut search,
    );
    let mut engine = DeltaEngine::new(DeltaParams {
        eps: f64::INFINITY,
        min_pts: MIN_PTS,
        extract: ExtractParams::with_min_size(MIN_CLUSTER),
        par: Parallelism::Serial,
    });

    let mut out = ScenarioResult {
        name: name.to_string(),
        epochs: EPOCHS,
        delta_secs: 0.0,
        full_secs: 0.0,
        delta_touched: 0,
        full_touched: 0,
        steady_delta_touched: 0,
        steady_full_touched: 0,
    };
    for epoch in 0..EPOCHS {
        if epoch > 0 {
            let batch = scenario.plan(&mut srng);
            let got = bubbles.apply_batch(&mut store, &batch, &mut search);
            scenario.confirm(&got);
            bubbles.maintain(&store, &mut mrng, &mut search);
        }

        let t0 = Instant::now();
        let report = engine.maintainer_epoch(&mut bubbles);
        out.delta_secs += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let scratch = optics_bubbles_with(
            bubbles.bubbles(),
            f64::INFINITY,
            MIN_PTS,
            Parallelism::Serial,
        );
        let plot = scratch.expand(|i| {
            bubbles.bubbles()[i]
                .members()
                .iter()
                .map(|id| u64::from(id.0))
                .collect::<Vec<u64>>()
        });
        let tree = cluster_tree(&plot, &ExtractParams::with_min_size(MIN_CLUSTER));
        out.full_secs += t1.elapsed().as_secs_f64();
        assert!(tree.range.1 >= tree.range.0, "scratch tree is well-formed");

        // A full recompute touches every tracked neighborhood.
        out.delta_touched += report.touched as u64;
        out.full_touched += report.total as u64;
        if epoch > 0 {
            out.steady_delta_touched += report.touched as u64;
            out.steady_full_touched += report.total as u64;
        }
    }
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".to_string());

    let mut runs: Vec<(String, ScenarioKind, f64)> = ScenarioKind::all()
        .into_iter()
        .map(|k| (format!("{k:?}").to_lowercase(), k, 0.015))
        .collect();
    runs.push(("churn_heavy".to_string(), ScenarioKind::Complex, 0.08));

    let mut results = Vec::new();
    for (name, kind, churn) in runs {
        let r = run_scenario(&name, kind, churn);
        eprintln!(
            "{:<14} delta {:.4}s touched {:>6}  |  full {:.4}s touched {:>6}  ({:.1}x fewer)",
            r.name,
            r.delta_secs,
            r.delta_touched,
            r.full_secs,
            r.full_touched,
            r.full_touched as f64 / r.delta_touched.max(1) as f64,
        );
        results.push(r);
    }

    let delta_touched: u64 = results.iter().map(|r| r.delta_touched).sum();
    let full_touched: u64 = results.iter().map(|r| r.full_touched).sum();
    let savings = full_touched as f64 / delta_touched.max(1) as f64;
    eprintln!("overall: {savings:.2}x fewer touched neighborhoods than full recompute");
    assert!(
        full_touched >= 2 * delta_touched,
        "the delta layer's contract is >=2x fewer touched neighborhoods, got {savings:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"delta\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dim\": {DIM}, \"points\": {POINTS}, \"epochs\": {EPOCHS}, \"target_bubbles\": {TARGET_BUBBLES}, \"min_pts\": {MIN_PTS}, \"min_cluster_size\": {MIN_CLUSTER}}},"
    );
    json.push_str("  \"scenarios\": [\n");
    let count = results.len();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == count { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"epochs\": {}, \"delta_secs\": {:.6}, \"full_secs\": {:.6}, \"delta_touched\": {}, \"full_touched\": {}, \"steady_delta_touched\": {}, \"steady_full_touched\": {}, \"touched_savings\": {:.3}}}{comma}",
            r.name,
            r.epochs,
            r.delta_secs,
            r.full_secs,
            r.delta_touched,
            r.full_touched,
            r.steady_delta_touched,
            r.steady_full_touched,
            r.full_touched as f64 / r.delta_touched.max(1) as f64,
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"overall_touched_savings\": {savings:.3},\n  \"note\": \"identical maintained state clustered both ways every epoch; outputs are bit-identical (crates/delta/tests/equivalence.rs), this records the work saved; touched counts include each run's first epoch, which resyncs and touches everything; delta_secs additionally covers delta derivation and subscription fanout, which the full pipeline does not provide\"\n}}"
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
