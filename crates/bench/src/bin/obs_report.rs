//! Records the observability-layer cost profile to `BENCH_obs.json`
//! without the criterion harness (so it runs in offline environments
//! where the criterion dependency is stubbed).
//!
//! One pre-planned complex-scenario update stream (batches + maintenance)
//! is timed under each observability configuration, and the static
//! construction scan (the `assign_report` build path) is timed as an A/A
//! pair under the shipped default:
//!
//! * **baseline** / **null** — interleaved measurements of the shipped
//!   default, [`Obs::disabled`] (a `NullRecorder` with metrics off). The
//!   instrumentation hooks are always compiled in, so the difference
//!   between these identical configurations is the honest bound on what
//!   the disabled path costs: the headline `null_overhead_pct` — the
//!   ratio of interleaved sample floors — must stay within noise (≤ 2%),
//!   and `build_null_overhead_pct` holds the same bound over the static
//!   construction scan.
//! * **metrics** — counters + latency histograms, no journal.
//! * **ring** — full journal into an in-memory ring, plus metrics.
//! * **jsonl** — full journal to a JSONL file, plus metrics.
//!
//! After the timing rows the tool prints the `metrics` run's registry as
//! the plain-text `metrics_dump` export (the same text an operator gets
//! from [`MetricsRegistry::dump`]).
//!
//! Usage: `obs_report [output.json]` (default `BENCH_obs.json`).

use idb_bench::complex_fixture;
use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism, SeedSearch};
use idb_geometry::SearchStats;
use idb_obs::{MetricsRegistry, Obs, RingRecorder};
use idb_store::wal::scratch_dir;
use idb_store::Batch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 7;
const BATCHES: usize = 48;

/// The trimmed floor of a sample set — the mean of the five smallest
/// samples. Interference only ever adds time, so the smallest samples
/// estimate the true cost; averaging a handful of them keeps one single
/// lucky sample (a momentary turbo window) from deciding the statistic
/// the way a raw minimum would.
fn floor_secs(times: &[f64]) -> f64 {
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let k = sorted.len().min(5);
    sorted[..k].iter().sum::<f64>() / k as f64
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Per-step floors, summed: element-wise minimum over runs of the
/// per-step times, then the sum over steps. A noise burst that lands on
/// different steps in different runs is filtered step by step, which a
/// whole-run minimum cannot do — one burst per run is enough to poison
/// every whole-run sample, while each step only needs a single quiet
/// window across all the runs.
fn summed_step_floors(runs: &[Vec<f64>]) -> f64 {
    let steps = runs[0].len();
    (0..steps)
        .map(|i| runs.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min))
        .sum()
}

struct Stream {
    store: idb_store::PointStore,
    config: MaintainerConfig,
    steps: Vec<(Batch, u64)>,
}

/// Pre-plans a fixed stream so every measured configuration runs the
/// identical workload.
fn plan_stream() -> Stream {
    let (mut scenario, store, mut rng) = complex_fixture(2, 40_000, 31);
    let mut sim = store.clone();
    let steps = (0..BATCHES)
        .map(|_| {
            let (batch, _) = scenario.step_plain(&mut sim, &mut rng);
            (batch, rng.gen::<u64>())
        })
        .collect();
    Stream {
        store,
        config: MaintainerConfig::new(400)
            .with_seed_search(SeedSearch::Pruned)
            .with_parallelism(Parallelism::Serial),
        steps,
    }
}

/// Times the static construction scan — the `assign_report` build path —
/// under the process-default observability (disabled unless `IDB_OBS` is
/// set, i.e. the shipped `NullRecorder`).
fn run_build(stream: &Stream) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let mut stats = SearchStats::new();
    let t0 = Instant::now();
    let ib = IncrementalBubbles::build(&stream.store, stream.config.clone(), &mut rng, &mut stats);
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(ib.total_points());
    secs
}

/// Runs the stream once with `obs` installed; returns per-step seconds
/// (one entry per batch + its maintenance round).
fn run_once(stream: &Stream, obs: Obs) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut stats = SearchStats::new();
    let mut store = stream.store.clone();
    let mut ib = IncrementalBubbles::build(&store, stream.config.clone(), &mut rng, &mut stats);
    ib.set_obs(obs);
    let mut step_secs = Vec::with_capacity(stream.steps.len());
    for (batch, seed) in &stream.steps {
        let t0 = Instant::now();
        ib.apply_batch(&mut store, batch, &mut stats);
        let mut round_rng = StdRng::seed_from_u64(*seed);
        ib.maintain(&store, &mut round_rng, &mut stats);
        step_secs.push(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(ib.total_points());
    step_secs
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let stream = plan_stream();
    let dir = scratch_dir().join(format!("idb-obs-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");

    // Shared sinks so the enabled runs pay realistic steady-state costs
    // (the jsonl file keeps growing across reps, as in production).
    let metrics_registry = Arc::new(MetricsRegistry::new());
    let ring = Arc::new(RingRecorder::new());
    let jsonl = Arc::new(idb_obs::JsonlRecorder::create(dir.join("bench.jsonl")));

    // Interleave the configurations within each rep so drift (thermal,
    // cache, allocator state) lands evenly on all of them.
    const CONFIGS: [&str; 7] = [
        "baseline",
        "null",
        "metrics",
        "ring",
        "jsonl",
        "build_baseline",
        "build_null",
    ];
    // Stream configs collect per-step times; build configs collect scalar
    // run times. The A/A configurations get three samples per rep each,
    // strictly interleaved with the order flipping every rep, so slow
    // drift (thermal, scheduler, page cache) lands evenly on both; the
    // reported stream cost is the sum of per-step floors (see
    // [`summed_step_floors`]), which stays stable on shared machines
    // where any whole run is likely to catch at least one interference
    // burst.
    let mut step_runs: Vec<Vec<Vec<f64>>> = vec![Vec::new(); 5];
    let mut build_samples: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut build_ratios: Vec<f64> = Vec::new();
    std::hint::black_box(run_once(&stream, Obs::disabled())); // Warmup.
    for rep in 0..REPS {
        for i in 0..6 {
            let idx = usize::from((i + rep) % 2 == 1);
            step_runs[idx].push(run_once(&stream, Obs::disabled()));
        }
        step_runs[2].push(run_once(
            &stream,
            Obs::new(Arc::new(idb_obs::NullRecorder), metrics_registry.clone()),
        ));
        step_runs[3].push(run_once(&stream, Obs::with_recorder(ring.clone())));
        step_runs[4].push(run_once(&stream, Obs::with_recorder(jsonl.clone())));
        // The build scan is a single short (~0.1s) region that cannot be
        // segmented, so it is measured as back-to-back pairs instead: the
        // two members of a pair run ~0.1s apart, too close for drift to
        // split them, and the median over all the pair ratios shrugs off
        // the pairs where an interference burst hit one member. Pair
        // order flips every other pair.
        for i in 0..4 {
            let (b, n) = if (i + rep) % 2 == 0 {
                let b = run_build(&stream);
                let n = run_build(&stream);
                (b, n)
            } else {
                let n = run_build(&stream);
                let b = run_build(&stream);
                (b, n)
            };
            build_samples[0].push(b);
            build_samples[1].push(n);
            build_ratios.push(n / b);
        }
        eprintln!("rep {}/{REPS} done", rep + 1);
    }
    let floors: Vec<f64> = step_runs
        .iter()
        .map(|runs| summed_step_floors(runs))
        .chain(build_samples.iter().map(|s| floor_secs(s)))
        .collect();
    let medians: Vec<f64> = step_runs
        .into_iter()
        .map(|runs| median(runs.into_iter().map(|r| r.iter().sum()).collect()))
        .chain(build_samples.into_iter().map(median))
        .collect();
    let base = floors[0];
    let null_overhead_pct = (floors[1] / base - 1.0) * 100.0;
    let build_null_overhead_pct = (median(build_ratios) - 1.0) * 100.0;

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"obs\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"batches\": {BATCHES},");
    json.push_str("  \"rows\": [\n");
    for (i, (config, (secs, med))) in CONFIGS.iter().zip(floors.iter().zip(&medians)).enumerate() {
        let comma = if i + 1 == CONFIGS.len() { "" } else { "," };
        // Each build row compares against the build baseline; every stream
        // row against the stream baseline. The build_null row reports the
        // headline paired-ratio statistic rather than a floor ratio.
        let pct = match *config {
            "build_null" => build_null_overhead_pct,
            "build_baseline" => 0.0,
            _ => (secs / base - 1.0) * 100.0,
        };
        eprintln!("{config}: {secs:.4}s floor / {med:.4}s median ({pct:+.2}% vs baseline)");
        let _ = writeln!(
            json,
            "    {{\"config\": \"{config}\", \"floor_secs\": {secs:.6}, \"median_secs\": {med:.6}, \"overhead_pct\": {pct:.3}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"null_overhead_pct\": {null_overhead_pct:.3},");
    let _ = writeln!(
        json,
        "  \"build_null_overhead_pct\": {build_null_overhead_pct:.3},"
    );
    let _ = writeln!(json, "  \"journal_events_per_run\": {},", ring.len() / REPS);
    json.push_str(
        "  \"note\": \"complex d2 n40000 s400 scenario, 48 pre-planned batches with maintenance \
         after each, serial mode, pruned engine; baseline and null are both Obs::disabled (the \
         shipped NullRecorder default), so null_overhead_pct bounds the disabled path's cost by \
         an A/A comparison of summed per-step floors over interleaved runs, and \
         build_null_overhead_pct does the same via the median ratio over back-to-back run \
         pairs of the static construction scan (the assign_report build path); enabled rows \
         add metrics, an in-memory journal, and a JSONL journal\"\n}\n",
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
    if null_overhead_pct.abs() > 2.0 {
        eprintln!("warning: null overhead {null_overhead_pct:.2}% exceeds the 2% budget");
    }
    if build_null_overhead_pct.abs() > 2.0 {
        eprintln!(
            "warning: build null overhead {build_null_overhead_pct:.2}% exceeds the 2% budget"
        );
    }

    // The metrics_dump text export, from the metrics-only run's registry.
    println!("--- metrics_dump ---");
    print!("{}", metrics_registry.dump());
    let _ = std::fs::remove_dir_all(&dir);
}
