//! Records the serial-vs-parallel wall-clock comparison to
//! `BENCH_parallel.json` without the criterion harness (so it runs in
//! offline environments where the criterion dependency is stubbed).
//!
//! The measured operations mirror `benches/parallel.rs`: the
//! construction-scan assignment at dim ∈ {2, 10}, N ∈ {10k, 100k}, and
//! the OPTICS-on-bubbles pair-matrix fill, each under `Serial`,
//! `Threads(2)` and `Threads(4)`. Results are medians of `REPS` runs;
//! distance-computation counts are recorded alongside to document that
//! the modes do identical work.
//!
//! The `work_partition` section replays the threaded batch driver's
//! *exact* chunk boundaries (`⌈k / threads⌉` contiguous queries per
//! worker) with one instrumented serial search per chunk. Because the
//! parallel driver merges per-worker counters in chunk order, these rows
//! are precisely what each worker counts in a threaded run — per-worker
//! points and computed/pruned/partial distances — and their spread is the
//! partition-evenness proxy ROADMAP item 3 asks for (a meaningful
//! speedup measurement needs a multi-core host; the partition evenness
//! does not).
//!
//! Usage: `parallel_report [output.json]` (default `BENCH_parallel.json`).

use idb_bench::random_fixture;
use idb_clustering::optics_bubbles_with;
use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism};
use idb_geometry::{NearestSeeds, SearchStats, SeedSearch};
use idb_store::PointStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const MODES: [(&str, Parallelism); 3] = [
    ("serial", Parallelism::Serial),
    ("threads2", Parallelism::Threads(2)),
    ("threads4", Parallelism::Threads(4)),
];
const REPS: usize = 5;

/// Median wall-clock seconds of `REPS` runs of `f`.
fn median_secs<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut times = Vec::with_capacity(REPS);
    let mut work = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        work = f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[REPS / 2], work)
}

struct Row {
    op: &'static str,
    label: String,
    mode: &'static str,
    median_secs: f64,
    distance_computations: u64,
}

/// One worker's share of a chunked batch search: how many queries the
/// deterministic partition handed it and what its searches counted.
struct WorkerRow {
    worker: usize,
    points: usize,
    stats: SearchStats,
}

struct PartitionRow {
    case: String,
    threads: usize,
    workers: Vec<WorkerRow>,
    /// `min / max` of per-worker candidate totals
    /// (`computed + pruned + partial`) — 1.0 is a perfectly even split.
    candidate_evenness: f64,
    /// `min / max` of per-worker *full* distance computations: even when
    /// the query split is exact, pruning makes this data-dependent.
    computed_evenness: f64,
}

/// Replays the batch driver's deterministic partition (contiguous
/// `⌈k / threads⌉`-query chunks, exactly `run_ranges`'s split) with one
/// instrumented serial search per chunk, yielding the per-worker counters
/// a threaded run accumulates but cannot attribute. The merged replay is
/// asserted bit-identical — results *and* counters — to an actual
/// threaded run of the same workload, so the rows are exact, not a model.
fn partition_replay(store: &PointStore, dim: usize, threads: usize) -> PartitionRow {
    const SEEDS: usize = 200;
    let mut seeds = NearestSeeds::new(dim);
    let mut flat = Vec::with_capacity(store.len() * dim);
    for (i, (_, p, _)) in store.iter().enumerate() {
        if i < SEEDS {
            seeds.push(p);
        }
        flat.extend_from_slice(p);
    }
    let k = flat.len() / dim;
    let chunk_points = k.div_ceil(threads);
    let mut workers = Vec::new();
    let mut merged_stats = SearchStats::new();
    let mut merged_out: Vec<(u32, f64)> = Vec::new();
    let mut start = 0;
    while start < k {
        let end = (start + chunk_points).min(k);
        let mut local = SearchStats::new();
        let part = seeds.nearest_batch(
            &flat[start * dim..end * dim],
            None,
            SeedSearch::Pruned,
            None,
            Parallelism::Serial,
            &mut local,
        );
        merged_out.extend(part);
        merged_stats += local;
        workers.push(WorkerRow {
            worker: workers.len(),
            points: end - start,
            stats: local,
        });
        start = end;
    }
    let mut threaded_stats = SearchStats::new();
    let threaded_out = seeds.nearest_batch(
        &flat,
        None,
        SeedSearch::Pruned,
        None,
        Parallelism::Threads(threads),
        &mut threaded_stats,
    );
    assert_eq!(
        threaded_out, merged_out,
        "chunk replay must reproduce the threaded assignment bit for bit"
    );
    assert_eq!(
        threaded_stats, merged_stats,
        "per-worker counters must sum to the threaded run's counters"
    );
    let evenness = |f: fn(&WorkerRow) -> u64| {
        let max = workers.iter().map(f).max().unwrap_or(0);
        let min = workers.iter().map(f).min().unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            min as f64 / max as f64
        }
    };
    PartitionRow {
        case: format!("d{dim}_n{k}_s{SEEDS}"),
        threads,
        candidate_evenness: evenness(|w| w.stats.total()),
        computed_evenness: evenness(|w| w.stats.computed),
        workers,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    for &(dim, size) in &[
        (2usize, 10_000usize),
        (2, 100_000),
        (10, 10_000),
        (10, 100_000),
    ] {
        let (store, _) = random_fixture(dim, size, 11);
        let label = format!("d{dim}_n{size}_s200");
        for (mode, par) in MODES {
            let (median, work) = median_secs(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut stats = SearchStats::new();
                let ib = IncrementalBubbles::build(
                    &store,
                    MaintainerConfig::new(200).with_parallelism(par),
                    &mut rng,
                    &mut stats,
                );
                black_box(ib.total_points());
                stats.computed
            });
            eprintln!("build {label} {mode}: {median:.4}s ({work} distances)");
            rows.push(Row {
                op: "build",
                label: label.clone(),
                mode,
                median_secs: median,
                distance_computations: work,
            });
        }
    }

    for &(dim, size) in &[(2usize, 10_000usize), (10, 10_000)] {
        let (store, _) = random_fixture(dim, size, 13);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(400), &mut rng, &mut stats);
        let bubbles = ib.bubbles().to_vec();
        let label = format!("d{dim}_n{size}_s400");
        for (mode, par) in MODES {
            let (median, work) = median_secs(|| {
                black_box(optics_bubbles_with(&bubbles, f64::INFINITY, 40, par).len()) as u64
            });
            eprintln!("optics {label} {mode}: {median:.4}s");
            rows.push(Row {
                op: "optics_bubbles",
                label: label.clone(),
                mode,
                median_secs: median,
                distance_computations: work,
            });
        }
    }

    let mut partitions: Vec<PartitionRow> = Vec::new();
    for &(dim, size) in &[(2usize, 100_000usize), (10, 100_000)] {
        let (store, _) = random_fixture(dim, size, 11);
        for threads in [2usize, 4] {
            let row = partition_replay(&store, dim, threads);
            eprintln!(
                "partition {} threads{}: candidate evenness {:.4}, computed evenness {:.4}",
                row.case, threads, row.candidate_evenness, row.computed_evenness
            );
            partitions.push(row);
        }
    }

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel\",");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"host_available_parallelism\": {host_threads},");
    json.push_str("  \"note\": \"medians; all modes compute bit-identical results and identical distance counts (see the differential suites); speedup requires host_available_parallelism > 1\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"case\": \"{}\", \"mode\": \"{}\", \"median_secs\": {:.6}, \"distance_computations\": {}}}{}",
            r.op, r.label, r.mode, r.median_secs, r.distance_computations, comma
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"work_partition_note\": \"exact replay of the batch driver's contiguous chunk split; per-worker counters asserted to sum to the threaded run's counters; evenness = min/max across workers\",\n");
    json.push_str("  \"work_partition\": [\n");
    for (i, p) in partitions.iter().enumerate() {
        let comma = if i + 1 == partitions.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"threads\": {}, \"candidate_evenness\": {:.6}, \"computed_evenness\": {:.6}, \"workers\": [",
            p.case, p.threads, p.candidate_evenness, p.computed_evenness
        );
        for (j, w) in p.workers.iter().enumerate() {
            let wcomma = if j + 1 == p.workers.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "      {{\"worker\": {}, \"points\": {}, \"computed\": {}, \"pruned\": {}, \"partial\": {}}}{}",
                w.worker, w.points, w.stats.computed, w.stats.pruned, w.stats.partial, wcomma
            );
        }
        let _ = writeln!(json, "    ]}}{comma}");
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
