//! Records the serial-vs-parallel wall-clock comparison to
//! `BENCH_parallel.json` without the criterion harness (so it runs in
//! offline environments where the criterion dependency is stubbed).
//!
//! The measured operations mirror `benches/parallel.rs`: the
//! construction-scan assignment at dim ∈ {2, 10}, N ∈ {10k, 100k}, and
//! the OPTICS-on-bubbles pair-matrix fill, each under `Serial`,
//! `Threads(2)` and `Threads(4)`. Results are medians of `REPS` runs;
//! distance-computation counts are recorded alongside to document that
//! the modes do identical work.
//!
//! Usage: `parallel_report [output.json]` (default `BENCH_parallel.json`).

use idb_bench::random_fixture;
use idb_clustering::optics_bubbles_with;
use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const MODES: [(&str, Parallelism); 3] = [
    ("serial", Parallelism::Serial),
    ("threads2", Parallelism::Threads(2)),
    ("threads4", Parallelism::Threads(4)),
];
const REPS: usize = 5;

/// Median wall-clock seconds of `REPS` runs of `f`.
fn median_secs<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut times = Vec::with_capacity(REPS);
    let mut work = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        work = f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[REPS / 2], work)
}

struct Row {
    op: &'static str,
    label: String,
    mode: &'static str,
    median_secs: f64,
    distance_computations: u64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    for &(dim, size) in &[
        (2usize, 10_000usize),
        (2, 100_000),
        (10, 10_000),
        (10, 100_000),
    ] {
        let (store, _) = random_fixture(dim, size, 11);
        let label = format!("d{dim}_n{size}_s200");
        for (mode, par) in MODES {
            let (median, work) = median_secs(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut stats = SearchStats::new();
                let ib = IncrementalBubbles::build(
                    &store,
                    MaintainerConfig::new(200).with_parallelism(par),
                    &mut rng,
                    &mut stats,
                );
                black_box(ib.total_points());
                stats.computed
            });
            eprintln!("build {label} {mode}: {median:.4}s ({work} distances)");
            rows.push(Row {
                op: "build",
                label: label.clone(),
                mode,
                median_secs: median,
                distance_computations: work,
            });
        }
    }

    for &(dim, size) in &[(2usize, 10_000usize), (10, 10_000)] {
        let (store, _) = random_fixture(dim, size, 13);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(400), &mut rng, &mut stats);
        let bubbles = ib.bubbles().to_vec();
        let label = format!("d{dim}_n{size}_s400");
        for (mode, par) in MODES {
            let (median, work) = median_secs(|| {
                black_box(optics_bubbles_with(&bubbles, f64::INFINITY, 40, par).len()) as u64
            });
            eprintln!("optics {label} {mode}: {median:.4}s");
            rows.push(Row {
                op: "optics_bubbles",
                label: label.clone(),
                mode,
                median_secs: median,
                distance_computations: work,
            });
        }
    }

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel\",");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"host_available_parallelism\": {host_threads},");
    json.push_str("  \"note\": \"medians; all modes compute bit-identical results and identical distance counts (see the differential suites); speedup requires host_available_parallelism > 1\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"case\": \"{}\", \"mode\": \"{}\", \"median_secs\": {:.6}, \"distance_computations\": {}}}{}",
            r.op, r.label, r.mode, r.median_secs, r.distance_computations, comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
