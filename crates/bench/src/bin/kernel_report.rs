//! Records the canonical-kernel comparison to `BENCH_kernel.json`
//! (DESIGN.md §15) without the criterion harness.
//!
//! Three measurement families:
//!
//! * **Kernel microbenchmarks** at d ∈ {2, 10, 64, 256, 768}: the
//!   historical sequential kernels (`metric::scalar`, still in-tree
//!   precisely so this stays an honest same-binary comparison) against
//!   the canonical 4-lane kernels, for both the full `sq_dist` and the
//!   early-exit nearest-neighbor scan pattern the assignment engines run.
//! * **End-to-end flows**: the d10/100k construction scan per engine and
//!   the d2/20k dynamic insert/delete flow, compared against the
//!   pre-kernel-pass medians recorded by `assign_report` on this same
//!   host immediately before the switch.
//! * **Incremental-matrix accounting**: a seed-churn microbenchmark and
//!   the dynamic flow's own counters, proving structural seed changes
//!   touch O(s) matrix/order entries instead of the former O(s²) rebuild
//!   (`naive` columns are what the pre-PR-8 strategy would have written).
//!
//! Usage: `kernel_report [output.json]` (default `BENCH_kernel.json`).

use idb_bench::complex_fixture;
use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism, SeedSearch};
use idb_geometry::metric::{scalar, sq_dist, sq_dist_bounded};
use idb_geometry::{NearestSeeds, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 5;
const KERNEL_DIMS: [usize; 5] = [2, 10, 64, 256, 768];
/// Lanes (f64 subtract-square-accumulate steps) per timed kernel pass.
const LANE_BUDGET: usize = 16_000_000;
/// Lanes resident per buffer (≈256 KiB). A seed set is a few hundred
/// seeds and lives in cache, so the microbench holds the working set
/// cache-resident too — otherwise high-d cases measure DRAM bandwidth,
/// which bounds every kernel equally and says nothing about the engines'
/// actual regime.
const WORKSET_LANES: usize = 32_768;

/// Median wall-clock seconds of `REPS` runs of `f` (its `f64` checksum is
/// black-boxed so the measured loops cannot be elided).
fn median_secs<F: FnMut() -> f64>(mut f: F) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[REPS / 2]
}

struct KernelRow {
    d: usize,
    evals: usize,
    scalar_secs: f64,
    unrolled_secs: f64,
    speedup: f64,
    scan_scalar_secs: f64,
    scan_unrolled_secs: f64,
    scan_speedup: f64,
}

/// Full-kernel pass: every pair (a_i, b_i), `iters` sweeps. Generic over
/// the kernel so each instantiation inlines it — exactly how the engines
/// compile it — instead of paying an opaque indirect call per evaluation.
fn full_pass<K: Fn(&[f64], &[f64]) -> f64>(
    a: &[f64],
    b: &[f64],
    d: usize,
    iters: usize,
    kernel: K,
) -> f64 {
    let n = a.len() / d;
    let mut acc = 0.0;
    for _ in 0..iters {
        for i in 0..n {
            acc += kernel(&a[i * d..(i + 1) * d], &b[i * d..(i + 1) * d]);
        }
    }
    acc
}

/// Early-exit nearest-neighbor scan: each sweep keeps a running best and
/// hands it to the bounded kernel as the abandon bound — exactly the
/// innermost loop of the assignment engines.
fn scan_pass<K: Fn(&[f64], &[f64], f64) -> Option<f64>>(
    a: &[f64],
    b: &[f64],
    d: usize,
    iters: usize,
    kernel: K,
) -> f64 {
    let n = a.len() / d;
    let mut acc = 0.0;
    for s in 0..iters {
        let q = &a[(s % n) * d..(s % n + 1) * d];
        let mut best = f64::INFINITY;
        for i in 0..n {
            if let Some(sq) = kernel(q, &b[i * d..(i + 1) * d], best) {
                if sq < best {
                    best = sq;
                }
            }
        }
        acc += best;
    }
    acc
}

fn kernel_rows(rng: &mut StdRng) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for d in KERNEL_DIMS {
        let n = (WORKSET_LANES / d).clamp(4, 4_096);
        let iters = (LANE_BUDGET / (n * d)).max(1);
        let evals = n * iters;
        let a: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let b: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-100.0..100.0)).collect();

        let scalar_secs = median_secs(|| full_pass(&a, &b, d, iters, scalar::sq_dist));
        let unrolled_secs = median_secs(|| full_pass(&a, &b, d, iters, sq_dist));
        let scan_scalar_secs = median_secs(|| scan_pass(&a, &b, d, iters, scalar::sq_dist_bounded));
        let scan_unrolled_secs = median_secs(|| scan_pass(&a, &b, d, iters, sq_dist_bounded));
        let speedup = scalar_secs / unrolled_secs;
        let scan_speedup = scan_scalar_secs / scan_unrolled_secs;
        eprintln!(
            "kernel d={d}: sq_dist {scalar_secs:.4}s -> {unrolled_secs:.4}s ({speedup:.2}x), \
             nn-scan {scan_scalar_secs:.4}s -> {scan_unrolled_secs:.4}s ({scan_speedup:.2}x)"
        );
        rows.push(KernelRow {
            d,
            evals,
            scalar_secs,
            unrolled_secs,
            speedup,
            scan_scalar_secs,
            scan_unrolled_secs,
            scan_speedup,
        });
    }
    rows
}

/// Pre-kernel-pass medians from `assign_report`, recorded on this host at
/// the commit immediately before the canonical-kernel switch (PR 8).
const PRE_BUILD_D10_N100K: [(&str, f64); 3] = [
    ("brute", 0.202_469),
    ("pruned", 0.196_494),
    ("kdtree", 0.212_089),
];
const PRE_DYNAMIC_WARM: [(&str, f64); 2] = [("pruned", 0.028_776), ("kdtree", 0.015_742)];

struct EndToEndRow {
    case: &'static str,
    engine: &'static str,
    median_secs: f64,
    pre_kernel_secs: f64,
}

/// The d2/20k dynamic flow of `assign_report` (five batches, maintenance
/// after each, warm-started); returns the maintainer for counter reads.
fn dynamic_flow(engine: SeedSearch) -> IncrementalBubbles {
    let (mut scenario, mut store, mut rng) = complex_fixture(2, 20_000, 17);
    let config = MaintainerConfig::new(200)
        .with_seed_search(engine)
        .with_warm_start(true)
        .with_parallelism(Parallelism::Serial);
    let mut build_stats = SearchStats::new();
    let mut ib = IncrementalBubbles::build(&store, config, &mut rng, &mut build_stats);
    let mut stats = SearchStats::new();
    for _ in 0..5 {
        let batch = scenario.plan(&mut rng);
        let ids = ib.apply_batch(&mut store, &batch, &mut stats);
        scenario.confirm(&ids);
        ib.maintain(&store, &mut rng, &mut stats);
    }
    ib
}

fn end_to_end_rows() -> (Vec<EndToEndRow>, IncrementalBubbles) {
    let mut rows = Vec::new();
    let (_, store, _) = complex_fixture(10, 100_000, 11);
    for (name, engine) in [
        ("brute", SeedSearch::Brute),
        ("pruned", SeedSearch::Pruned),
        ("kdtree", SeedSearch::KdTree),
    ] {
        let median = median_secs(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut stats = SearchStats::new();
            let config = MaintainerConfig::new(200)
                .with_seed_search(engine)
                .with_parallelism(Parallelism::Serial);
            let ib = IncrementalBubbles::build(&store, config, &mut rng, &mut stats);
            ib.total_points() as f64
        });
        let pre = PRE_BUILD_D10_N100K
            .iter()
            .find(|(n, _)| *n == name)
            .expect("known engine")
            .1;
        eprintln!("build complex_d10_n100000 {name}: {median:.4}s (pre-kernel {pre:.4}s)");
        rows.push(EndToEndRow {
            case: "build_complex_d10_n100000_s200",
            engine: name,
            median_secs: median,
            pre_kernel_secs: pre,
        });
    }
    let mut last = None;
    for (name, engine) in [
        ("pruned", SeedSearch::Pruned),
        ("kdtree", SeedSearch::KdTree),
    ] {
        let median = median_secs(|| {
            let ib = dynamic_flow(engine);
            let total = ib.total_points() as f64;
            last = Some(ib);
            total
        });
        let pre = PRE_DYNAMIC_WARM
            .iter()
            .find(|(n, _)| *n == name)
            .expect("known engine")
            .1;
        eprintln!("dynamic complex_d2_n20000 {name} warm: {median:.4}s (pre-kernel {pre:.4}s)");
        rows.push(EndToEndRow {
            case: "dynamic_complex_d2_n20000_s200_5batches_warm",
            engine: name,
            median_secs: median,
            pre_kernel_secs: pre,
        });
    }
    (rows, last.expect("dynamic flow ran"))
}

struct MatrixReport {
    ops: u64,
    seeds: usize,
    entries_written: u64,
    naive_entries: u64,
    entries_per_op: f64,
    naive_per_op: f64,
    order_entries: u64,
    order_naive_entries: u64,
    relayouts: u64,
    churn_secs: f64,
}

/// Seed-churn microbenchmark: s pushes, then replace and swap-remove+push
/// cycles — the structural mutations maintenance performs — with the
/// matrix/order ledgers proving each touches O(s), not O(s²), entries.
fn matrix_report(rng: &mut StdRng) -> MatrixReport {
    const S: usize = 512;
    const D: usize = 10;
    const CYCLES: usize = 256;
    let point = |rng: &mut StdRng| -> Vec<f64> {
        (0..D).map(|_| rng.gen_range(-100.0f64..100.0)).collect()
    };
    let t0 = Instant::now();
    let mut seeds = NearestSeeds::new(D);
    for _ in 0..S {
        seeds.push(&point(rng));
    }
    for i in 0..CYCLES {
        seeds.replace(i % seeds.len(), &point(rng));
        seeds.swap_remove(i % seeds.len());
        seeds.push(&point(rng));
    }
    let churn_secs = t0.elapsed().as_secs_f64();
    let m = seeds.matrix_stats();
    let r = seeds.repair_stats();
    let total = (m.entries_written + r.order_entries) as f64;
    let naive = (m.naive_entries + r.order_naive_entries) as f64;
    eprintln!(
        "matrix churn s={S}: {} ops in {churn_secs:.4}s, {:.0} entries/op vs {:.0} naive/op",
        r.ops,
        total / r.ops as f64,
        naive / r.ops as f64
    );
    MatrixReport {
        ops: r.ops,
        seeds: S,
        entries_written: m.entries_written,
        naive_entries: m.naive_entries,
        entries_per_op: total / r.ops as f64,
        naive_per_op: naive / r.ops as f64,
        order_entries: r.order_entries,
        order_naive_entries: r.order_naive_entries,
        relayouts: m.relayouts,
        churn_secs,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let mut rng = StdRng::seed_from_u64(88);

    let kernels = kernel_rows(&mut rng);
    let (end_to_end, dynamic_ib) = end_to_end_rows();
    let matrix = matrix_report(&mut rng);
    let (dyn_matrix, dyn_repair) = dynamic_ib.seed_repair_stats();

    let min_speedup_high_d = kernels
        .iter()
        .filter(|r| r.d >= 64)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel\",");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(
        json,
        "  \"min_kernel_speedup_d64_plus\": {min_speedup_high_d:.2},"
    );
    json.push_str("  \"note\": \"scalar columns run the historical sequential kernels kept in metric::scalar (same binary, same flags); pre_kernel_secs are assign_report medians recorded on this host at the commit before the canonical-kernel switch; naive columns are what the pre-PR-8 full-rebuild strategy would have written\",\n");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"d\": {}, \"evals\": {}, \"sq_dist_scalar_secs\": {:.6}, \"sq_dist_unrolled_secs\": {:.6}, \"sq_dist_speedup\": {:.2}, \"nn_scan_scalar_secs\": {:.6}, \"nn_scan_unrolled_secs\": {:.6}, \"nn_scan_speedup\": {:.2}}}{}",
            r.d,
            r.evals,
            r.scalar_secs,
            r.unrolled_secs,
            r.speedup,
            r.scan_scalar_secs,
            r.scan_unrolled_secs,
            r.scan_speedup,
            comma
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"end_to_end\": [\n");
    for (i, r) in end_to_end.iter().enumerate() {
        let comma = if i + 1 == end_to_end.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"engine\": \"{}\", \"median_secs\": {:.6}, \"pre_kernel_secs\": {:.6}, \"speedup\": {:.2}}}{}",
            r.case,
            r.engine,
            r.median_secs,
            r.pre_kernel_secs,
            r.pre_kernel_secs / r.median_secs,
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"matrix_churn\": {{\"seeds\": {}, \"ops\": {}, \"secs\": {:.6}, \"matrix_entries_written\": {}, \"matrix_naive_entries\": {}, \"order_entries\": {}, \"order_naive_entries\": {}, \"relayouts\": {}, \"entries_per_op\": {:.1}, \"naive_entries_per_op\": {:.1}}},",
        matrix.seeds,
        matrix.ops,
        matrix.churn_secs,
        matrix.entries_written,
        matrix.naive_entries,
        matrix.order_entries,
        matrix.order_naive_entries,
        matrix.relayouts,
        matrix.entries_per_op,
        matrix.naive_per_op
    );
    let _ = writeln!(
        json,
        "  \"dynamic_flow_repair\": {{\"ops\": {}, \"matrix_entries_written\": {}, \"matrix_naive_entries\": {}, \"order_entries\": {}, \"order_naive_entries\": {}, \"rows_saved_factor\": {:.1}}}",
        dyn_repair.ops,
        dyn_matrix.entries_written,
        dyn_matrix.naive_entries,
        dyn_repair.order_entries,
        dyn_repair.order_naive_entries,
        (dyn_matrix.naive_entries + dyn_repair.order_naive_entries) as f64
            / (dyn_matrix.entries_written + dyn_repair.order_entries).max(1) as f64
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path} (min d>=64 kernel speedup {min_speedup_high_d:.2}x)");
    // The regression floor ci.sh enforces: the canonical kernels must beat
    // the retained metric::scalar baseline by >= 1.5x at d >= 64. Measured
    // headroom is 1.8-2.8x, so a trip means a real codegen or kernel
    // regression, not timer noise.
    assert!(
        min_speedup_high_d >= 1.5,
        "kernel regression: min d>=64 speedup {min_speedup_high_d:.2}x is below the 1.5x floor"
    );
}
