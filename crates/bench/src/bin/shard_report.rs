//! Records the sharded service layer's scaling profile to
//! `BENCH_shard.json` without the criterion harness (so it runs in
//! offline environments where the criterion dependency is stubbed).
//!
//! Two measurements:
//!
//! * **Throughput vs. shard count** — an identical pre-seeded update
//!   stream (waves of submissions drained with as many threads as
//!   shards) against a fixed 8-partition router at 1, 2, 4 and 8
//!   shards. The outputs are bit-identical by construction (the
//!   differential suite proves it); this measures the wall-clock side
//!   of the knob.
//! * **Single-partition recovery vs. whole-system restart** — median
//!   wall-clock to bring one crashed partition back through
//!   checkpoint + WAL-tail recovery, next to restarting every
//!   partition, quantifying what fault isolation buys.
//!
//! Usage: `shard_report [output.json]` (default `BENCH_shard.json`).

use idb_core::{DurabilityConfig, MaintainerConfig, MemCheckpoints};
use idb_geometry::Parallelism;
use idb_obs::Obs;
use idb_shard::{ShardConfig, ShardRouter};
use idb_store::{Batch, MemSink, PointId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const DIM: usize = 4;
const PARTITIONS: u32 = 8;
const INITIAL: usize = 24_000;
const BATCHES: usize = 32;
const WAVE: usize = 8;
const INSERTS_PER_BATCH: usize = 800;
const DELETES_PER_BATCH: usize = 200;
const REPS: usize = 3;

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn random_point<R: Rng + ?Sized>(rng: &mut R) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(0.0..100.0)).collect()
}

fn make_router(shards: u32) -> (ShardRouter<MemSink, MemCheckpoints>, Vec<PointId>) {
    let mut rng = StdRng::seed_from_u64(17);
    let initial = Batch {
        deletes: Vec::new(),
        inserts: (0..INITIAL)
            .map(|_| (random_point(&mut rng), Some(0)))
            .collect(),
    };
    let (router, ids) = ShardRouter::create(
        DIM,
        &initial,
        &MaintainerConfig::new(160),
        ShardConfig::new(PARTITIONS).with_shards(shards),
        DurabilityConfig::default(),
        2024,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create router");
    (router, ids)
}

/// Runs the fixed stream at one shard count: waves of `WAVE` submissions
/// drained with as many threads as shards. Returns (total seconds, drain
/// seconds, points at end) — the drain is the part the shard count
/// parallelizes (routing and queueing stay serial at the client), and
/// the point count doubles as a cheap cross-run equality check.
fn run_stream(shards: u32) -> (f64, f64, u64) {
    let (mut router, mut live) = make_router(shards);
    let mut brng = StdRng::seed_from_u64(0x5AD);
    let mut cursor = 0usize;
    let drain_mode = Parallelism::Threads(shards as usize);

    let t0 = Instant::now();
    let mut drain_secs = 0.0;
    let mut done = 0usize;
    while done < BATCHES {
        let wave = WAVE.min(BATCHES - done);
        for _ in 0..wave {
            let deletes: Vec<PointId> = live[cursor..cursor + DELETES_PER_BATCH].to_vec();
            cursor += DELETES_PER_BATCH;
            let batch = Batch {
                deletes,
                inserts: (0..INSERTS_PER_BATCH)
                    .map(|_| (random_point(&mut brng), Some(1)))
                    .collect(),
            };
            router.submit(&batch).expect("queue sized for the wave");
        }
        let td = Instant::now();
        let results = router.drain_with(drain_mode);
        drain_secs += td.elapsed().as_secs_f64();
        for (_, result) in results {
            live.extend(result.expect("valid batches"));
        }
        done += wave;
    }
    (
        t0.elapsed().as_secs_f64(),
        drain_secs,
        router.total_points(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_shard.json".to_string());
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"shard\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    // Shard scaling can only show up with cores to run on; record the
    // host so a flat curve on a small box reads as what it is.
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dim\": {DIM}, \"partitions\": {PARTITIONS}, \"initial\": {INITIAL}, \"batches\": {BATCHES}, \"inserts_per_batch\": {INSERTS_PER_BATCH}, \"deletes_per_batch\": {DELETES_PER_BATCH}, \"wave\": {WAVE}}},"
    );

    // Throughput vs. shard count.
    json.push_str("  \"throughput\": [\n");
    let mut reference_points = None;
    let shard_counts = [1u32, 2, 4, 8];
    for (i, &shards) in shard_counts.iter().enumerate() {
        let mut times = Vec::new();
        let mut drains = Vec::new();
        let mut points = 0u64;
        for _ in 0..REPS {
            let (secs, drain, pts) = run_stream(shards);
            times.push(secs);
            drains.push(drain);
            points = pts;
        }
        match reference_points {
            None => reference_points = Some(points),
            Some(p) => assert_eq!(p, points, "shard count changed the outcome"),
        }
        let secs = median(times);
        let drain = median(drains);
        eprintln!("{shards} shards: {secs:.4}s total, {drain:.4}s in drain, {BATCHES} batches");
        let comma = if i + 1 == shard_counts.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"median_secs\": {secs:.6}, \"median_drain_secs\": {drain:.6}, \"batches_per_sec\": {:.1}}}{comma}",
            BATCHES as f64 / secs
        );
    }
    json.push_str("  ],\n");

    // Single-partition recovery vs. whole-system restart, on the state
    // the stream left behind.
    let (mut router, mut live) = make_router(8);
    let mut brng = StdRng::seed_from_u64(0x5AD);
    let mut cursor = 0usize;
    for _ in 0..BATCHES {
        let deletes: Vec<PointId> = live[cursor..cursor + DELETES_PER_BATCH].to_vec();
        cursor += DELETES_PER_BATCH;
        let batch = Batch {
            deletes,
            inserts: (0..INSERTS_PER_BATCH)
                .map(|_| (random_point(&mut brng), Some(1)))
                .collect(),
        };
        live.extend(router.apply(&batch).expect("valid batches"));
    }
    router.sync_all();

    let restart_one = |router: &mut ShardRouter<MemSink, MemCheckpoints>, p: u32| -> f64 {
        let (sink, checkpoints) = router.kill_partition(p).expect("online");
        let wal = sink.bytes().to_vec();
        let t0 = Instant::now();
        router
            .restart_partition(p, &wal, sink, checkpoints)
            .expect("restart");
        t0.elapsed().as_secs_f64()
    };

    let single: Vec<f64> = (0..REPS).map(|_| restart_one(&mut router, 3)).collect();
    let single = median(single);
    eprintln!("single-partition recovery: {single:.4}s");

    let whole: Vec<f64> = (0..REPS)
        .map(|_| (0..PARTITIONS).map(|p| restart_one(&mut router, p)).sum())
        .collect();
    let whole = median(whole);
    eprintln!("whole-system restart: {whole:.4}s");

    let _ = writeln!(
        json,
        "  \"recovery\": [\n    {{\"scope\": \"single_partition\", \"median_secs\": {single:.6}}},\n    {{\"scope\": \"whole_system\", \"median_secs\": {whole:.6}}}\n  ],"
    );
    json.push_str("  \"note\": \"uniform d4 stream over 8 partitions; shard counts share one bit-identical outcome (see crates/shard/tests/differential.rs); recovery restarts via checkpoint + WAL-tail replay while sibling partitions keep serving\"\n}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
