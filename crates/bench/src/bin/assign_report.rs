//! Records the assignment-engine comparison to `BENCH_assign.json`
//! without the criterion harness (so it runs in offline environments
//! where the criterion dependency is stubbed).
//!
//! Two workload families, each measured per [`SeedSearch`] engine:
//!
//! * **Static builds** at dim ∈ {2, 10}, N ∈ {10k, 100k}, s = 200 — the
//!   construction scan of Section 3, reported as median wall-clock plus
//!   the full computed/pruned/partial accounting (the paper's Figure 10
//!   currency).
//! * **A dynamic insert/delete flow** (complex scenario, five batches with
//!   maintenance after each) run twice per engine — warm-start hints on
//!   and off — to quantify what the hint threading buys on exactly the
//!   workloads it was built for. The summaries are bit-identical either
//!   way (see the differential suites); only the accounting moves.
//!
//! The top-level `warm_start_computed_reduction_pruned` field is the
//! headline number: the fraction of full distance computations the warm
//! started pruned engine avoids relative to the cold-started one on the
//! dynamic flow.
//!
//! Usage: `assign_report [output.json]` (default `BENCH_assign.json`).

use idb_bench::complex_fixture;
use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism, SeedSearch};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const ENGINES: [(&str, SeedSearch); 3] = [
    ("brute", SeedSearch::Brute),
    ("pruned", SeedSearch::Pruned),
    ("kdtree", SeedSearch::KdTree),
];
const REPS: usize = 5;

/// Median wall-clock seconds of `REPS` runs of `f`, which returns the
/// run's distance accounting (identical across runs by construction).
fn median_secs<F: FnMut() -> SearchStats>(mut f: F) -> (f64, SearchStats) {
    let mut times = Vec::with_capacity(REPS);
    let mut stats = SearchStats::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        stats = f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[REPS / 2], stats)
}

struct Row {
    op: &'static str,
    label: String,
    engine: &'static str,
    warm_start: bool,
    median_secs: f64,
    stats: SearchStats,
}

/// One dynamic flow: build (uncounted), then five batches with a
/// maintenance round after each; returns the per-batch accounting.
fn dynamic_flow(engine: SeedSearch, warm: bool) -> SearchStats {
    let (mut scenario, mut store, mut rng) = complex_fixture(2, 20_000, 17);
    let config = MaintainerConfig::new(200)
        .with_seed_search(engine)
        .with_warm_start(warm)
        .with_parallelism(Parallelism::Serial);
    let mut build_stats = SearchStats::new();
    let mut ib = IncrementalBubbles::build(&store, config, &mut rng, &mut build_stats);
    let mut stats = SearchStats::new();
    for _ in 0..5 {
        let batch = scenario.plan(&mut rng);
        let ids = ib.apply_batch(&mut store, &batch, &mut stats);
        scenario.confirm(&ids);
        ib.maintain(&store, &mut rng, &mut stats);
    }
    black_box(ib.total_points());
    stats
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_assign.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    // Static construction scans over the clustered scenario data the
    // paper's figures use (uniform random data is the pruning worst case
    // and is not what Figure 10 measures).
    for &(dim, size) in &[
        (2usize, 10_000usize),
        (2, 100_000),
        (10, 10_000),
        (10, 100_000),
    ] {
        let (_, store, _) = complex_fixture(dim, size, 11);
        let label = format!("complex_d{dim}_n{size}_s200");
        for (name, engine) in ENGINES {
            let (median, stats) = median_secs(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut stats = SearchStats::new();
                let config = MaintainerConfig::new(200)
                    .with_seed_search(engine)
                    .with_parallelism(Parallelism::Serial);
                let ib = IncrementalBubbles::build(&store, config, &mut rng, &mut stats);
                black_box(ib.total_points());
                stats
            });
            eprintln!(
                "build {label} {name}: {median:.4}s (computed {}, pruned {}, partial {})",
                stats.computed, stats.pruned, stats.partial
            );
            rows.push(Row {
                op: "build",
                label: label.clone(),
                engine: name,
                warm_start: false,
                median_secs: median,
                stats,
            });
        }
    }

    // Dynamic insert/delete flows, warm vs. cold.
    let mut pruned_dynamic = [0u64; 2]; // [cold, warm] computed
    for (name, engine) in ENGINES {
        for warm in [false, true] {
            let (median, stats) = median_secs(|| dynamic_flow(engine, warm));
            eprintln!(
                "dynamic complex_d2_n20000 {name} warm={warm}: {median:.4}s (computed {}, pruned {}, partial {})",
                stats.computed, stats.pruned, stats.partial
            );
            if name == "pruned" {
                pruned_dynamic[usize::from(warm)] = stats.computed;
            }
            rows.push(Row {
                op: "dynamic",
                label: "complex_d2_n20000_s200_5batches".to_string(),
                engine: name,
                warm_start: warm,
                median_secs: median,
                stats,
            });
        }
    }
    let reduction = if pruned_dynamic[0] > 0 {
        1.0 - pruned_dynamic[1] as f64 / pruned_dynamic[0] as f64
    } else {
        0.0
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"assign\",");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(
        json,
        "  \"warm_start_computed_reduction_pruned\": {reduction:.4},"
    );
    json.push_str("  \"note\": \"medians, serial mode; every engine returns bit-identical assignments (see the differential suites), so the engines and the warm-start toggle differ only in wall-clock and in how the per-candidate accounting splits into computed/pruned/partial\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"case\": \"{}\", \"engine\": \"{}\", \"warm_start\": {}, \"median_secs\": {:.6}, \"computed\": {}, \"pruned\": {}, \"partial\": {}, \"pruned_fraction\": {:.4}, \"avoided_fraction\": {:.4}}}{}",
            r.op,
            r.label,
            r.engine,
            r.warm_start,
            r.median_secs,
            r.stats.computed,
            r.stats.pruned,
            r.stats.partial,
            r.stats.pruned_fraction(),
            r.stats.avoided_fraction(),
            comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
