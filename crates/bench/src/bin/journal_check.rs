//! CI journal validator: parses every `*.jsonl` op journal in a
//! directory and checks the [`check_journal_sharded`] invariants over
//! each one (split pairing, batch accounting, non-empty commit groups),
//! demultiplexing interleaved multi-shard journals by their shard tag
//! so each maintainer domain is validated independently.
//!
//! Exit status is non-zero when the directory holds no journals, a file
//! is empty, a line fails to parse, or any invariant is violated — so a
//! CI run with `IDB_OBS=jsonl` pointed at a hermetic `IDB_OBS_DIR` gets
//! a hard gate over everything the test suites journaled.
//!
//! Usage: `journal_check [dir]` (default: `IDB_OBS_DIR`, falling back to
//! the `idb-obs` directory under the system temp dir).

use idb_obs::{check_journal_sharded, Event, JournalSummary};
use std::path::PathBuf;
use std::process::ExitCode;

fn default_dir() -> PathBuf {
    std::env::var_os("IDB_OBS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("idb-obs"))
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map_or_else(default_dir, PathBuf::from);
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("journal_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("journal_check: no *.jsonl journals under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut total = JournalSummary::default();
    let mut failures = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("journal_check: cannot read {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let mut events: Vec<Event> = Vec::new();
        let mut parse_failed = false;
        for (lineno, line) in text.lines().enumerate() {
            match Event::parse_jsonl(line) {
                Some(ev) => events.push(ev),
                None => {
                    eprintln!(
                        "journal_check: {}:{}: unparseable event: {line}",
                        path.display(),
                        lineno + 1
                    );
                    parse_failed = true;
                    break;
                }
            }
        }
        if parse_failed {
            failures += 1;
            continue;
        }
        if events.is_empty() {
            eprintln!("journal_check: {} is empty", path.display());
            failures += 1;
            continue;
        }
        match check_journal_sharded(&events) {
            Ok(groups) => {
                for (_, summary) in &groups {
                    total.events += summary.events;
                    total.structural += summary.structural;
                    total.inserts += summary.inserts;
                    total.deletes += summary.deletes;
                    total.batches += summary.batches;
                    total.merges += summary.merges;
                    total.splits += summary.splits;
                    total.retires += summary.retires;
                    total.grows += summary.grows;
                    total.wal_commits += summary.wal_commits;
                    total.checkpoints += summary.checkpoints;
                    total.delta_epochs += summary.delta_epochs;
                }
            }
            Err(e) => {
                eprintln!("journal_check: {}: {e}", path.display());
                failures += 1;
            }
        }
    }

    println!(
        "journal_check: {} journals, {} events ({} structural): \
         {} inserts, {} deletes, {} batches, {} merges, {} splits, \
         {} retires, {} grows, {} wal commits, {} checkpoints, \
         {} delta epochs",
        paths.len(),
        total.events,
        total.structural,
        total.inserts,
        total.deletes,
        total.batches,
        total.merges,
        total.splits,
        total.retires,
        total.grows,
        total.wal_commits,
        total.checkpoints,
        total.delta_epochs,
    );
    if failures > 0 {
        eprintln!(
            "journal_check: {failures} of {} journals failed",
            paths.len()
        );
        return ExitCode::FAILURE;
    }
    println!("journal_check: all green");
    ExitCode::SUCCESS
}
