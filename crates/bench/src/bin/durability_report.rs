//! Records the durability-layer cost profile to `BENCH_durability.json`
//! without the criterion harness (so it runs in offline environments
//! where the criterion dependency is stubbed).
//!
//! Three measurements over the complex dynamic scenario:
//!
//! * **WAL throughput** — batches/second through the full durable path
//!   (validate → append → group-commit → apply → maintain) against an
//!   in-memory sink and a real file under `IDB_WAL_DIR`, at group-commit
//!   sizes 1 and 8, next to the undurable baseline of the same stream —
//!   so the logging overhead is the difference, not a guess.
//! * **Recovery time vs. WAL tail length** — wall-clock to recover from
//!   the latest checkpoint as the number of batches to replay grows
//!   (checkpoint cadence 1, 16, 64 over a 64-batch stream).
//! * **Checkpoint write cost** — median seconds to serialize and store
//!   one full checkpoint, with its size in bytes.
//!
//! Usage: `durability_report [output.json]` (default
//! `BENCH_durability.json`).

use idb_bench::complex_fixture;
use idb_core::{
    recover, recover_chain, DurabilityConfig, DurableMaintainer, IncrementalBubbles,
    MaintainerConfig, MemCheckpoints, Parallelism, SeedSearch,
};
use idb_geometry::SearchStats;
use idb_obs::{EventKind, Obs, RingRecorder};
use idb_store::segment::{MemSegments, SegmentedSink};
use idb_store::wal::{read_wal, scratch_dir, FileSink, MemSink};
use idb_store::Batch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 5;
const BATCHES: usize = 64;

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Stream {
    store: idb_store::PointStore,
    config: MaintainerConfig,
    steps: Vec<(Batch, u64)>,
}

/// Pre-plans a fixed 64-batch stream so every measured variant runs the
/// identical workload.
fn plan_stream() -> Stream {
    let (mut scenario, store, mut rng) = complex_fixture(2, 20_000, 23);
    let mut sim = store.clone();
    let steps = (0..BATCHES)
        .map(|_| {
            let (batch, _) = scenario.step_plain(&mut sim, &mut rng);
            (batch, rng.gen::<u64>())
        })
        .collect();
    Stream {
        store,
        config: MaintainerConfig::new(200)
            .with_seed_search(SeedSearch::Pruned)
            .with_parallelism(Parallelism::Serial),
        steps,
    }
}

fn build(stream: &Stream) -> IncrementalBubbles {
    let mut rng = StdRng::seed_from_u64(7);
    let mut stats = SearchStats::new();
    IncrementalBubbles::build(&stream.store, stream.config.clone(), &mut rng, &mut stats)
}

/// The undurable baseline: the same batches and maintenance, no logging.
fn baseline_secs(stream: &Stream) -> f64 {
    median(
        (0..REPS)
            .map(|_| {
                let mut store = stream.store.clone();
                let mut ib = build(stream);
                let mut stats = SearchStats::new();
                let t0 = Instant::now();
                for (batch, seed) in &stream.steps {
                    ib.apply_batch(&mut store, batch, &mut stats);
                    let mut rng = StdRng::seed_from_u64(*seed);
                    ib.maintain(&store, &mut rng, &mut stats);
                }
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn durable_secs<S, F>(stream: &Stream, group_commit: usize, mut sink: F) -> f64
where
    S: idb_store::DurableSink,
    F: FnMut() -> S,
{
    median(
        (0..REPS)
            .map(|_| {
                let dcfg = DurabilityConfig {
                    group_commit,
                    checkpoint_interval: u64::MAX,
                    ..DurabilityConfig::default()
                };
                let mut dm = DurableMaintainer::adopt(
                    stream.store.clone(),
                    build(stream),
                    dcfg,
                    sink(),
                    MemCheckpoints::new(),
                )
                .expect("sink is healthy");
                let mut stats = SearchStats::new();
                let t0 = Instant::now();
                for (batch, seed) in &stream.steps {
                    dm.apply_with(batch, *seed, true, &mut stats)
                        .expect("planned batches are valid");
                }
                dm.sync();
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_durability.json".to_string());
    let stream = plan_stream();
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"durability\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"batches\": {BATCHES},");

    // WAL throughput.
    let base = baseline_secs(&stream);
    eprintln!("baseline (no durability): {base:.4}s for {BATCHES} batches");
    json.push_str("  \"wal_throughput\": [\n");
    let mut rows = vec![("none", "baseline", 0usize, base)];
    for group_commit in [1usize, 8] {
        let mem = durable_secs(&stream, group_commit, MemSink::new);
        eprintln!("mem sink, group_commit={group_commit}: {mem:.4}s");
        rows.push(("mem", "durable", group_commit, mem));
        let dir = scratch_dir().join(format!("idb-durability-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create bench scratch dir");
        let path = dir.join("bench.wal");
        let file = durable_secs(&stream, group_commit, || {
            FileSink::create(&path).expect("create bench wal")
        });
        eprintln!("file sink, group_commit={group_commit}: {file:.4}s");
        rows.push(("file", "durable", group_commit, file));
        let _ = std::fs::remove_dir_all(&dir);
    }
    for (i, (sink, mode, gc, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"sink\": \"{sink}\", \"mode\": \"{mode}\", \"group_commit\": {gc}, \"median_secs\": {secs:.6}, \"batches_per_sec\": {:.1}}}{comma}",
            BATCHES as f64 / secs
        );
    }
    json.push_str("  ],\n");

    // Recovery time vs. WAL tail length: one run with only the baseline
    // anchor checkpoint (covering batch 0), recovered from prefixes of
    // the WAL, so the replay tail is exactly the number of records in
    // the prefix. Plus the cost of writing one full checkpoint.
    json.push_str("  \"recovery\": [\n");
    let mut dm = DurableMaintainer::adopt(
        stream.store.clone(),
        build(&stream),
        DurabilityConfig {
            checkpoint_interval: u64::MAX,
            ..DurabilityConfig::default()
        },
        MemSink::new(),
        MemCheckpoints::new(),
    )
    .expect("mem sink is healthy");
    let mut stats = SearchStats::new();
    for (batch, seed) in &stream.steps {
        dm.apply_with(batch, *seed, true, &mut stats)
            .expect("planned batches are valid");
    }
    let (end_store, ib, sink, ckpts) = dm.into_parts();

    // Checkpoint serialization cost, measured on the final state.
    let times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            let blob = idb_core::encode_checkpoint(999, BATCHES as u64, &end_store, &ib)
                .expect("in-memory encode");
            std::hint::black_box(blob.len());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let blob = idb_core::encode_checkpoint(999, BATCHES as u64, &end_store, &ib)
        .expect("in-memory encode");
    let checkpoint_cost = (median(times), blob.len());

    let wal_bytes = sink.into_bytes();
    let ends = read_wal(&wal_bytes).expect("reference wal is intact").ends;
    let mut recovery_rows = Vec::new();
    for tail in [1usize, 16, 64] {
        let prefix = &wal_bytes[..ends[tail - 1]];
        let times: Vec<f64> = (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                let rec = recover(prefix, &ckpts).expect("clean recovery");
                std::hint::black_box(rec.batches_durable);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        let rec = recover(prefix, &ckpts).expect("clean recovery");
        assert_eq!(rec.replayed as usize, tail);
        let secs = median(times);
        eprintln!(
            "recover: replay tail of {tail} batches ({} WAL bytes): {secs:.4}s",
            prefix.len()
        );
        recovery_rows.push((tail, prefix.len(), secs));
    }
    for (i, (tail, wal_len, secs)) in recovery_rows.iter().enumerate() {
        let comma = if i + 1 == recovery_rows.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"replayed_batches\": {tail}, \"wal_bytes\": {wal_len}, \"median_secs\": {secs:.6}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"checkpoint\": {{\"median_encode_secs\": {:.6}, \"blob_bytes\": {}}},",
        checkpoint_cost.0, checkpoint_cost.1
    );

    // Bounded footprint under the segmented WAL: the same stream against
    // a segment chain with streaming checkpoints and compaction, sampling
    // the live footprint after every batch. Disk amplification is total
    // bytes ever appended over the peak live footprint — the compaction
    // win the flat WAL cannot have.
    const SEGMENT_BYTES: u64 = 4096;
    const CKPT_INTERVAL: u64 = 8;
    let ring = Arc::new(RingRecorder::new());
    let medium = MemSegments::new();
    let mut ib = build(&stream);
    ib.set_obs(Obs::with_recorder(ring.clone()));
    let mut dm = DurableMaintainer::adopt(
        stream.store.clone(),
        ib,
        DurabilityConfig {
            checkpoint_interval: CKPT_INTERVAL,
            full_rebase_interval: 3,
            checkpoint_chunk_bytes: 256 * 1024,
            ..DurabilityConfig::default()
        },
        SegmentedSink::fresh(medium.clone(), SEGMENT_BYTES).expect("fresh chain"),
        MemCheckpoints::new(),
    )
    .expect("mem segments are healthy");
    let mut stats = SearchStats::new();
    let mut max_live = 0u64;
    for (batch, seed) in &stream.steps {
        dm.apply_with(batch, *seed, true, &mut stats)
            .expect("planned batches are valid");
        max_live = max_live.max(dm.live_wal_bytes().expect("segmented sink reports live"));
    }
    dm.sync();
    let final_live = dm.live_wal_bytes().expect("segmented sink reports live");
    let (_, _, _, seg_ckpts) = dm.into_parts();
    let (mut rotations, mut compactions, mut reclaimed, mut chunks) = (0u64, 0u64, 0u64, 0u64);
    for e in ring.events() {
        match e.kind {
            EventKind::WalRotate { .. } => rotations += 1,
            EventKind::WalCompact { bytes, .. } => {
                compactions += 1;
                reclaimed += bytes;
            }
            EventKind::CheckpointChunk { .. } => chunks += 1,
            _ => {}
        }
    }
    let total_appended = reclaimed + final_live;
    let amplification = total_appended as f64 / max_live.max(1) as f64;
    let times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            let rec = recover_chain(&medium, &seg_ckpts).expect("clean chain recovery");
            std::hint::black_box(rec.batches_durable);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let rec = recover_chain(&medium, &seg_ckpts).expect("clean chain recovery");
    assert_eq!(rec.batches_durable as usize, BATCHES);
    let chain_secs = median(times);
    eprintln!(
        "segmented (segment={SEGMENT_BYTES}B, ckpt every {CKPT_INTERVAL}): \
         peak live {max_live}B, appended {total_appended}B (x{amplification:.2}), \
         {rotations} rotations, {compactions} compactions; \
         chain recovery (replay {}): {chain_secs:.4}s",
        rec.replayed
    );
    let _ = writeln!(
        json,
        "  \"segmented\": {{\"segment_bytes\": {SEGMENT_BYTES}, \"checkpoint_interval\": {CKPT_INTERVAL}, \
         \"max_live_wal_bytes\": {max_live}, \"final_live_wal_bytes\": {final_live}, \
         \"total_appended_bytes\": {total_appended}, \"disk_amplification\": {amplification:.3}, \
         \"rotations\": {rotations}, \"compactions\": {compactions}, \"reclaimed_bytes\": {reclaimed}, \
         \"checkpoint_chunks\": {chunks}, \
         \"chain_recovery\": {{\"median_secs\": {chain_secs:.6}, \"replayed_batches\": {}}}}},",
        rec.replayed
    );

    // The bound that matters for a forever-stream: a sustained
    // multi-thousand-batch run whose live footprint plateaus while total
    // appended bytes grow linearly. Smaller fixture, one rep — this is a
    // footprint measurement, not a timing one.
    const SUSTAINED_BATCHES: usize = 2500;
    let (mut scenario, small_store, mut srng) = complex_fixture(2, 2_000, 31);
    let mut sim = small_store.clone();
    let sustained_steps: Vec<(Batch, u64)> = (0..SUSTAINED_BATCHES)
        .map(|_| {
            let (batch, _) = scenario.step_plain(&mut sim, &mut srng);
            (batch, srng.gen::<u64>())
        })
        .collect();
    let ring = Arc::new(RingRecorder::new());
    let medium = MemSegments::new();
    let mut srng2 = StdRng::seed_from_u64(8);
    let mut sstats = SearchStats::new();
    let mut ib = IncrementalBubbles::build(
        &small_store,
        MaintainerConfig::new(50)
            .with_seed_search(SeedSearch::Pruned)
            .with_parallelism(Parallelism::Serial),
        &mut srng2,
        &mut sstats,
    );
    ib.set_obs(Obs::with_recorder(ring.clone()));
    let mut dm = DurableMaintainer::adopt(
        small_store,
        ib,
        DurabilityConfig {
            checkpoint_interval: 64,
            full_rebase_interval: 4,
            ..DurabilityConfig::default()
        },
        SegmentedSink::fresh(medium.clone(), 8192).expect("fresh chain"),
        MemCheckpoints::new(),
    )
    .expect("mem segments are healthy");
    let (mut s_max_live, mut half_max_live) = (0u64, 0u64);
    for (i, (batch, seed)) in sustained_steps.iter().enumerate() {
        dm.apply_with(batch, *seed, true, &mut sstats)
            .expect("planned batches are valid");
        let live = dm.live_wal_bytes().expect("segmented sink reports live");
        s_max_live = s_max_live.max(live);
        if i < SUSTAINED_BATCHES / 2 {
            half_max_live = half_max_live.max(live);
        }
    }
    dm.sync();
    let s_final_live = dm.live_wal_bytes().expect("segmented sink reports live");
    let (mut s_rotations, mut s_compactions, mut s_reclaimed) = (0u64, 0u64, 0u64);
    for e in ring.events() {
        match e.kind {
            EventKind::WalRotate { .. } => s_rotations += 1,
            EventKind::WalCompact { bytes, .. } => {
                s_compactions += 1;
                s_reclaimed += bytes;
            }
            _ => {}
        }
    }
    let s_appended = s_reclaimed + s_final_live;
    // Bounded means the peak does not track stream length: the second
    // half of the stream must not push the footprint meaningfully past
    // the first half's peak.
    assert!(
        s_max_live < 2 * half_max_live,
        "live footprint kept growing: peak {s_max_live} vs first-half peak {half_max_live}"
    );
    eprintln!(
        "sustained ({SUSTAINED_BATCHES} batches, segment=8192B, ckpt every 64): \
         appended {s_appended}B, peak live {s_max_live}B (first half {half_max_live}B), \
         {s_rotations} rotations, {s_compactions} compactions"
    );
    let _ = writeln!(
        json,
        "  \"sustained\": {{\"batches\": {SUSTAINED_BATCHES}, \"segment_bytes\": 8192, \
         \"checkpoint_interval\": 64, \"total_appended_bytes\": {s_appended}, \
         \"max_live_wal_bytes\": {s_max_live}, \"first_half_max_live_wal_bytes\": {half_max_live}, \
         \"final_live_wal_bytes\": {s_final_live}, \"rotations\": {s_rotations}, \
         \"compactions\": {s_compactions}, \"reclaimed_bytes\": {s_reclaimed}}},"
    );
    // Tiered point store: the O(bubbles + hot points) resident set. The
    // same pre-planned stream runs once fully resident and once with a
    // 64-point hot budget over the default cold medium; the tiered run's
    // resident payload curve must stay flat while the cumulative stream
    // grows 20× past the hot cap, and the two final states must be
    // byte-identical (snapshot encoding included) — tiering is physics,
    // never semantics.
    const HOT: usize = 64;
    const TIER_BATCHES: usize = 160;
    let (mut scenario, tier_store, mut trng) = complex_fixture(2, 2_000, 47);
    let tier_dim = tier_store.dim();
    let mut sim = tier_store.clone();
    let tier_steps: Vec<(Batch, u64)> = (0..TIER_BATCHES)
        .map(|_| {
            let (batch, _) = scenario.step_plain(&mut sim, &mut trng);
            (batch, trng.gen::<u64>())
        })
        .collect();
    let max_inserts = tier_steps
        .iter()
        .map(|(b, _)| b.inserts.len())
        .max()
        .unwrap_or(0);
    let mut stream_points = 0usize;
    let run_tiered = |hot: Option<usize>, stream_points: &mut usize| {
        let mut rng = StdRng::seed_from_u64(9);
        let mut stats = SearchStats::new();
        let ib = IncrementalBubbles::build(
            &tier_store,
            MaintainerConfig::new(50)
                .with_seed_search(SeedSearch::Pruned)
                .with_parallelism(Parallelism::Serial),
            &mut rng,
            &mut stats,
        );
        let mut dm = DurableMaintainer::adopt(
            tier_store.clone(),
            ib,
            DurabilityConfig {
                checkpoint_interval: 64,
                hot_points: hot,
                ..DurabilityConfig::default()
            },
            MemSink::new(),
            MemCheckpoints::new(),
        )
        .expect("mem sink is healthy");
        *stream_points = dm.store().len();
        let mut curve = Vec::new();
        for (i, (batch, seed)) in tier_steps.iter().enumerate() {
            dm.apply_with(batch, *seed, true, &mut stats)
                .expect("planned batches are valid");
            *stream_points += batch.inserts.len();
            if i % 16 == 15 {
                curve.push((
                    *stream_points,
                    dm.store().len(),
                    dm.store().resident_points(),
                    dm.store().resident_coord_bytes(),
                ));
            }
        }
        let mut snap = Vec::new();
        dm.store().write_snapshot(&mut snap).expect("vec write");
        dm.bubbles().write_snapshot(&mut snap).expect("vec write");
        (curve, snap, dm.store().tier_counters())
    };
    let (tier_curve, tiered_snap, tier_counters) = run_tiered(Some(HOT), &mut stream_points);
    let mut ignored = 0usize;
    let (_, resident_snap, untiered_counters) = run_tiered(None, &mut ignored);
    assert!(
        untiered_counters.is_none(),
        "the resident run must not mount a tier"
    );
    assert_eq!(
        tiered_snap, resident_snap,
        "tiered and fully resident runs must end byte-identical"
    );
    let tc = tier_counters.expect("tiered run exposes counters");
    let resident_bound = (HOT + max_inserts + 1) * tier_dim * 8;
    for &(stream, _, resident, bytes) in &tier_curve {
        assert!(
            resident <= HOT + max_inserts,
            "resident points {resident} past the bound at stream length {stream}"
        );
        assert!(
            bytes <= resident_bound,
            "resident arena {bytes}B past the {resident_bound}B bound at stream length {stream}"
        );
    }
    let final_stream = tier_curve.last().expect("curve sampled").0;
    assert!(
        final_stream >= 20 * HOT,
        "the stream must outgrow the hot cap 20x: {final_stream} points vs cap {HOT}"
    );
    eprintln!(
        "tier (hot={HOT}, {TIER_BATCHES} batches, {final_stream} cumulative points): \
         resident flat at <= {} points / {resident_bound}B; \
         {} cold reads ({}B), {} evictions; tiered == resident: bit-identical",
        HOT + max_inserts,
        tc.cold_reads,
        tc.cold_bytes,
        tc.evictions
    );
    json.push_str("  \"tier\": {\n");
    let _ = writeln!(
        json,
        "    \"hot_points\": {HOT}, \"batches\": {TIER_BATCHES}, \"dim\": {tier_dim}, \
         \"max_batch_inserts\": {max_inserts}, \"resident_bound_bytes\": {resident_bound}, \
         \"bit_identical_to_resident\": true, \"hits\": {}, \"misses\": {}, \
         \"cold_reads\": {}, \"cold_bytes\": {}, \"evictions\": {},",
        tc.hits, tc.misses, tc.cold_reads, tc.cold_bytes, tc.evictions
    );
    json.push_str("    \"resident_curve\": [\n");
    for (i, (stream, live, resident, bytes)) in tier_curve.iter().enumerate() {
        let comma = if i + 1 == tier_curve.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"stream_points\": {stream}, \"live_points\": {live}, \
             \"resident_points\": {resident}, \"resident_coord_bytes\": {bytes}}}{comma}"
        );
    }
    json.push_str("    ]\n  },\n");

    json.push_str("  \"note\": \"complex d2 n20000 s200 scenario, 64 pre-planned batches with maintenance after each, serial mode; durable runs use validate + WAL append + group commit + apply + checkpoint cadence as configured; recovery replays the WAL tail beyond the newest checkpoint; the segmented section streams the same batches through a segment chain with delta checkpoints and compaction, so the live footprint stays bounded while total appended bytes grow; the tier section replays a pre-planned stream tiered (hot cap 64) and fully resident, proving a flat resident-set curve with bit-identical final snapshots\"\n}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
