//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target maps to one of the paper's efficiency claims (see
//! DESIGN.md): the benches re-measure in wall-clock what the experiment
//! harness measures in distance computations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use idb_store::PointStore;
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic complex-scenario engine and populated store.
#[must_use]
pub fn complex_fixture(dim: usize, size: usize, seed: u64) -> (ScenarioEngine, PointStore, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ScenarioSpec::named(ScenarioKind::Complex, dim, size, 0.05);
    let mut engine = ScenarioEngine::new(spec);
    let store = engine.populate(&mut rng);
    (engine, store, rng)
}

/// A deterministic random-scenario store (static content).
#[must_use]
pub fn random_fixture(dim: usize, size: usize, seed: u64) -> (PointStore, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ScenarioSpec::named(ScenarioKind::Random, dim, size, 0.05);
    let mut engine = ScenarioEngine::new(spec);
    let store = engine.populate(&mut rng);
    (store, rng)
}
