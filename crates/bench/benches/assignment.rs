//! Bench: point-to-seed assignment — brute force vs. triangle-inequality
//! pruning vs. the k-d tree seed index (the paper's Section 3 / Figure 10
//! claim, in wall-clock form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::random_fixture;
use idb_core::{IncrementalBubbles, MaintainerConfig, SeedSearch};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_assignment");
    group.sample_size(10);
    for &(dim, size, bubbles) in &[
        (2usize, 20_000usize, 100usize),
        (10, 20_000, 100),
        (2, 20_000, 400),
    ] {
        let (store, _) = random_fixture(dim, size, 7);
        let label = format!("d{dim}_n{size}_s{bubbles}");
        for (name, engine) in [
            ("brute", SeedSearch::Brute),
            ("triangle_inequality", SeedSearch::Pruned),
            ("kdtree", SeedSearch::KdTree),
        ] {
            group.bench_with_input(BenchmarkId::new(name, &label), &store, |b, store| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut stats = SearchStats::new();
                    let ib = IncrementalBubbles::build(
                        store,
                        MaintainerConfig::new(bubbles).with_seed_search(engine),
                        &mut rng,
                        &mut stats,
                    );
                    black_box(ib.total_points())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
