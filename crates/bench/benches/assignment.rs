//! Bench: point-to-seed assignment — brute force vs. triangle-inequality
//! pruning (the paper's Section 3 / Figure 10 claim, in wall-clock form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::random_fixture;
use idb_core::{AssignStrategy, IncrementalBubbles, MaintainerConfig};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_assignment");
    group.sample_size(10);
    for &(dim, size, bubbles) in &[
        (2usize, 20_000usize, 100usize),
        (10, 20_000, 100),
        (2, 20_000, 400),
    ] {
        let (store, _) = random_fixture(dim, size, 7);
        let label = format!("d{dim}_n{size}_s{bubbles}");
        group.bench_with_input(BenchmarkId::new("brute", &label), &store, |b, store| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut stats = SearchStats::new();
                let ib = IncrementalBubbles::build(
                    store,
                    MaintainerConfig::new(bubbles).with_strategy(AssignStrategy::Brute),
                    &mut rng,
                    &mut stats,
                );
                black_box(ib.total_points())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("triangle_inequality", &label),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut stats = SearchStats::new();
                    let ib = IncrementalBubbles::build(
                        store,
                        MaintainerConfig::new(bubbles),
                        &mut rng,
                        &mut stats,
                    );
                    black_box(ib.total_points())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
