//! Bench: hierarchical clustering cost — OPTICS over the raw points vs.
//! OPTICS over the data-bubble summary (the reason data summarization
//! exists: the paper's core motivation from the Data Bubbles line of work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::random_fixture;
use idb_clustering::{optics_bubbles, optics_points};
use idb_core::{IncrementalBubbles, MaintainerConfig};
use idb_geometry::SearchStats;
use std::hint::black_box;

fn bench_optics(c: &mut Criterion) {
    let mut group = c.benchmark_group("optics");
    group.sample_size(10);

    for &size in &[2_000usize, 5_000] {
        let (store, mut rng) = random_fixture(2, size, 5);
        let mut search = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(200), &mut rng, &mut search);

        group.bench_function(BenchmarkId::new("points", size), |b| {
            b.iter(|| {
                let plot = optics_points(&store, f64::INFINITY, 10);
                black_box(plot.len())
            });
        });
        group.bench_function(BenchmarkId::new("bubbles", size), |b| {
            b.iter(|| {
                let ordering = optics_bubbles(ib.bubbles(), f64::INFINITY, 10);
                let plot = ordering.expand(|i| {
                    ib.bubble(i)
                        .members()
                        .iter()
                        .map(|id| u64::from(id.0))
                        .collect::<Vec<_>>()
                });
                black_box(plot.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optics);
criterion_main!(benches);
