//! Bench: serial vs. parallel execution of the bulk hot paths — the
//! construction-scan assignment (chunked across threads with per-worker
//! distance counters) and the OPTICS-on-bubbles pair-matrix fill.
//!
//! Every mode computes bit-identical results (see the differential
//! suites), so the only question is wall-clock. `parallel_report` (a bin
//! in this crate) records the same comparison to `BENCH_parallel.json`
//! without the criterion harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::random_fixture;
use idb_clustering::optics_bubbles_with;
use idb_core::{IncrementalBubbles, MaintainerConfig, Parallelism};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const MODES: [(&str, Parallelism); 3] = [
    ("serial", Parallelism::Serial),
    ("threads2", Parallelism::Threads(2)),
    ("threads4", Parallelism::Threads(4)),
];

fn bench_parallel_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    for &(dim, size) in &[
        (2usize, 10_000usize),
        (2, 100_000),
        (10, 10_000),
        (10, 100_000),
    ] {
        let (store, _) = random_fixture(dim, size, 11);
        for (name, par) in MODES {
            let label = format!("d{dim}_n{size}");
            group.bench_with_input(BenchmarkId::new(name, &label), &store, |b, store| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut stats = SearchStats::new();
                    let ib = IncrementalBubbles::build(
                        store,
                        MaintainerConfig::new(200).with_parallelism(par),
                        &mut rng,
                        &mut stats,
                    );
                    black_box(ib.total_points())
                });
            });
        }
    }
    group.finish();
}

fn bench_parallel_optics(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_optics");
    group.sample_size(10);
    for &(dim, size) in &[(2usize, 10_000usize), (10, 10_000)] {
        let (store, _) = random_fixture(dim, size, 13);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(400), &mut rng, &mut stats);
        let bubbles = ib.bubbles().to_vec();
        for (name, par) in MODES {
            let label = format!("d{dim}_n{size}_s400");
            group.bench_with_input(BenchmarkId::new(name, &label), &bubbles, |b, bubbles| {
                b.iter(|| black_box(optics_bubbles_with(bubbles, f64::INFINITY, 40, par).len()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_build, bench_parallel_optics);
criterion_main!(benches);
