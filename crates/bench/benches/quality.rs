//! Bench: the maintenance machinery itself — β classification and a full
//! maintain round (classification + merge/split), plus the ablation
//! between the two split-seed policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::complex_fixture;
use idb_core::{IncrementalBubbles, MaintainerConfig, SplitSeedPolicy};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(10);
    let size = 20_000;

    // A state right after a disruptive batch, so maintain() has real work.
    let make_state = |policy: SplitSeedPolicy| {
        let (mut engine, mut store, mut rng) = complex_fixture(2, size, 31);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(200).with_split_seeds(policy),
            &mut rng,
            &mut search,
        );
        for _ in 0..4 {
            let batch = engine.plan(&mut rng);
            let ids = ib.apply_batch(&mut store, &batch, &mut search);
            engine.confirm(&ids);
            // No maintain: pressure accumulates for the measured round.
        }
        (ib, store)
    };

    let (ib, store) = make_state(SplitSeedPolicy::Random);
    group.bench_function("classify_only", |b| {
        b.iter(|| black_box(ib.classify_now().over_filled().len()));
    });

    for (policy, name) in [
        (SplitSeedPolicy::Random, "maintain_random_seeds"),
        (SplitSeedPolicy::Spread, "maintain_spread_seeds"),
    ] {
        let (ib, store) = make_state(policy);
        group.bench_function(BenchmarkId::new(name, size), |b| {
            b.iter(|| {
                let mut ib = ib.clone();
                let mut rng = StdRng::seed_from_u64(2);
                let mut stats = SearchStats::new();
                let report = ib.maintain(&store, &mut rng, &mut stats);
                black_box(report.splits)
            });
        });
    }
    drop(store);
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
