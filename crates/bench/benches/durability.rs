//! Bench: the durability layer's cost profile — WAL append + group-commit
//! throughput against in-memory and file sinks, and recovery wall time as
//! the WAL tail to replay grows (checkpoint cadence 1 / 16 / 64).
//!
//! `durability_report` (a bin in this crate) records the same comparison
//! to `BENCH_durability.json` without the criterion harness, alongside an
//! undurable baseline of the identical batch stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::complex_fixture;
use idb_core::{
    recover, DurabilityConfig, DurableMaintainer, IncrementalBubbles, MaintainerConfig,
    MemCheckpoints, Parallelism, SeedSearch,
};
use idb_geometry::SearchStats;
use idb_store::wal::{read_wal, MemSink};
use idb_store::Batch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const BATCHES: usize = 64;

fn planned_stream() -> (idb_store::PointStore, MaintainerConfig, Vec<(Batch, u64)>) {
    let (mut scenario, store, mut rng) = complex_fixture(2, 20_000, 23);
    let mut sim = store.clone();
    let steps = (0..BATCHES)
        .map(|_| {
            let (batch, _) = scenario.step_plain(&mut sim, &mut rng);
            (batch, rng.gen::<u64>())
        })
        .collect();
    let config = MaintainerConfig::new(200)
        .with_seed_search(SeedSearch::Pruned)
        .with_parallelism(Parallelism::Serial);
    (store, config, steps)
}

fn bench_wal_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_wal");
    group.sample_size(10);
    let (store, config, steps) = planned_stream();
    for group_commit in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("mem_sink", format!("gc{group_commit}")),
            &steps,
            |b, steps| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut stats = SearchStats::new();
                    let ib =
                        IncrementalBubbles::build(&store, config.clone(), &mut rng, &mut stats);
                    let mut dm = DurableMaintainer::adopt(
                        store.clone(),
                        ib,
                        DurabilityConfig {
                            group_commit,
                            checkpoint_interval: u64::MAX,
                            ..DurabilityConfig::default()
                        },
                        MemSink::new(),
                        MemCheckpoints::new(),
                    )
                    .expect("mem sink is healthy");
                    for (batch, seed) in steps {
                        dm.apply_with(batch, *seed, true, &mut stats)
                            .expect("planned batches are valid");
                    }
                    black_box(dm.sync())
                });
            },
        );
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_recover");
    group.sample_size(10);
    let (store, config, steps) = planned_stream();
    // Only the baseline anchor checkpoint (covering batch 0), so a prefix
    // of the WAL with k records means a replay tail of exactly k batches.
    let mut rng = StdRng::seed_from_u64(7);
    let mut stats = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, config, &mut rng, &mut stats);
    let mut dm = DurableMaintainer::adopt(
        store.clone(),
        ib,
        DurabilityConfig {
            checkpoint_interval: u64::MAX,
            ..DurabilityConfig::default()
        },
        MemSink::new(),
        MemCheckpoints::new(),
    )
    .expect("mem sink is healthy");
    for (batch, seed) in &steps {
        dm.apply_with(batch, *seed, true, &mut stats)
            .expect("planned batches are valid");
    }
    let (_, _, sink, ckpts) = dm.into_parts();
    let wal_bytes = sink.into_bytes();
    let ends = read_wal(&wal_bytes).expect("reference wal is intact").ends;
    for tail in [1usize, 16, 64] {
        let prefix = wal_bytes[..ends[tail - 1]].to_vec();
        group.bench_with_input(
            BenchmarkId::new("replay_tail", format!("{tail}_batches")),
            &prefix,
            |b, prefix| {
                b.iter(|| {
                    let rec = recover(prefix, &ckpts).expect("clean recovery");
                    black_box(rec.batches_durable)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wal_throughput, bench_recovery);
criterion_main!(benches);
