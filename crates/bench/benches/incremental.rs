//! Bench: maintaining the summary through one update batch — incremental
//! (statistics updates + merge/split) vs. complete rebuild (the paper's
//! Figure 11 claim, in wall-clock form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_core::{IncrementalBubbles, MaintainerConfig, SeedSearch};
use idb_geometry::SearchStats;
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_batch_maintenance");
    group.sample_size(10);
    let size = 20_000;
    let bubbles = 200;

    for &update in &[0.02f64, 0.10] {
        // A warmed-up dynamic run; the measured iteration applies one
        // withheld batch to cloned state (identical input for both schemes).
        let mut rng = StdRng::seed_from_u64(11);
        let spec = ScenarioSpec::named(ScenarioKind::Complex, 2, size, update);
        let mut engine = ScenarioEngine::new(spec);
        let mut store = engine.populate(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(bubbles),
            &mut rng,
            &mut search,
        );
        for _ in 0..3 {
            let batch = engine.plan(&mut rng);
            let ids = ib.apply_batch(&mut store, &batch, &mut search);
            engine.confirm(&ids);
            ib.maintain(&store, &mut rng, &mut search);
        }
        let batch = engine.plan(&mut rng);

        let label = format!("update_{:.0}pct", update * 100.0);
        group.bench_function(BenchmarkId::new("incremental", &label), |b| {
            b.iter(|| {
                let mut ib = ib.clone();
                let mut store = store.clone();
                let mut rng = StdRng::seed_from_u64(3);
                let mut stats = SearchStats::new();
                ib.apply_batch(&mut store, &batch, &mut stats);
                ib.maintain(&store, &mut rng, &mut stats);
                black_box(stats.computed)
            });
        });
        group.bench_function(BenchmarkId::new("complete_rebuild", &label), |b| {
            b.iter(|| {
                let mut store = store.clone();
                store.apply(&batch);
                let mut rng = StdRng::seed_from_u64(3);
                let mut stats = SearchStats::new();
                let rebuilt = IncrementalBubbles::build(
                    &store,
                    MaintainerConfig::new(bubbles).with_seed_search(SeedSearch::Brute),
                    &mut rng,
                    &mut stats,
                );
                black_box(rebuilt.total_points())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_rebuild);
criterion_main!(benches);
