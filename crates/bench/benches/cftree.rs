//! Bench: summarization ingestion throughput — data-bubble construction
//! vs. BIRCH CF-tree insertion over the same database (the baseline
//! comparison of the paper's related-work positioning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idb_bench::random_fixture;
use idb_birch::CfTree;
use idb_core::{IncrementalBubbles, MaintainerConfig};
use idb_geometry::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_summarizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarizer_ingest");
    group.sample_size(10);
    let size = 20_000;

    for &dim in &[2usize, 10] {
        let (store, _) = random_fixture(dim, size, 21);
        group.bench_function(BenchmarkId::new("data_bubbles", dim), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let mut stats = SearchStats::new();
                let ib = IncrementalBubbles::build(
                    &store,
                    MaintainerConfig::new(200),
                    &mut rng,
                    &mut stats,
                );
                black_box(ib.num_bubbles())
            });
        });
        group.bench_function(BenchmarkId::new("cf_tree", dim), |b| {
            b.iter(|| {
                let mut tree = CfTree::new(dim, 8, 16, 5.0);
                for (_, p, _) in store.iter() {
                    tree.insert(p);
                }
                black_box(tree.leaf_entries().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_summarizers);
criterion_main!(benches);
