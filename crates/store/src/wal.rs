//! Append-only write-ahead log for crash-consistent maintenance.
//!
//! The paper's maintainer survives arbitrary update streams *in memory*;
//! this module is the durable half of that promise. Every applied batch is
//! first encoded as a CRC32-framed, length-prefixed record and appended to
//! a WAL through an injectable [`DurableSink`], so a crash at any byte
//! loses at most the batches that were never acknowledged as committed.
//! Recovery (in `idb-core`'s `recovery` module) loads the latest valid
//! checkpoint and replays the WAL tail through the bit-deterministic
//! maintenance paths, reaching the exact state an uninterrupted run would
//! have reached.
//!
//! # Layout
//!
//! ```text
//! header:  magic "IDBW" (4) | version u32 | dim u32 | base u64      (20 bytes)
//! record:  payload_len u32 | payload_crc u32 | payload              (repeated)
//! payload: kind u8 | round_seed u64 | maintain u8
//!          | n_deletes u64 | delete ids u32 ×
//!          | n_inserts u64 | (label u32, coords f64 × dim) ×
//! ```
//!
//! `base` is the absolute sequence number of the first record: a restart
//! begins a fresh WAL epoch whose records continue the global batch
//! numbering, so a checkpoint taken in an earlier epoch can never be
//! confused with the tail of a later one.
//!
//! # The torn-tail rule
//!
//! Appends are sequential, so a crash can only shorten the file: the final
//! record may be *torn* (its header or payload cut off, or a zero-filled
//! length from filesystem pre-allocation). [`read_wal`] silently truncates
//! such a tail — those batches were never durable. A record that is fully
//! present but whose checksum fails cannot be produced by a kill; it is
//! bit damage and surfaces as a typed [`WalError::Corrupt`], never a
//! panic. All allocations while decoding are capped by the remaining
//! input, so a hostile length prefix cannot drive the reader out of
//! memory.

use crate::snapshot::crc32;
use crate::{Batch, PointId};
use idb_obs::{EventKind, Obs};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"IDBW";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Byte length of the WAL file header.
pub const WAL_HEADER_LEN: usize = 20;
const LABEL_NOISE: u32 = u32::MAX;
const RECORD_BATCH: u8 = 0;

/// WAL decoding failure: an I/O error from the underlying medium, or bit
/// damage in a fully-present record (a torn *tail* is not an error — see
/// the module docs).
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A mid-log record (or the header) is structurally damaged.
    Corrupt {
        /// Byte offset of the damaged record's frame.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// A segmented chain is missing an interior segment: the sequence
    /// numbers within the newest epoch are not contiguous. Compaction only
    /// ever removes a *prefix* of the chain, so a hole means a segment was
    /// lost or deleted out from under us — data loss, never silently
    /// tolerated.
    ChainGap {
        /// Epoch of the broken chain.
        epoch: u64,
        /// The sequence number that should exist but does not.
        expected_seq: u64,
    },
    /// A non-final segment of a chain is damaged: torn, checksum-corrupt,
    /// dim-inconsistent, or its record count disagrees with its successor's
    /// base. Only the *final* segment may be torn (the crash rule); damage
    /// anywhere else is bit rot or tampering.
    CorruptSegment {
        /// Epoch of the damaged segment.
        epoch: u64,
        /// Sequence number of the damaged segment within the epoch.
        seq: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Corrupt { offset, detail } => {
                write!(f, "corrupt wal record at byte {offset}: {detail}")
            }
            Self::ChainGap {
                epoch,
                expected_seq,
            } => {
                write!(
                    f,
                    "wal chain gap: epoch {epoch} is missing segment seq {expected_seq}"
                )
            }
            Self::CorruptSegment { epoch, seq, detail } => {
                write!(f, "corrupt wal segment {epoch:08x}-{seq:08x}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Where WAL and checkpoint scratch files go in tests and tools: the
/// `IDB_WAL_DIR` environment variable when set (CI points it at a
/// per-run temp directory so tests stay hermetic), otherwise the system
/// temp directory.
#[must_use]
pub fn scratch_dir() -> PathBuf {
    std::env::var_os("IDB_WAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// Abstraction over the durable medium the WAL appends to.
///
/// Production uses [`FileSink`]; tests use [`MemSink`] or the
/// fault-injecting sink in `idb-synth` to simulate short writes, fsync
/// failures and kills at arbitrary byte positions.
pub trait DurableSink {
    /// Appends `bytes` at the end of the medium. A failure may leave a
    /// *prefix* of `bytes` written (a short write); the caller repairs
    /// with [`DurableSink::truncate`] before retrying.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Forces everything appended so far onto the durable medium.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn sync(&mut self) -> io::Result<()>;

    /// Cuts the medium back to `len` bytes (repairs a short write before a
    /// retry; never called with a length greater than the current size).
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn truncate(&mut self, len: u64) -> io::Result<()>;

    /// Asks the medium to rotate to a fresh segment whose first record
    /// will carry absolute sequence number `next_base`. Single-extent
    /// media (this default) never rotate and return `Ok(None)`; a
    /// segmented medium seals the active segment once it has reached its
    /// byte budget and reports the rotation. Only ever called at a commit
    /// boundary (no bytes in flight).
    ///
    /// # Errors
    /// Whatever the medium reports. A failed rotation leaves the medium
    /// usable — the caller keeps appending to the over-budget segment.
    fn roll(&mut self, _dim: usize, _next_base: u64) -> io::Result<Option<RollReport>> {
        Ok(None)
    }

    /// Asks the medium to reclaim storage wholly covered by a durable
    /// checkpoint: every sealed segment whose records all have absolute
    /// sequence numbers below `covered_seq` may be deleted. Single-extent
    /// media reclaim nothing.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn reclaim(&mut self, _covered_seq: u64) -> io::Result<ReclaimReport> {
        Ok(ReclaimReport::default())
    }

    /// Live bytes currently held by the medium, when it can tell
    /// (segmented media can; plain sinks return `None`, making a disk
    /// budget unenforceable rather than silently wrong).
    fn live_bytes(&self) -> Option<u64> {
        None
    }
}

/// What a successful [`DurableSink::roll`] rotation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollReport {
    /// Bytes in the segment that was just sealed.
    pub sealed_bytes: u64,
    /// Epoch of the new active segment.
    pub new_epoch: u64,
    /// Sequence number of the new active segment within its epoch.
    pub new_seq: u64,
}

/// What a [`DurableSink::reclaim`] compaction freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimReport {
    /// Sealed segments deleted.
    pub segments: u64,
    /// Bytes those segments held.
    pub bytes: u64,
}

/// An in-memory [`DurableSink`] — the reference medium for the
/// crash-consistency suites, which slice its byte buffer at arbitrary
/// crash points.
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    data: Vec<u8>,
}

impl MemSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything appended so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the sink, returning its bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

impl DurableSink for MemSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        crate::segment::truncate_in_memory(&mut self.data, len)
    }
}

/// A file-backed [`DurableSink`] (append mode; `sync` maps to
/// `File::sync_data`).
#[derive(Debug)]
pub struct FileSink {
    file: fs::File,
}

impl FileSink {
    /// Creates (or truncates) the file at `path`.
    ///
    /// # Errors
    /// Whatever the filesystem reports.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        // `O_APPEND` (not plain write mode) so that appends after a
        // `set_len` repair land at the new end of file; truncation to
        // empty is explicit because std rejects `truncate` + `append`.
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.set_len(0)?;
        Ok(Self { file })
    }

    /// Opens an existing file for appending (resuming a WAL after
    /// recovery truncated it to its valid prefix).
    ///
    /// # Errors
    /// Whatever the filesystem reports.
    pub fn open_append<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self { file })
    }
}

impl DurableSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// One durable unit of work: the applied batch, whether a maintenance
/// round followed it, and the seed that round's RNG was (re)started from —
/// everything replay needs to reproduce the exact post-batch state.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Seed of the maintenance round's RNG; recovery replays the round
    /// with `StdRng::seed_from_u64(round_seed)`, which is also exactly how
    /// the live path runs it.
    pub round_seed: u64,
    /// The maintenance trigger decision: whether a merge/split round ran
    /// after this batch.
    pub maintain: bool,
    /// The applied updates.
    pub batch: Batch,
}

/// Encodes the 20-byte WAL file header.
#[must_use]
pub fn wal_header(dim: usize, base: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..4].copy_from_slice(WAL_MAGIC);
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..12].copy_from_slice(&(dim as u32).to_le_bytes());
    h[12..20].copy_from_slice(&base.to_le_bytes());
    h
}

/// Encodes one record (length prefix, checksum, payload).
///
/// # Panics
/// Panics if an insert's dimensionality differs from `dim` — the caller
/// validates the batch before logging it.
#[must_use]
pub fn encode_record(dim: usize, rec: &WalRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(
        18 + 16 + rec.batch.deletes.len() * 4 + rec.batch.inserts.len() * (4 + 8 * dim),
    );
    p.push(RECORD_BATCH);
    p.extend_from_slice(&rec.round_seed.to_le_bytes());
    p.push(u8::from(rec.maintain));
    p.extend_from_slice(&(rec.batch.deletes.len() as u64).to_le_bytes());
    for id in &rec.batch.deletes {
        p.extend_from_slice(&id.0.to_le_bytes());
    }
    p.extend_from_slice(&(rec.batch.inserts.len() as u64).to_le_bytes());
    for (coords, label) in &rec.batch.inserts {
        assert_eq!(coords.len(), dim, "insert dimensionality mismatch");
        p.extend_from_slice(&label.unwrap_or(LABEL_NOISE).to_le_bytes());
        for &x in coords {
            p.extend_from_slice(&x.to_le_bytes());
        }
    }
    let mut framed = Vec::with_capacity(8 + p.len());
    framed.extend_from_slice(&(p.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&p).to_le_bytes());
    framed.extend_from_slice(&p);
    framed
}

/// Cursor over a record payload; every read is bounds-checked against the
/// remaining input, so hostile counts produce typed errors instead of
/// over-allocation or panics.
struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!(
                "record payload exhausted ({} bytes left, {n} needed)",
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

fn decode_payload(dim: usize, payload: &[u8]) -> Result<WalRecord, String> {
    let mut cur = Cur {
        data: payload,
        pos: 0,
    };
    let kind = cur.u8()?;
    if kind != RECORD_BATCH {
        return Err(format!("unknown record kind {kind}"));
    }
    let round_seed = cur.u64()?;
    let maintain = match cur.u8()? {
        0 => false,
        1 => true,
        other => return Err(format!("invalid maintain flag {other}")),
    };
    let n_del = cur.u64()? as usize;
    if n_del > cur.remaining() / 4 {
        return Err(format!("delete count {n_del} exceeds the record"));
    }
    let mut deletes = Vec::with_capacity(n_del);
    for _ in 0..n_del {
        deletes.push(PointId(cur.u32()?));
    }
    let n_ins = cur.u64()? as usize;
    if n_ins > cur.remaining() / (4 + 8 * dim) {
        return Err(format!("insert count {n_ins} exceeds the record"));
    }
    let mut inserts = Vec::with_capacity(n_ins);
    for _ in 0..n_ins {
        let raw = cur.u32()?;
        let label = if raw == LABEL_NOISE { None } else { Some(raw) };
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(cur.f64()?);
        }
        inserts.push((coords, label));
    }
    if cur.remaining() != 0 {
        return Err(format!("{} trailing bytes in record", cur.remaining()));
    }
    Ok(WalRecord {
        round_seed,
        maintain,
        batch: Batch { deletes, inserts },
    })
}

/// The decoded contents of a WAL byte stream.
#[derive(Debug)]
pub struct WalContents {
    /// Dimensionality recorded in the header (0 when the header itself was
    /// torn — an empty log).
    pub dim: usize,
    /// Absolute sequence number of the first record (the WAL epoch base).
    pub base: u64,
    /// Every fully-committed record, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past each record (crash-point enumeration).
    pub ends: Vec<usize>,
    /// Length of the valid prefix; everything past it is a torn tail.
    pub valid_len: usize,
    /// Whether a torn tail was dropped.
    pub torn_tail: bool,
}

/// Decodes a WAL byte stream, truncating a torn final record (see the
/// module docs for the rule) and rejecting mid-log damage.
///
/// # Errors
/// [`WalError::Corrupt`] when the header is fully present but invalid, a
/// fully-present record fails its checksum, or a record's payload is
/// structurally impossible. Never panics, and never allocates more than
/// the input's own size.
pub fn read_wal(bytes: &[u8]) -> Result<WalContents, WalError> {
    if bytes.len() < WAL_HEADER_LEN {
        // A crash during the very first commit: nothing was durable.
        return Ok(WalContents {
            dim: 0,
            base: 0,
            records: Vec::new(),
            ends: Vec::new(),
            valid_len: 0,
            torn_tail: !bytes.is_empty(),
        });
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(WalError::Corrupt {
            offset: 0,
            detail: "bad magic".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
    if version != WAL_VERSION {
        return Err(WalError::Corrupt {
            offset: 4,
            detail: format!("unsupported version {version}"),
        });
    }
    let dim = u32::from_le_bytes(bytes[8..12].try_into().expect("4")) as usize;
    if dim == 0 || dim > 1 << 20 {
        return Err(WalError::Corrupt {
            offset: 8,
            detail: format!("implausible dim {dim}"),
        });
    }
    let base = u64::from_le_bytes(bytes[12..20].try_into().expect("8"));

    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut o = WAL_HEADER_LEN;
    let mut torn = false;
    while o < bytes.len() {
        let rem = bytes.len() - o;
        if rem < 8 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4")) as usize;
        let crc = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().expect("4"));
        if len == 0 && crc == 0 {
            // Zero-filled tail (filesystem pre-allocation): torn.
            torn = true;
            break;
        }
        if len > rem - 8 {
            // The record extends past the end of the log: torn.
            torn = true;
            break;
        }
        let payload = &bytes[o + 8..o + 8 + len];
        if crc32(payload) != crc {
            return Err(WalError::Corrupt {
                offset: o,
                detail: "record checksum mismatch".into(),
            });
        }
        let rec = decode_payload(dim, payload)
            .map_err(|detail| WalError::Corrupt { offset: o, detail })?;
        o += 8 + len;
        records.push(rec);
        ends.push(o);
    }
    let valid_len = if torn {
        ends.last().copied().unwrap_or(WAL_HEADER_LEN)
    } else {
        o
    };
    Ok(WalContents {
        dim,
        base,
        records,
        ends,
        valid_len,
        torn_tail: torn,
    })
}

/// Group-committing WAL appender over a [`DurableSink`].
///
/// Records are buffered in memory and pushed to the sink — append then
/// sync — when the group fills or [`WalWriter::commit`] is called. A
/// failed commit leaves the buffer intact and marks the sink *dirty*: the
/// next commit first truncates the medium back to the last durable length
/// (repairing any short write), then re-appends the whole buffer. A batch
/// therefore is either fully durable or not durable at all — the torn-tail
/// rule covers the window in between.
#[derive(Debug)]
pub struct WalWriter<S: DurableSink> {
    sink: S,
    dim: usize,
    pending: Vec<u8>,
    pending_records: usize,
    group_commit: usize,
    committed_len: u64,
    committed_records: u64,
    dirty: bool,
    obs: Obs,
}

impl<S: DurableSink> WalWriter<S> {
    /// Starts a fresh WAL epoch: the header (with `base`) is buffered and
    /// becomes durable with the first commit.
    pub fn new(sink: S, dim: usize, base: u64, group_commit: usize) -> Self {
        let mut pending = Vec::with_capacity(WAL_HEADER_LEN + 64);
        pending.extend_from_slice(&wal_header(dim, base));
        Self {
            sink,
            dim,
            pending,
            pending_records: 0,
            group_commit: group_commit.max(1),
            committed_len: 0,
            committed_records: 0,
            dirty: false,
            obs: Obs::disabled(),
        }
    }

    /// Installs the observability handle the writer journals WAL traffic
    /// through (events `wal_append` / `wal_commit` / `wal_truncate`,
    /// counters `wal.appended_bytes` / `wal.fsyncs`, histograms
    /// `wal.commit_us` / `wal.group_records`).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Buffers one record (never touches the sink).
    pub fn append(&mut self, rec: &WalRecord) {
        let framed = encode_record(self.dim, rec);
        self.obs.emit(
            EventKind::WalAppend {
                bytes: framed.len() as u64,
                records: 1,
            },
            0,
        );
        self.pending.extend_from_slice(&framed);
        self.pending_records += 1;
    }

    /// `true` when the buffered group is full and should be committed.
    #[must_use]
    pub fn wants_commit(&self) -> bool {
        self.pending_records >= self.group_commit
    }

    /// Records buffered but not yet durable.
    #[must_use]
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// Records committed to the sink in this epoch.
    #[must_use]
    pub fn committed_records(&self) -> u64 {
        self.committed_records
    }

    /// Bytes known durable on the sink.
    #[must_use]
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Pushes the whole buffer to the sink (append + sync). On failure the
    /// buffer is kept and the sink is marked dirty; the next attempt
    /// repairs with a truncate before re-appending.
    ///
    /// # Errors
    /// Whatever the sink reports; the writer stays usable.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let timer = self.obs.start();
        if self.dirty {
            self.sink.truncate(self.committed_len)?;
            self.obs.emit(
                EventKind::WalTruncate {
                    len: self.committed_len,
                },
                0,
            );
            self.dirty = false;
        }
        if let Err(e) = self.sink.append(&self.pending) {
            self.dirty = true;
            return Err(e);
        }
        if let Err(e) = self.sink.sync() {
            self.dirty = true;
            return Err(e);
        }
        let bytes = self.pending.len() as u64;
        let records = self.pending_records as u32;
        self.committed_len += bytes;
        self.committed_records += self.pending_records as u64;
        self.pending.clear();
        self.pending_records = 0;
        // A header-only flush (epoch bookkeeping at writer start) is not a
        // record group; the journal invariant "every wal_commit flushes at
        // least one record" holds by construction.
        if records > 0 {
            self.obs
                .emit(EventKind::WalCommit { bytes, records }, timer.us());
            if self.obs.metrics_on() {
                let m = self.obs.metrics();
                m.counter("wal.appended_bytes").add(bytes);
                m.counter("wal.fsyncs").inc();
                m.histogram("wal.commit_us").record(timer.us());
                m.histogram("wal.group_records").record(u64::from(records));
            }
        }
        Ok(())
    }

    /// The underlying sink.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The underlying sink, mutably (fault toggling in tests).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the writer, returning the sink.
    #[must_use]
    pub fn into_sink(self) -> S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_records(dim: usize, n: usize, seed: u64) -> Vec<WalRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WalRecord {
                round_seed: rng.gen(),
                maintain: rng.gen_bool(0.7),
                batch: Batch {
                    deletes: (0..rng.gen_range(0..5))
                        .map(|_| PointId(rng.gen()))
                        .collect(),
                    inserts: (0..rng.gen_range(0..6))
                        .map(|_| {
                            let p: Vec<f64> =
                                (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
                            let label = if rng.gen_bool(0.3) {
                                None
                            } else {
                                Some(rng.gen_range(0..9))
                            };
                            (p, label)
                        })
                        .collect(),
                },
            })
            .collect()
    }

    fn write_log(dim: usize, base: u64, records: &[WalRecord]) -> Vec<u8> {
        let mut w = WalWriter::new(MemSink::new(), dim, base, 1);
        for r in records {
            w.append(r);
            w.commit().unwrap();
        }
        w.into_sink().into_bytes()
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let records = sample_records(3, 12, 7);
        let bytes = write_log(3, 5, &records);
        let contents = read_wal(&bytes).unwrap();
        assert_eq!(contents.dim, 3);
        assert_eq!(contents.base, 5);
        assert_eq!(contents.records, records);
        assert!(!contents.torn_tail);
        assert_eq!(contents.valid_len, bytes.len());
        assert_eq!(contents.ends.len(), records.len());
    }

    #[test]
    fn every_truncation_point_is_a_clean_torn_tail() {
        let records = sample_records(2, 6, 9);
        let bytes = write_log(2, 0, &records);
        let full = read_wal(&bytes).unwrap();
        for cut in 0..bytes.len() {
            let contents = read_wal(&bytes[..cut]).unwrap();
            // Records are exactly those whose end fits inside the cut.
            let expect = full.ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(contents.records.len(), expect, "cut at {cut}");
            assert_eq!(contents.records[..], records[..expect], "cut at {cut}");
            if cut < bytes.len() {
                // Unless the cut lands exactly on a record boundary (or
                // wipes the whole header), something was torn.
                let on_boundary = full.ends.contains(&cut) || cut == WAL_HEADER_LEN || cut == 0;
                assert_eq!(contents.torn_tail, !on_boundary, "cut at {cut}");
            }
        }
    }

    #[test]
    fn mid_log_bit_damage_is_a_typed_error() {
        let records = sample_records(2, 8, 11);
        let bytes = write_log(2, 0, &records);
        // Flip a byte inside the third record's payload.
        let contents = read_wal(&bytes).unwrap();
        let start = contents.ends[1];
        let mut damaged = bytes.clone();
        damaged[start + 10] ^= 0x40;
        let err = read_wal(&damaged).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn zero_filled_tail_is_torn_not_corrupt() {
        let records = sample_records(1, 3, 13);
        let mut bytes = write_log(1, 0, &records);
        bytes.extend_from_slice(&[0u8; 64]);
        let contents = read_wal(&bytes).unwrap();
        assert_eq!(contents.records.len(), 3);
        assert!(contents.torn_tail);
    }

    #[test]
    fn hostile_counts_inside_a_record_are_rejected_without_overallocation() {
        // Hand-craft a payload claiming 2^60 deletes with a valid CRC: the
        // checksum passes, the structural check must catch it.
        let mut p = Vec::new();
        p.push(RECORD_BATCH);
        p.extend_from_slice(&7u64.to_le_bytes());
        p.push(1);
        p.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let mut bytes = wal_header(2, 0).to_vec();
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&p).to_le_bytes());
        bytes.extend_from_slice(&p);
        let err = read_wal(&bytes).unwrap_err();
        assert!(err.to_string().contains("delete count"), "{err}");
    }

    #[test]
    fn bad_header_magic_is_corrupt_but_short_header_is_torn() {
        let mut bytes = wal_header(2, 0).to_vec();
        bytes[0] = b'X';
        assert!(read_wal(&bytes).is_err());
        // Fewer bytes than a header: a crash before the first commit.
        let contents = read_wal(&bytes[..7]).unwrap();
        assert!(contents.records.is_empty());
        assert!(contents.torn_tail);
        assert_eq!(read_wal(&[]).unwrap().valid_len, 0);
    }

    #[test]
    fn group_commit_buffers_until_the_group_fills() {
        let records = sample_records(2, 5, 17);
        let mut w = WalWriter::new(MemSink::new(), 2, 0, 3);
        w.append(&records[0]);
        w.append(&records[1]);
        assert!(!w.wants_commit());
        assert_eq!(w.sink().bytes().len(), 0, "nothing durable yet");
        w.append(&records[2]);
        assert!(w.wants_commit());
        w.commit().unwrap();
        assert_eq!(w.committed_records(), 3);
        let mid = read_wal(w.sink().bytes()).unwrap();
        assert_eq!(mid.records[..], records[..3]);
        // Explicit commit flushes a partial group.
        w.append(&records[3]);
        w.commit().unwrap();
        assert_eq!(w.committed_records(), 4);
    }

    #[test]
    fn wal_writer_journals_appends_and_commits() {
        use idb_obs::RingRecorder;
        use std::sync::Arc;
        let records = sample_records(2, 3, 23);
        let ring = Arc::new(RingRecorder::new());
        let mut w = WalWriter::new(MemSink::new(), 2, 0, 2);
        w.set_obs(Obs::with_recorder(ring.clone()));
        w.append(&records[0]);
        w.append(&records[1]);
        w.commit().unwrap();
        w.append(&records[2]);
        w.commit().unwrap();
        let kinds: Vec<&'static str> = ring.events().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(
            kinds,
            vec![
                "wal_append",
                "wal_append",
                "wal_commit",
                "wal_append",
                "wal_commit"
            ]
        );
        match ring.events()[2].kind {
            EventKind::WalCommit { bytes, records } => {
                assert_eq!(records, 2);
                assert!(bytes > WAL_HEADER_LEN as u64, "header + two records");
            }
            ref other => panic!("expected WalCommit, got {other:?}"),
        }
        let m = w.obs.metrics();
        assert_eq!(m.counter("wal.fsyncs").get(), 2);
        assert!(m.counter("wal.appended_bytes").get() > 0);
        assert_eq!(m.histogram("wal.group_records").count(), 2);
    }

    /// A sink whose next appends fail after writing only a prefix — the
    /// short-write repair path must truncate and rewrite.
    struct ShortWriteSink {
        inner: MemSink,
        fail_after: Option<usize>,
    }

    impl DurableSink for ShortWriteSink {
        fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
            if let Some(keep) = self.fail_after.take() {
                let keep = keep.min(bytes.len());
                self.inner.append(&bytes[..keep])?;
                return Err(io::Error::other("injected short write"));
            }
            self.inner.append(bytes)
        }
        fn sync(&mut self) -> io::Result<()> {
            self.inner.sync()
        }
        fn truncate(&mut self, len: u64) -> io::Result<()> {
            self.inner.truncate(len)
        }
    }

    #[test]
    fn failed_commit_repairs_the_short_write_on_retry() {
        use idb_obs::RingRecorder;
        use std::sync::Arc;
        let records = sample_records(2, 2, 19);
        let sink = ShortWriteSink {
            inner: MemSink::new(),
            fail_after: None,
        };
        let ring = Arc::new(RingRecorder::new());
        let mut w = WalWriter::new(sink, 2, 0, 1);
        w.set_obs(Obs::with_recorder(ring.clone()));
        w.append(&records[0]);
        w.commit().unwrap();
        // Second commit short-writes 5 bytes, then fails.
        w.sink_mut().fail_after = Some(5);
        w.append(&records[1]);
        assert!(w.commit().is_err());
        // The medium now holds record 0 plus 5 garbage-prefix bytes; a
        // recovery here sees a torn tail.
        let mid = read_wal(w.sink().inner.bytes()).unwrap();
        assert_eq!(mid.records.len(), 1);
        assert!(mid.torn_tail);
        // The retry truncates the partial bytes and lands the record.
        w.commit().unwrap();
        let done = read_wal(w.sink().inner.bytes()).unwrap();
        assert_eq!(done.records[..], records[..2]);
        assert!(!done.torn_tail);
        // The repair truncation was journaled before the successful commit.
        let tags: Vec<&'static str> = ring.events().iter().map(|e| e.kind.tag()).collect();
        assert!(
            tags.contains(&"wal_truncate"),
            "expected a wal_truncate event, got {tags:?}"
        );
    }
}
