//! On-disk layout for sharded durability: one directory per maintainer
//! partition, one WAL file per epoch inside it, plus a checkpoint
//! subdirectory — so N independent maintainers can journal side by side
//! under a single root without their files ever colliding.
//!
//! Layout under a root (typically [`crate::wal::scratch_dir`] or a
//! caller-chosen run directory):
//!
//! ```text
//! <root>/partition-00007/
//!     epoch-00000000000000000003.wal      WAL for epoch base 3
//!     checkpoints/                        FsCheckpoints directory
//! ```
//!
//! Epoch numbers in file names are zero-padded to fixed width so
//! lexicographic directory order equals numeric order; [`list_epochs`]
//! nevertheless parses and sorts numerically, and ignores foreign files.

use std::io;
use std::path::{Path, PathBuf};

/// Width of the zero-padded partition index in directory names.
const PARTITION_WIDTH: usize = 5;
/// Width of the zero-padded epoch number in WAL file names.
const EPOCH_WIDTH: usize = 20;

/// The directory holding one partition's WALs and checkpoints.
#[must_use]
pub fn partition_dir(root: &Path, partition: u32) -> PathBuf {
    root.join(format!("partition-{partition:0PARTITION_WIDTH$}"))
}

/// The WAL file for `epoch` inside a partition directory.
#[must_use]
pub fn epoch_wal_path(partition_dir: &Path, epoch: u64) -> PathBuf {
    partition_dir.join(format!("epoch-{epoch:0EPOCH_WIDTH$}.wal"))
}

/// The checkpoint directory inside a partition directory.
#[must_use]
pub fn checkpoint_dir(partition_dir: &Path) -> PathBuf {
    partition_dir.join("checkpoints")
}

/// Everything a partition needs on disk, created and ready to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPaths {
    /// The partition's own directory under the root.
    pub dir: PathBuf,
    /// The WAL file for the requested epoch (not created — the caller
    /// opens it through `FileSink::create` / `open_append`).
    pub wal: PathBuf,
    /// The checkpoint directory (created).
    pub checkpoints: PathBuf,
}

/// Creates the directory skeleton for `partition` under `root` and
/// returns the paths for `epoch`. Idempotent: existing directories are
/// reused.
///
/// # Errors
/// Whatever the filesystem reports while creating directories.
pub fn ensure_partition_layout(
    root: &Path,
    partition: u32,
    epoch: u64,
) -> io::Result<PartitionPaths> {
    let dir = partition_dir(root, partition);
    let checkpoints = checkpoint_dir(&dir);
    std::fs::create_dir_all(&checkpoints)?;
    Ok(PartitionPaths {
        wal: epoch_wal_path(&dir, epoch),
        dir,
        checkpoints,
    })
}

/// The epoch numbers of every WAL file in a partition directory, sorted
/// ascending. Files that do not match the `epoch-<n>.wal` pattern are
/// ignored; a missing directory reads as "no epochs yet".
///
/// # Errors
/// Whatever the filesystem reports while listing an existing directory.
pub fn list_epochs(partition_dir: &Path) -> io::Result<Vec<u64>> {
    let entries = match std::fs::read_dir(partition_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut epochs = Vec::new();
    for entry in entries {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("epoch-")
            .and_then(|s| s.strip_suffix(".wal"))
        else {
            continue;
        };
        if let Ok(epoch) = stem.parse::<u64>() {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable();
    Ok(epochs)
}

/// The newest epoch with a WAL file in a partition directory, if any.
///
/// # Errors
/// Whatever the filesystem reports while listing an existing directory.
pub fn latest_epoch(partition_dir: &Path) -> io::Result<Option<u64>> {
    Ok(list_epochs(partition_dir)?.pop())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::scratch_dir;

    fn unique_root(tag: &str) -> PathBuf {
        scratch_dir().join(format!("idb-layout-{tag}-{}", std::process::id()))
    }

    #[test]
    fn layout_is_deterministic_and_collision_free() {
        let root = Path::new("/r");
        let d3 = partition_dir(root, 3);
        let d12 = partition_dir(root, 12);
        assert_eq!(d3, Path::new("/r/partition-00003"));
        assert_ne!(d3, d12);
        assert_eq!(
            epoch_wal_path(&d3, 7),
            Path::new("/r/partition-00003/epoch-00000000000000000007.wal")
        );
        assert_eq!(
            checkpoint_dir(&d3),
            Path::new("/r/partition-00003/checkpoints")
        );
    }

    #[test]
    fn ensure_creates_and_is_idempotent() {
        let root = unique_root("ensure");
        let first = ensure_partition_layout(&root, 2, 0).unwrap();
        assert!(first.checkpoints.is_dir());
        assert!(!first.wal.exists());
        let again = ensure_partition_layout(&root, 2, 1).unwrap();
        assert_eq!(first.dir, again.dir);
        assert_ne!(first.wal, again.wal);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn epoch_listing_parses_and_sorts_numerically() {
        let root = unique_root("epochs");
        let paths = ensure_partition_layout(&root, 0, 0).unwrap();
        assert_eq!(list_epochs(&paths.dir).unwrap(), Vec::<u64>::new());
        for epoch in [5u64, 0, 12] {
            std::fs::write(epoch_wal_path(&paths.dir, epoch), b"").unwrap();
        }
        std::fs::write(paths.dir.join("notes.txt"), b"ignored").unwrap();
        assert_eq!(list_epochs(&paths.dir).unwrap(), vec![0, 5, 12]);
        assert_eq!(latest_epoch(&paths.dir).unwrap(), Some(12));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_directory_reads_as_empty() {
        let root = unique_root("missing");
        assert_eq!(latest_epoch(&partition_dir(&root, 9)).unwrap(), None);
    }
}
