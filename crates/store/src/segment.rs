//! Segmented WAL storage: bounded segments, compaction, disk budgets.
//!
//! A single append-only WAL file grows without bound — fatal for the
//! paper's setting of an *unbounded* dynamic stream. This module bounds
//! it: the log becomes a **chain of segments**, each an independently
//! parseable WAL file (same CRC-framed format as [`crate::wal`]), named
//! by `(epoch, seq)`. [`SegmentedSink`] presents the chain to
//! [`crate::wal::WalWriter`] as one logical byte stream, sealing the
//! active segment and rotating to a fresh one once a configurable byte
//! budget is reached, and **compaction** ([`DurableSink::reclaim`])
//! deletes sealed segments whose records are all covered by the newest
//! durable checkpoint — so the live WAL footprint stays proportional to
//! the checkpoint interval, not the stream's lifetime.
//!
//! # Chain layout
//!
//! ```text
//! wal-{epoch:08x}-{seq:08x}.idbw
//! ```
//!
//! Every segment begins with the standard 20-byte WAL header whose `base`
//! is the absolute sequence number of its first record, so each segment
//! is self-describing. [`read_chain`] walks the newest epoch: sequence
//! numbers must be contiguous from the lowest surviving one (compaction
//! only ever deletes a prefix), every *interior* segment must parse clean
//! and agree with its successor's base, and only the **final** segment
//! may carry a torn tail (the crash rule). A hole in the chain is a typed
//! [`WalError::ChainGap`]; interior damage is a typed
//! [`WalError::CorruptSegment`] — never a panic, never silent data loss.
//!
//! # Budgets
//!
//! [`StorageBudget`] caps the chain's live bytes; exceeding it (or an
//! ENOSPC from the medium) surfaces as a typed [`StorageError`] the
//! durability layer turns into its compact-first-then-shed policy
//! (DESIGN.md §16). Both knobs default from the environment —
//! `IDB_WAL_SEGMENT_BYTES` and `IDB_DISK_BUDGET` — via the same
//! parse-or-warn-once pattern as `IDB_SHARDS`.

use crate::wal::{
    read_wal, wal_header, DurableSink, ReclaimReport, RollReport, WalContents, WalError, WalRecord,
    WAL_HEADER_LEN,
};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Environment variable defaulting the per-segment byte budget.
pub const SEGMENT_BYTES_ENV: &str = "IDB_WAL_SEGMENT_BYTES";
/// Environment variable defaulting the live-WAL disk budget.
pub const DISK_BUDGET_ENV: &str = "IDB_DISK_BUDGET";

/// Name of one segment in a chain: `epoch` increments whenever the
/// logical stream restarts (a resume after recovery), `seq` within an
/// epoch increments on every rotation. Orders by `(epoch, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId {
    /// The logical-stream generation this segment belongs to.
    pub epoch: u64,
    /// Position of the segment within its epoch's chain.
    pub seq: u64,
}

impl SegmentId {
    /// The canonical file name, `wal-{epoch:08x}-{seq:08x}.idbw`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("wal-{:08x}-{:08x}.idbw", self.epoch, self.seq)
    }

    /// Parses a canonical file name back into an id.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        let rest = name.strip_prefix("wal-")?.strip_suffix(".idbw")?;
        let (epoch, seq) = rest.split_once('-')?;
        Some(Self {
            epoch: u64::from_str_radix(epoch, 16).ok()?,
            seq: u64::from_str_radix(seq, 16).ok()?,
        })
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}-{:08x}", self.epoch, self.seq)
    }
}

/// Where the segments of a chain live. Like [`DurableSink`], this is
/// injectable: production uses [`FsSegments`], the crash suites use
/// [`MemSegments`], and `idb-synth` wraps either with fault injection
/// (ENOSPC budgets, rotation-point create failures, segment deletion).
pub trait SegmentMedium {
    /// The per-segment append sink this medium hands out.
    type Sink: DurableSink;

    /// Creates (or truncates) the segment `id`, returning its sink.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn create(&mut self, id: SegmentId) -> io::Result<Self::Sink>;

    /// Reads the full contents of segment `id`.
    ///
    /// # Errors
    /// Whatever the medium reports (`NotFound` when it does not exist).
    fn read(&self, id: SegmentId) -> io::Result<Vec<u8>>;

    /// Every segment currently present, in any order.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn list(&self) -> io::Result<Vec<SegmentId>>;

    /// Deletes segment `id`, returning the bytes it held. Deleting a
    /// missing segment is not an error (reclaim is idempotent).
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn remove(&mut self, id: SegmentId) -> io::Result<u64>;
}

type SegmentMap = BTreeMap<SegmentId, Vec<u8>>;

/// An in-memory [`SegmentMedium`]. Cloning shares the underlying map, so
/// the crash suites keep a handle, snapshot the exact byte state at any
/// boundary, "crash", restore, and recover — and the hostile-input tests
/// reach in to delete or bit-flip individual segments.
#[derive(Debug, Clone, Default)]
pub struct MemSegments {
    map: Arc<Mutex<SegmentMap>>,
}

impl MemSegments {
    /// An empty medium.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A deep copy of every segment's bytes (a crash-point snapshot).
    #[must_use]
    pub fn snapshot(&self) -> BTreeMap<SegmentId, Vec<u8>> {
        self.map.lock().expect("segment map poisoned").clone()
    }

    /// Replaces the entire contents (restoring a crash-point snapshot).
    pub fn restore(&self, map: BTreeMap<SegmentId, Vec<u8>>) {
        *self.map.lock().expect("segment map poisoned") = map;
    }

    /// The bytes of one segment, if present (corruption tests).
    #[must_use]
    pub fn segment_bytes(&self, id: SegmentId) -> Option<Vec<u8>> {
        self.map
            .lock()
            .expect("segment map poisoned")
            .get(&id)
            .cloned()
    }

    /// Overwrites (or plants) one segment's bytes (corruption tests).
    pub fn put_segment(&self, id: SegmentId, bytes: Vec<u8>) {
        self.map
            .lock()
            .expect("segment map poisoned")
            .insert(id, bytes);
    }

    /// Total bytes across all segments.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.map
            .lock()
            .expect("segment map poisoned")
            .values()
            .map(|b| b.len() as u64)
            .sum()
    }
}

/// The append sink of one in-memory segment.
#[derive(Debug, Clone)]
pub struct MemSegmentSink {
    map: Arc<Mutex<SegmentMap>>,
    id: SegmentId,
}

impl DurableSink for MemSegmentSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.map
            .lock()
            .expect("segment map poisoned")
            .entry(self.id)
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if let Some(seg) = self
            .map
            .lock()
            .expect("segment map poisoned")
            .get_mut(&self.id)
        {
            // Truncation only ever shortens (short-write repair, epoch
            // reset); a length beyond the current size means the caller's
            // bookkeeping is wrong and must surface typed, not clamp.
            truncate_in_memory(seg, len)?;
        }
        Ok(())
    }
}

/// Shared guard for the in-memory sinks: cuts `data` to `len` bytes,
/// rejecting a `len` beyond the current size with
/// [`io::ErrorKind::InvalidInput`] instead of silently clamping.
pub fn truncate_in_memory(data: &mut Vec<u8>, len: u64) -> io::Result<()> {
    if len > data.len() as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("truncate to {len} beyond current size {}", data.len()),
        ));
    }
    data.truncate(usize::try_from(len).expect("len bounded by current size"));
    Ok(())
}

impl SegmentMedium for MemSegments {
    type Sink = MemSegmentSink;

    fn create(&mut self, id: SegmentId) -> io::Result<Self::Sink> {
        self.map
            .lock()
            .expect("segment map poisoned")
            .insert(id, Vec::new());
        Ok(MemSegmentSink {
            map: Arc::clone(&self.map),
            id,
        })
    }

    fn read(&self, id: SegmentId) -> io::Result<Vec<u8>> {
        self.segment_bytes(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("segment {id}")))
    }

    fn list(&self) -> io::Result<Vec<SegmentId>> {
        Ok(self
            .map
            .lock()
            .expect("segment map poisoned")
            .keys()
            .copied()
            .collect())
    }

    fn remove(&mut self, id: SegmentId) -> io::Result<u64> {
        Ok(self
            .map
            .lock()
            .expect("segment map poisoned")
            .remove(&id)
            .map_or(0, |b| b.len() as u64))
    }
}

/// A directory-backed [`SegmentMedium`]: one `wal-XXXXXXXX-XXXXXXXX.idbw`
/// file per segment.
#[derive(Debug, Clone)]
pub struct FsSegments {
    dir: PathBuf,
}

impl FsSegments {
    /// Uses (creating if needed) `dir` as the segment directory.
    ///
    /// # Errors
    /// Whatever the filesystem reports.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path(&self, id: SegmentId) -> PathBuf {
        self.dir.join(id.file_name())
    }
}

impl SegmentMedium for FsSegments {
    type Sink = crate::wal::FileSink;

    fn create(&mut self, id: SegmentId) -> io::Result<Self::Sink> {
        crate::wal::FileSink::create(self.path(id))
    }

    fn read(&self, id: SegmentId) -> io::Result<Vec<u8>> {
        fs::read(self.path(id))
    }

    fn list(&self) -> io::Result<Vec<SegmentId>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(id) = name.to_str().and_then(SegmentId::parse) {
                ids.push(id);
            }
        }
        Ok(ids)
    }

    fn remove(&mut self, id: SegmentId) -> io::Result<u64> {
        let path = self.path(id);
        match fs::metadata(&path) {
            Ok(meta) => {
                fs::remove_file(&path)?;
                Ok(meta.len())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// Bookkeeping for one sealed (no longer written) segment.
#[derive(Debug, Clone, Copy)]
struct SealedSeg {
    id: SegmentId,
    bytes: u64,
    /// Absolute sequence number just past the segment's last record: a
    /// checkpoint covering `end_seq` makes the whole segment reclaimable.
    end_seq: u64,
}

/// A [`DurableSink`] that spreads one logical WAL byte stream across a
/// chain of bounded segments on a [`SegmentMedium`].
///
/// The `WalWriter` on top is oblivious: appends, syncs and short-write
/// repairs address the logical stream, and the sink maps them onto the
/// active segment. Rotation happens only through [`DurableSink::roll`]
/// at commit boundaries — the sink seals the active segment, creates the
/// next one in the chain, and stamps it with a standard WAL header whose
/// `base` is the absolute sequence number of the next record, keeping
/// every segment independently parseable. [`DurableSink::reclaim`]
/// deletes the sealed prefix a checkpoint has made redundant.
///
/// `truncate(0)` — the resume path destroying a dead epoch — removes
/// every segment and starts a fresh epoch numbered past everything seen,
/// so [`read_chain`] can never confuse a new chain with leftovers.
pub struct SegmentedSink<M: SegmentMedium> {
    medium: M,
    budget: u64,
    epoch: u64,
    active: M::Sink,
    active_id: SegmentId,
    /// Physical bytes in the active segment.
    active_len: u64,
    /// Physical header bytes of the active segment that are *not* part of
    /// the logical stream (0 for an epoch's first segment — its header is
    /// written by the `WalWriter` through the stream — and
    /// [`WAL_HEADER_LEN`] for rotated ones, stamped by the sink itself).
    header_skip: u64,
    /// Logical offset at which the active segment begins.
    logical_start: u64,
    sealed: Vec<SealedSeg>,
}

impl<M: SegmentMedium> fmt::Debug for SegmentedSink<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedSink")
            .field("budget", &self.budget)
            .field("active", &self.active_id)
            .field("active_len", &self.active_len)
            .field("sealed", &self.sealed.len())
            .finish()
    }
}

impl<M: SegmentMedium> SegmentedSink<M> {
    /// Starts a fresh chain on `medium` with the given per-segment byte
    /// budget: any leftover segments from an earlier life are removed
    /// (mirroring [`crate::wal::FileSink::create`]'s truncation), and the
    /// new chain's epoch is numbered past every epoch ever seen.
    ///
    /// # Errors
    /// Whatever the medium reports.
    pub fn fresh(mut medium: M, segment_bytes: u64) -> io::Result<Self> {
        let existing = medium.list()?;
        let epoch = existing
            .iter()
            .map(|id| id.epoch)
            .max()
            .map_or(0, |e| e + 1);
        for id in existing {
            medium.remove(id)?;
        }
        let active_id = SegmentId { epoch, seq: 0 };
        let active = medium.create(active_id)?;
        Ok(Self {
            medium,
            budget: segment_bytes.max(1),
            epoch,
            active,
            active_id,
            active_len: 0,
            header_skip: 0,
            logical_start: 0,
            sealed: Vec::new(),
        })
    }

    /// The segment medium.
    #[must_use]
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// The segment medium, mutably (fault toggling in tests).
    pub fn medium_mut(&mut self) -> &mut M {
        &mut self.medium
    }

    /// The chain's current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The active (currently appended-to) segment.
    #[must_use]
    pub fn active_id(&self) -> SegmentId {
        self.active_id
    }

    /// Segments currently alive (sealed + active).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }
}

impl<M: SegmentMedium> DurableSink for SegmentedSink<M> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.active.append(bytes)?;
        self.active_len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.active.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if len >= self.logical_start {
            // A short-write repair inside the active segment.
            let phys = self.header_skip + (len - self.logical_start);
            self.active.truncate(phys)?;
            self.active_len = phys;
            return Ok(());
        }
        if len == 0 {
            // The resume path: the whole logical stream is dead. Remove
            // every segment and begin a fresh epoch.
            for seg in std::mem::take(&mut self.sealed) {
                self.medium.remove(seg.id)?;
            }
            self.medium.remove(self.active_id)?;
            self.epoch += 1;
            self.active_id = SegmentId {
                epoch: self.epoch,
                seq: 0,
            };
            self.active = self.medium.create(self.active_id)?;
            self.active_len = 0;
            self.header_skip = 0;
            self.logical_start = 0;
            return Ok(());
        }
        // The WalWriter only truncates to a committed length, and sealing
        // happens exactly at commit boundaries, so a cut into a sealed
        // segment cannot be produced by the writer.
        Err(io::Error::other(
            "segmented wal cannot truncate into a sealed segment",
        ))
    }

    fn roll(&mut self, dim: usize, next_base: u64) -> io::Result<Option<RollReport>> {
        if self.active_len < self.budget {
            return Ok(None);
        }
        let next_id = SegmentId {
            epoch: self.epoch,
            seq: self.active_id.seq + 1,
        };
        // Create-and-stamp before switching: if anything here fails, the
        // active segment is untouched and appends keep landing in it. A
        // crash inside this window leaves at most a stray final segment
        // with a short header, which `read_chain` ignores as torn.
        let mut sink = self.medium.create(next_id)?;
        sink.append(&wal_header(dim, next_base))?;
        sink.sync()?;
        let sealed_bytes = self.active_len;
        self.sealed.push(SealedSeg {
            id: self.active_id,
            bytes: sealed_bytes,
            end_seq: next_base,
        });
        self.logical_start += self.active_len - self.header_skip;
        self.active = sink;
        self.active_id = next_id;
        self.active_len = WAL_HEADER_LEN as u64;
        self.header_skip = WAL_HEADER_LEN as u64;
        Ok(Some(RollReport {
            sealed_bytes,
            new_epoch: next_id.epoch,
            new_seq: next_id.seq,
        }))
    }

    fn reclaim(&mut self, covered_seq: u64) -> io::Result<ReclaimReport> {
        let mut report = ReclaimReport::default();
        while let Some(first) = self.sealed.first().copied() {
            if first.end_seq > covered_seq {
                break;
            }
            let freed = self.medium.remove(first.id)?;
            report.segments += 1;
            report.bytes += freed.max(first.bytes);
            self.sealed.remove(0);
        }
        Ok(report)
    }

    fn live_bytes(&self) -> Option<u64> {
        Some(self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active_len)
    }
}

/// The decoded contents of a segment chain: the merged logical view of
/// the newest epoch, plus chain provenance.
#[derive(Debug)]
pub struct ChainContents {
    /// Dimensionality from the chain's headers (0 for an empty chain).
    pub dim: usize,
    /// Absolute sequence number of the first surviving record (the base
    /// of the oldest surviving segment; compaction moves it forward).
    pub base: u64,
    /// Every fully-committed record across the chain, in order.
    pub records: Vec<WalRecord>,
    /// Whether the final segment carried a torn tail.
    pub torn_tail: bool,
    /// The epoch that was read.
    pub epoch: u64,
    /// The chain's segments, oldest first.
    pub segments: Vec<SegmentId>,
    /// Total bytes read across the chain's segments.
    pub bytes: u64,
}

impl ChainContents {
    /// The merged view as a [`WalContents`] (what `idb-core`'s recovery
    /// consumes). Byte-offset fields (`ends`, `valid_len`) are stream
    /// concepts without a chain equivalent and are left empty.
    #[must_use]
    pub fn into_wal_contents(self) -> WalContents {
        WalContents {
            dim: self.dim,
            base: self.base,
            records: self.records,
            ends: Vec::new(),
            valid_len: 0,
            torn_tail: self.torn_tail,
        }
    }
}

/// Walks the newest epoch's segment chain on `medium` and merges it into
/// one logical record stream.
///
/// Older epochs are ignored: a resume wipes its predecessors, so their
/// segments can only be leftovers of an interrupted wipe, and the resume
/// anchor checkpoint already covers everything they held. Within the
/// chain, sequence numbers must be contiguous from the lowest survivor;
/// every interior segment must parse clean, untorn, dimensionally
/// consistent, and hand over exactly at its successor's base. Only the
/// final segment may be torn — including a missing or short header (a
/// crash during rotation), which contributes nothing.
///
/// # Errors
/// * [`WalError::ChainGap`] — a hole in the sequence numbers;
/// * [`WalError::CorruptSegment`] — a torn or damaged interior segment,
///   a dimensionality flip, a base that disagrees with its predecessor's
///   record count, or checksum-level damage inside any segment;
/// * [`WalError::Io`] — the medium failed.
pub fn read_chain<M: SegmentMedium>(medium: &M) -> Result<ChainContents, WalError> {
    let mut ids = medium.list()?;
    let Some(epoch) = ids.iter().map(|id| id.epoch).max() else {
        return Ok(ChainContents {
            dim: 0,
            base: 0,
            records: Vec::new(),
            torn_tail: false,
            epoch: 0,
            segments: Vec::new(),
            bytes: 0,
        });
    };
    ids.retain(|id| id.epoch == epoch);
    ids.sort_unstable();
    for pair in ids.windows(2) {
        if pair[1].seq != pair[0].seq + 1 {
            return Err(WalError::ChainGap {
                epoch,
                expected_seq: pair[0].seq + 1,
            });
        }
    }

    let corrupt = |seq: u64, detail: String| WalError::CorruptSegment { epoch, seq, detail };
    let last = ids.len() - 1;
    let mut dim = 0usize;
    let mut base = 0u64;
    let mut next_base = 0u64;
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut total_bytes = 0u64;
    for (k, &id) in ids.iter().enumerate() {
        let bytes = medium.read(id)?;
        total_bytes += bytes.len() as u64;
        let parsed = read_wal(&bytes).map_err(|e| match e {
            WalError::Io(e) => WalError::Io(e),
            WalError::Corrupt { offset, detail } => {
                corrupt(id.seq, format!("at byte {offset}: {detail}"))
            }
            other => other,
        })?;
        if parsed.dim == 0 {
            // The header itself is short: legal only as a crash's final
            // stray (nothing in it was ever durable).
            if k < last {
                return Err(corrupt(
                    id.seq,
                    "interior segment is missing its header".into(),
                ));
            }
            torn_tail = parsed.torn_tail;
            break;
        }
        if k == 0 {
            dim = parsed.dim;
            base = parsed.base;
        } else {
            if parsed.dim != dim {
                return Err(corrupt(
                    id.seq,
                    format!("segment dim {} vs chain dim {dim}", parsed.dim),
                ));
            }
            if parsed.base != next_base {
                return Err(corrupt(
                    id.seq,
                    format!(
                        "segment base {} but predecessor ends at {next_base}",
                        parsed.base
                    ),
                ));
            }
        }
        if k < last && parsed.torn_tail {
            return Err(corrupt(id.seq, "interior segment has a torn tail".into()));
        }
        next_base = parsed.base + parsed.records.len() as u64;
        records.extend(parsed.records);
        torn_tail = parsed.torn_tail;
    }
    Ok(ChainContents {
        dim,
        base,
        records,
        torn_tail,
        epoch,
        segments: ids,
        bytes: total_bytes,
    })
}

/// A cap on the live bytes a durable resource may hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageBudget {
    /// Maximum live bytes; `None` is unbounded.
    pub max_live_bytes: Option<u64>,
}

impl StorageBudget {
    /// No cap.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A cap of `bytes` live bytes.
    #[must_use]
    pub fn bytes(bytes: u64) -> Self {
        Self {
            max_live_bytes: Some(bytes),
        }
    }

    /// The ambient default: `IDB_DISK_BUDGET` when set and parseable,
    /// unbounded otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        Self {
            max_live_bytes: disk_budget_from_env(),
        }
    }

    /// Checks `live` bytes against the cap.
    ///
    /// # Errors
    /// [`StorageError::BudgetExceeded`] when `live` is over the cap.
    pub fn check(&self, live: u64) -> Result<(), StorageError> {
        match self.max_live_bytes {
            Some(budget) if live > budget => Err(StorageError::BudgetExceeded {
                live_bytes: live,
                budget,
            }),
            _ => Ok(()),
        }
    }
}

/// A typed storage-exhaustion event. Every durable resource is bounded;
/// hitting a bound is a recoverable, reportable condition — never a
/// panic, never silent loss of *acknowledged* data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The live WAL chain exceeds the configured disk budget and
    /// compaction (plus a forced checkpoint) could not shrink it enough.
    BudgetExceeded {
        /// Live bytes currently held.
        live_bytes: u64,
        /// The configured cap.
        budget: u64,
    },
    /// The medium itself is out of space (ENOSPC) and compaction could
    /// not free enough to continue.
    Enospc {
        /// What the medium reported.
        detail: String,
    },
    /// The degraded-mode in-memory buffer reached its hard cap; the
    /// batch was shed instead of growing memory without limit.
    BufferFull {
        /// Records currently buffered.
        buffered: usize,
        /// The configured cap.
        max: usize,
    },
    /// A cold-tier point read or write failed. The point slab stays
    /// consistent; the maintainer degrades typed and retries, exactly
    /// like the ENOSPC ladder above.
    ColdIo {
        /// Which tier operation failed (`"read"`, `"write"`, ...).
        op: &'static str,
        /// What the medium reported.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExceeded { live_bytes, budget } => {
                write!(
                    f,
                    "disk budget exceeded: {live_bytes} live bytes > {budget}"
                )
            }
            Self::Enospc { detail } => write!(f, "storage full: {detail}"),
            Self::BufferFull { buffered, max } => {
                write!(f, "degraded buffer full: {buffered} records >= cap {max}")
            }
            Self::ColdIo { op, detail } => {
                write!(f, "cold tier {op} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// A typed failure parsing one of this module's environment knobs.
/// (Deliberately shaped like `idb_geometry::parallel::EnvParseError`;
/// `idb-store` sits below the geometry crate and cannot depend on it.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The variable that failed to parse.
    pub var: &'static str,
    /// Its raw value.
    pub value: String,
    /// What would have been accepted.
    pub expected: &'static str,
}

impl fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvParseError {}

fn bytes_from_env_strict(var: &'static str) -> Result<Option<u64>, EnvParseError> {
    let Some(raw) = std::env::var_os(var) else {
        return Ok(None);
    };
    let text = raw.to_string_lossy();
    text.trim()
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .map(Some)
        .ok_or_else(|| EnvParseError {
            var,
            value: text.into_owned(),
            expected: "a positive byte count",
        })
}

/// The `IDB_WAL_SEGMENT_BYTES` value, if set and parseable (a positive
/// byte count); an invalid value warns **once** on stderr and reads as
/// unset, mirroring `IDB_SHARDS`.
#[must_use]
pub fn segment_bytes_from_env() -> Option<u64> {
    match segment_bytes_from_env_strict() {
        Ok(v) => v,
        Err(e) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("warning: {e}; falling back to the default"));
            None
        }
    }
}

/// Like [`segment_bytes_from_env`], but an unparseable value is a typed
/// error — library callers decide the failure policy.
///
/// # Errors
/// [`EnvParseError`] when `IDB_WAL_SEGMENT_BYTES` is set to anything but
/// a positive integer byte count.
pub fn segment_bytes_from_env_strict() -> Result<Option<u64>, EnvParseError> {
    bytes_from_env_strict(SEGMENT_BYTES_ENV)
}

/// The `IDB_DISK_BUDGET` value, if set and parseable (a positive byte
/// count); an invalid value warns **once** on stderr and reads as unset.
#[must_use]
pub fn disk_budget_from_env() -> Option<u64> {
    match disk_budget_from_env_strict() {
        Ok(v) => v,
        Err(e) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("warning: {e}; running without a disk budget"));
            None
        }
    }
}

/// Like [`disk_budget_from_env`], but an unparseable value is a typed
/// error — library callers decide the failure policy.
///
/// # Errors
/// [`EnvParseError`] when `IDB_DISK_BUDGET` is set to anything but a
/// positive integer byte count.
pub fn disk_budget_from_env_strict() -> Result<Option<u64>, EnvParseError> {
    bytes_from_env_strict(DISK_BUDGET_ENV)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;
    use crate::{Batch, PointId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_records(dim: usize, n: usize, seed: u64) -> Vec<WalRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WalRecord {
                round_seed: rng.gen(),
                maintain: rng.gen_bool(0.5),
                batch: Batch {
                    deletes: (0..rng.gen_range(0..4))
                        .map(|_| PointId(rng.gen()))
                        .collect(),
                    inserts: (0..rng.gen_range(0..5))
                        .map(|_| {
                            let p: Vec<f64> = (0..dim).map(|_| rng.gen_range(-9.0..9.0)).collect();
                            (p, Some(rng.gen_range(0..4)))
                        })
                        .collect(),
                },
            })
            .collect()
    }

    /// Drives a `WalWriter` over a `SegmentedSink` the way the durable
    /// maintainer does: append, commit, then offer a rotation with the
    /// next absolute sequence number.
    fn write_chain(
        medium: MemSegments,
        budget: u64,
        dim: usize,
        base: u64,
        records: &[WalRecord],
    ) -> WalWriter<SegmentedSink<MemSegments>> {
        let sink = SegmentedSink::fresh(medium, budget).unwrap();
        let mut w = WalWriter::new(sink, dim, base, 1);
        w.commit().unwrap();
        for r in records {
            w.append(r);
            w.commit().unwrap();
            let next = base + w.committed_records();
            w.sink_mut().roll(dim, next).unwrap();
        }
        w
    }

    #[test]
    fn chain_round_trips_across_rotations() {
        let records = sample_records(2, 30, 5);
        let medium = MemSegments::new();
        let w = write_chain(medium.clone(), 256, 2, 7, &records);
        assert!(
            w.sink().segment_count() > 3,
            "tiny budget must force rotations, got {}",
            w.sink().segment_count()
        );
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.dim, 2);
        assert_eq!(chain.base, 7);
        assert_eq!(chain.records, records);
        assert!(!chain.torn_tail);
        assert_eq!(chain.segments.len(), w.sink().segment_count());
    }

    #[test]
    fn huge_budget_never_rotates() {
        let records = sample_records(2, 10, 6);
        let medium = MemSegments::new();
        let w = write_chain(medium.clone(), u64::MAX, 2, 0, &records);
        assert_eq!(w.sink().segment_count(), 1);
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.records, records);
    }

    #[test]
    fn reclaim_deletes_exactly_the_covered_prefix() {
        let records = sample_records(1, 40, 7);
        let medium = MemSegments::new();
        let mut w = write_chain(medium.clone(), 200, 1, 0, &records);
        let before = w.sink().segment_count();
        assert!(before > 4);
        // A checkpoint covering record 20: everything wholly before it
        // may go; records >= 20 must survive.
        let report = w.sink_mut().reclaim(20).unwrap();
        assert!(report.segments > 0);
        assert!(report.bytes > 0);
        assert_eq!(w.sink().segment_count(), before - report.segments as usize);
        let chain = read_chain(&medium).unwrap();
        assert!(
            chain.base <= 20,
            "record 20 must survive, base {}",
            chain.base
        );
        assert_eq!(chain.records[..], records[chain.base as usize..]);
        // Reclaiming everything keeps the active segment.
        w.sink_mut().reclaim(u64::MAX).unwrap();
        assert_eq!(w.sink().segment_count(), 1);
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.records[..], records[chain.base as usize..]);
    }

    #[test]
    fn live_bytes_tracks_the_chain_and_shrinks_on_reclaim() {
        let records = sample_records(1, 30, 8);
        let medium = MemSegments::new();
        let mut w = write_chain(medium.clone(), 128, 1, 0, &records);
        let live = w.sink().live_bytes().unwrap();
        assert_eq!(live, medium.total_bytes());
        w.sink_mut().reclaim(u64::MAX).unwrap();
        let after = w.sink().live_bytes().unwrap();
        assert!(after < live);
        assert_eq!(after, medium.total_bytes());
    }

    #[test]
    fn a_chain_gap_is_a_typed_error() {
        let records = sample_records(1, 30, 9);
        let medium = MemSegments::new();
        let w = write_chain(medium.clone(), 128, 1, 0, &records);
        assert!(w.sink().segment_count() > 3);
        // Delete an interior segment outright.
        let victim = w.sink().sealed[1].id;
        medium.clone().remove(victim).unwrap();
        let err = read_chain(&medium).unwrap_err();
        assert!(
            matches!(err, WalError::ChainGap { expected_seq, .. } if expected_seq == victim.seq),
            "{err}"
        );
    }

    #[test]
    fn interior_bit_damage_is_a_typed_error() {
        let records = sample_records(1, 30, 10);
        let medium = MemSegments::new();
        let w = write_chain(medium.clone(), 128, 1, 0, &records);
        let victim = w.sink().sealed[1].id;
        let mut bytes = medium.segment_bytes(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        medium.put_segment(victim, bytes);
        let err = read_chain(&medium).unwrap_err();
        assert!(matches!(err, WalError::CorruptSegment { .. }), "{err}");
    }

    #[test]
    fn interior_truncation_is_corrupt_but_final_truncation_is_torn() {
        let records = sample_records(1, 30, 11);
        let medium = MemSegments::new();
        let w = write_chain(medium.clone(), 128, 1, 0, &records);
        let last_id = w.sink().active_id();
        // Tearing the final segment is the crash rule: fine.
        let full = read_chain(&medium).unwrap();
        let mut bytes = medium.segment_bytes(last_id).unwrap();
        if bytes.len() > WAL_HEADER_LEN + 3 {
            bytes.truncate(bytes.len() - 3);
            medium.put_segment(last_id, bytes);
            let chain = read_chain(&medium).unwrap();
            assert!(chain.torn_tail);
            assert!(chain.records.len() < full.records.len());
        }
        // Tearing an interior segment is damage: typed error.
        let victim = w.sink().sealed[0].id;
        let mut bytes = medium.segment_bytes(victim).unwrap();
        bytes.truncate(bytes.len() - 3);
        medium.put_segment(victim, bytes);
        let err = read_chain(&medium).unwrap_err();
        assert!(
            matches!(err, WalError::CorruptSegment { .. }),
            "expected CorruptSegment, got {err}"
        );
    }

    #[test]
    fn truncate_beyond_current_size_is_rejected_typed() {
        // Regression: the in-memory sinks used to clamp the requested
        // length (`usize::try_from(len).unwrap_or(usize::MAX)`) instead
        // of reporting the caller's bookkeeping error.
        let mut medium = MemSegments::new();
        let id = SegmentId { epoch: 1, seq: 0 };
        let mut sink = medium.create(id).unwrap();
        sink.append(b"0123456789").unwrap();
        let err = sink.truncate(11).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
        sink.truncate(4).unwrap();
        assert_eq!(medium.segment_bytes(id).unwrap(), b"0123");
        // Same guard on the raw helper.
        let mut data = vec![0u8; 4];
        assert!(truncate_in_memory(&mut data, u64::MAX).is_err());
        truncate_in_memory(&mut data, 0).unwrap();
        assert!(data.is_empty());
    }

    #[test]
    fn truncate_zero_begins_a_fresh_epoch_and_ignores_leftovers() {
        let records = sample_records(2, 20, 12);
        let medium = MemSegments::new();
        let mut w = write_chain(medium.clone(), 200, 2, 0, &records);
        let old_epoch = w.sink().epoch();
        // The resume path: wipe, then a new writer stamps a new header.
        w.sink_mut().truncate(0).unwrap();
        let sink = w.into_sink();
        let mut w2 = WalWriter::new(sink, 2, 20, 1);
        w2.commit().unwrap();
        let fresh = sample_records(2, 3, 13);
        for r in &fresh {
            w2.append(r);
            w2.commit().unwrap();
        }
        assert_eq!(w2.sink().epoch(), old_epoch + 1);
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.epoch, old_epoch + 1);
        assert_eq!(chain.base, 20);
        assert_eq!(chain.records, fresh);
        // Plant a leftover segment from an older epoch: still ignored.
        medium.put_segment(
            SegmentId {
                epoch: old_epoch,
                seq: 0,
            },
            b"garbage from a dead epoch".to_vec(),
        );
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.records, fresh);
    }

    #[test]
    fn short_write_repair_works_across_the_segment_header_offset() {
        // A rotated segment's physical layout is offset by the header the
        // sink stamped; the logical truncate must land correctly.
        let records = sample_records(1, 12, 14);
        let medium = MemSegments::new();
        let mut w = write_chain(medium.clone(), 100, 1, 0, &records);
        assert!(
            w.sink().segment_count() > 1,
            "need a rotated active segment"
        );
        let committed = w.committed_len();
        // Simulate a partial append landing past the commit point.
        w.sink_mut().append(b"partial-garbage").unwrap();
        w.sink_mut().truncate(committed).unwrap();
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.records, records);
        assert!(!chain.torn_tail);
    }

    #[test]
    fn empty_medium_reads_as_an_empty_chain() {
        let chain = read_chain(&MemSegments::new()).unwrap();
        assert_eq!(chain.records.len(), 0);
        assert_eq!(chain.dim, 0);
        assert!(!chain.torn_tail);
    }

    #[test]
    fn fs_segments_round_trip_and_reclaim() {
        let dir = crate::wal::scratch_dir().join(format!(
            "idb-seg-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let medium = FsSegments::open(&dir).unwrap();
        let records = sample_records(2, 20, 15);
        let sink = SegmentedSink::fresh(medium.clone(), 256).unwrap();
        let mut w = WalWriter::new(sink, 2, 0, 1);
        w.commit().unwrap();
        for r in &records {
            w.append(r);
            w.commit().unwrap();
            let next = w.committed_records();
            w.sink_mut().roll(2, next).unwrap();
        }
        assert!(w.sink().segment_count() > 1);
        let chain = read_chain(&medium).unwrap();
        assert_eq!(chain.records, records);
        w.sink_mut().reclaim(10).unwrap();
        let chain = read_chain(&medium).unwrap();
        assert!(chain.base <= 10);
        assert_eq!(chain.records[..], records[chain.base as usize..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_id_file_names_round_trip() {
        let id = SegmentId {
            epoch: 0x1f,
            seq: 0xabcdef,
        };
        assert_eq!(SegmentId::parse(&id.file_name()), Some(id));
        assert_eq!(SegmentId::parse("wal-xyz.idbw"), None);
        assert_eq!(SegmentId::parse("checkpoint-3.idbc"), None);
    }

    #[test]
    fn storage_budget_checks_and_errors_display() {
        assert!(StorageBudget::unbounded().check(u64::MAX).is_ok());
        let b = StorageBudget::bytes(100);
        assert!(b.check(100).is_ok());
        let err = b.check(101).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::BudgetExceeded {
                    live_bytes: 101,
                    budget: 100
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("101"));
        let e = StorageError::Enospc {
            detail: "no space left".into(),
        };
        assert!(e.to_string().contains("storage full"));
        let e = StorageError::BufferFull {
            buffered: 9,
            max: 8,
        };
        assert!(e.to_string().contains("cap 8"));
    }

    // Env-var parsing behavior is covered in `tests/env_knob.rs`, where
    // the process environment can be mutated without racing other tests.
    #[test]
    fn strict_env_parsers_tolerate_the_ambient_environment() {
        // Unset (the usual case) parses as None; a CI run that sets the
        // knobs to valid byte counts parses as Some. Either way: no error.
        assert!(segment_bytes_from_env_strict().is_ok());
        assert!(disk_budget_from_env_strict().is_ok());
    }
}
