//! Dynamic in-memory point database.
//!
//! The paper's setting (Section 1) is an *incremental database*: a large set
//! of d-dimensional points that an application inserts into and deletes from
//! over time, with the full contents available at any moment — unlike a data
//! stream. This crate is that substrate: a slab-backed point store with
//!
//! * O(1) insertion and deletion with stable [`PointId`]s (slots are reused
//!   via a free list, and the dense slot space lets downstream crates keep
//!   per-point side tables as plain vectors instead of hash maps);
//! * optional ground-truth labels per point (the synthetic scenario
//!   generators attach the generating cluster, which the evaluation crate
//!   uses for F-scores — `None` marks noise);
//! * O(1) uniform random sampling of live points (seed selection for bubble
//!   construction, random deletions in the workload generators);
//! * batch update descriptions ([`Batch`]) shared by the workload generators
//!   and the incremental maintainer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

pub mod layout;
pub mod segment;
pub mod snapshot;
pub mod wal;
pub use segment::{
    read_chain, ChainContents, FsSegments, MemSegments, SegmentId, SegmentMedium, SegmentedSink,
    StorageBudget, StorageError,
};
pub use snapshot::SnapshotError;
pub use wal::{DurableSink, FileSink, MemSink, WalError, WalRecord, WalWriter};

/// Stable identifier of a live point: an index into the store's slot space.
///
/// Ids are only meaningful while the point is live; a deleted slot may be
/// reused by a later insertion. All workloads in this workspace hold ids
/// only for points they know to be live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The slot index, for use with dense per-point side tables.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Ground-truth label of a point: the generating cluster, or `None` for
/// noise. Purely evaluation metadata — no algorithm reads it.
pub type Label = Option<u32>;

const NOISE_SENTINEL: u32 = u32::MAX;

/// A batch of updates: the deletions remove currently-live points, the
/// insertions add new points (ids are assigned at application time).
///
/// The paper inspects the clustering structure after batches in which N % of
/// the points have been deleted and M % inserted; the scenario generators in
/// `idb-synth` emit values of this type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    /// Points to delete; must be live when the batch is applied.
    pub deletes: Vec<PointId>,
    /// Points to insert, as `(coordinates, ground-truth label)`.
    pub inserts: Vec<(Vec<f64>, Label)>,
}

impl Batch {
    /// Total number of operations in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len()
    }

    /// `true` when the batch contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }
}

/// Slab-backed store of d-dimensional points with labels.
///
/// # Examples
/// ```
/// use idb_store::PointStore;
///
/// let mut store = PointStore::new(2);
/// let a = store.insert(&[1.0, 2.0], Some(0));
/// let b = store.insert(&[3.0, 4.0], None); // noise
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.point(a), &[1.0, 2.0]);
///
/// store.remove(a);
/// assert!(!store.contains(a) || store.point(a) != [1.0, 2.0]);
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.label(b), None);
/// ```
#[derive(Debug, Clone)]
pub struct PointStore {
    dim: usize,
    coords: Vec<f64>,
    labels: Vec<u32>,
    /// slot -> position in `live_list`, or `u32::MAX` when the slot is free.
    live_pos: Vec<u32>,
    /// Dense list of live slots, for O(1) sampling and fast iteration.
    live_list: Vec<u32>,
    free: Vec<u32>,
}

const FREE: u32 = u32::MAX;

impl PointStore {
    /// Creates an empty store for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "PointStore requires dim > 0");
        Self {
            dim,
            coords: Vec::new(),
            labels: Vec::new(),
            live_pos: Vec::new(),
            live_list: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Creates an empty store pre-sized for `capacity` points.
    #[must_use]
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "PointStore requires dim > 0");
        Self {
            dim,
            coords: Vec::with_capacity(capacity * dim),
            labels: Vec::with_capacity(capacity),
            live_pos: Vec::with_capacity(capacity),
            live_list: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// Dimensionality of the stored points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_list.len()
    }

    /// `true` when no live point exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_list.is_empty()
    }

    /// Total number of slots ever allocated (live + free). Dense per-point
    /// side tables should be sized to this value.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.live_pos.len()
    }

    /// Inserts a point, returning its id. Reuses a free slot when available.
    ///
    /// # Panics
    /// Panics if the point's dimensionality differs from the store's.
    pub fn insert(&mut self, point: &[f64], label: Label) -> PointId {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        let label = label.unwrap_or(NOISE_SENTINEL);
        let slot = if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            self.coords[s * self.dim..(s + 1) * self.dim].copy_from_slice(point);
            self.labels[s] = label;
            slot
        } else {
            let slot = self.live_pos.len() as u32;
            self.coords.extend_from_slice(point);
            self.labels.push(label);
            self.live_pos.push(FREE);
            slot
        };
        self.live_pos[slot as usize] = self.live_list.len() as u32;
        self.live_list.push(slot);
        PointId(slot)
    }

    /// Deletes a live point.
    ///
    /// # Panics
    /// Panics if `id` does not refer to a live point (double deletion is a
    /// logic error in the caller and must not be silently absorbed).
    pub fn remove(&mut self, id: PointId) {
        let slot = id.0 as usize;
        assert!(
            slot < self.live_pos.len() && self.live_pos[slot] != FREE,
            "remove of non-live point {id:?}"
        );
        let pos = self.live_pos[slot] as usize;
        self.live_list.swap_remove(pos);
        if pos < self.live_list.len() {
            let moved = self.live_list[pos];
            self.live_pos[moved as usize] = pos as u32;
        }
        self.live_pos[slot] = FREE;
        self.free.push(id.0);
    }

    /// `true` when `id` refers to a live point.
    #[must_use]
    pub fn contains(&self, id: PointId) -> bool {
        let slot = id.0 as usize;
        slot < self.live_pos.len() && self.live_pos[slot] != FREE
    }

    /// Coordinates of a live point.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    #[inline]
    #[must_use]
    pub fn point(&self, id: PointId) -> &[f64] {
        assert!(self.contains(id), "access to non-live point {id:?}");
        let s = id.index();
        &self.coords[s * self.dim..(s + 1) * self.dim]
    }

    /// Ground-truth label of a live point (`None` = noise).
    ///
    /// # Panics
    /// Panics if `id` is not live.
    #[must_use]
    pub fn label(&self, id: PointId) -> Label {
        assert!(self.contains(id), "access to non-live point {id:?}");
        match self.labels[id.index()] {
            NOISE_SENTINEL => None,
            l => Some(l),
        }
    }

    /// Iterates over all live points as `(id, coordinates, label)`.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64], Label)> + '_ {
        self.live_list.iter().map(move |&slot| {
            let s = slot as usize;
            let label = match self.labels[s] {
                NOISE_SENTINEL => None,
                l => Some(l),
            };
            (
                PointId(slot),
                &self.coords[s * self.dim..(s + 1) * self.dim],
                label,
            )
        })
    }

    /// Ids of all live points, in internal (arbitrary) order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + '_ {
        self.live_list.iter().map(|&s| PointId(s))
    }

    /// Uniformly samples one live point id, or `None` when empty. O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PointId> {
        if self.live_list.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.live_list.len());
            Some(PointId(self.live_list[i]))
        }
    }

    /// Samples `k` *distinct* live point ids uniformly (partial
    /// Fisher–Yates over a copy of the live list). Returns fewer than `k`
    /// when the store holds fewer points.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<PointId> {
        let n = self.live_list.len();
        let k = k.min(n);
        let mut pool: Vec<u32> = self.live_list.clone();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool.into_iter().map(PointId).collect()
    }

    /// The free slots, in reuse order: the *last* element is the next slot
    /// an insertion recycles. Persisted by snapshots so a restored store
    /// assigns the exact same ids as the original would have.
    #[must_use]
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Reassembles a store from its raw parts (snapshot decoding only; the
    /// caller guarantees internal consistency).
    pub(crate) fn from_raw_parts(
        dim: usize,
        coords: Vec<f64>,
        labels: Vec<u32>,
        live_pos: Vec<u32>,
        live_list: Vec<u32>,
        free: Vec<u32>,
    ) -> Self {
        Self {
            dim,
            coords,
            labels,
            live_pos,
            live_list,
            free,
        }
    }

    /// Applies a batch of updates, returning the ids assigned to the
    /// inserted points (in insertion order).
    ///
    /// Deletions are applied before insertions, matching the maintenance
    /// scheme of the paper (Figure 3) where the affected bubbles are first
    /// decremented and then incremented.
    pub fn apply(&mut self, batch: &Batch) -> Vec<PointId> {
        for &id in &batch.deletes {
            self.remove(id);
        }
        batch
            .inserts
            .iter()
            .map(|(p, label)| self.insert(p, *label))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn insert_and_read_back() {
        let mut s = PointStore::new(2);
        let a = s.insert(&[1.0, 2.0], Some(0));
        let b = s.insert(&[3.0, 4.0], None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(a), &[1.0, 2.0]);
        assert_eq!(s.point(b), &[3.0, 4.0]);
        assert_eq!(s.label(a), Some(0));
        assert_eq!(s.label(b), None);
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut s = PointStore::new(1);
        let a = s.insert(&[1.0], None);
        let _b = s.insert(&[2.0], None);
        s.remove(a);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(a));
        let c = s.insert(&[9.0], Some(3));
        // The freed slot is reused, so the slot space stays dense.
        assert_eq!(c, a);
        assert_eq!(s.slots(), 2);
        assert_eq!(s.point(c), &[9.0]);
        assert_eq!(s.label(c), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn double_remove_panics() {
        let mut s = PointStore::new(1);
        let a = s.insert(&[1.0], None);
        s.remove(a);
        s.remove(a);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_insert_panics() {
        let mut s = PointStore::new(2);
        s.insert(&[1.0], None);
    }

    #[test]
    fn iteration_covers_exactly_live_points() {
        let mut s = PointStore::new(1);
        let ids: Vec<PointId> = (0..10).map(|i| s.insert(&[i as f64], Some(i))).collect();
        s.remove(ids[3]);
        s.remove(ids[7]);
        let mut seen: Vec<u32> = s.iter().map(|(id, _, _)| id.0).collect();
        seen.sort_unstable();
        let mut want: Vec<u32> = ids
            .iter()
            .filter(|id| **id != ids[3] && **id != ids[7])
            .map(|id| id.0)
            .collect();
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn sampling_is_uniform_over_live_points() {
        let mut s = PointStore::new(1);
        let ids: Vec<PointId> = (0..4).map(|i| s.insert(&[i as f64], None)).collect();
        s.remove(ids[1]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        for _ in 0..3000 {
            let id = s.sample(&mut rng).unwrap();
            assert!(s.contains(id));
            counts[id.index()] += 1;
        }
        assert_eq!(counts[1], 0);
        for &slot in &[0usize, 2, 3] {
            // Expected 1000 each; allow generous slack.
            assert!(counts[slot] > 800 && counts[slot] < 1200, "{counts:?}");
        }
    }

    #[test]
    fn sample_distinct_returns_unique_live_ids() {
        let mut s = PointStore::new(1);
        for i in 0..50 {
            s.insert(&[i as f64], None);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let got = s.sample_distinct(20, &mut rng);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "ids must be distinct");
        for id in got {
            assert!(s.contains(id));
        }
    }

    #[test]
    fn sample_distinct_caps_at_population() {
        let mut s = PointStore::new(1);
        s.insert(&[0.0], None);
        s.insert(&[1.0], None);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample_distinct(10, &mut rng).len(), 2);
    }

    #[test]
    fn empty_store_sampling() {
        let s = PointStore::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.sample_distinct(3, &mut rng).is_empty());
    }

    #[test]
    fn apply_batch_deletes_then_inserts() {
        let mut s = PointStore::new(1);
        let a = s.insert(&[1.0], None);
        let b = s.insert(&[2.0], Some(1));
        let batch = Batch {
            deletes: vec![a],
            inserts: vec![(vec![5.0], Some(2)), (vec![6.0], None)],
        };
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let new_ids = s.apply(&batch);
        assert_eq!(new_ids.len(), 2);
        assert_eq!(s.len(), 3);
        // The deleted slot is recycled by the first insertion.
        assert_eq!(new_ids[0], a);
        assert!(s.contains(b));
        assert_eq!(s.point(new_ids[0]), &[5.0]);
        assert_eq!(s.label(new_ids[1]), None);
    }

    #[test]
    fn slots_grow_only_when_free_list_empty() {
        let mut s = PointStore::new(1);
        let ids: Vec<PointId> = (0..5).map(|i| s.insert(&[i as f64], None)).collect();
        assert_eq!(s.slots(), 5);
        for id in &ids {
            s.remove(*id);
        }
        for i in 0..5 {
            s.insert(&[i as f64], None);
        }
        assert_eq!(s.slots(), 5, "all slots reused");
        s.insert(&[99.0], None);
        assert_eq!(s.slots(), 6);
    }
}
