//! Dynamic in-memory point database.
//!
//! The paper's setting (Section 1) is an *incremental database*: a large set
//! of d-dimensional points that an application inserts into and deletes from
//! over time, with the full contents available at any moment — unlike a data
//! stream. This crate is that substrate: a slab-backed point store with
//!
//! * O(1) insertion and deletion with stable [`PointId`]s (slots are reused
//!   via a free list, and the dense slot space lets downstream crates keep
//!   per-point side tables as plain vectors instead of hash maps);
//! * optional ground-truth labels per point (the synthetic scenario
//!   generators attach the generating cluster, which the evaluation crate
//!   uses for F-scores — `None` marks noise);
//! * O(1) uniform random sampling of live points (seed selection for bubble
//!   construction, random deletions in the workload generators);
//! * batch update descriptions ([`Batch`]) shared by the workload generators
//!   and the incremental maintainer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

pub mod layout;
pub mod segment;
pub mod snapshot;
pub mod tier;
pub mod wal;
pub use segment::{
    read_chain, ChainContents, FsSegments, MemSegments, SegmentId, SegmentMedium, SegmentedSink,
    StorageBudget, StorageError,
};
pub use snapshot::SnapshotError;
pub use tier::{
    default_cold_medium, hot_points_from_env, hot_points_from_env_strict, ColdMedium, ColdRewriter,
    FsCold, MemCold, TierCounters, COLD_DIR_ENV, HOT_POINTS_ENV,
};
pub use wal::{DurableSink, FileSink, MemSink, WalError, WalRecord, WalWriter};

use tier::{Tier, FREE_FRAME, NONE_FRAME};

/// Stable identifier of a live point: an index into the store's slot space.
///
/// Ids are only meaningful while the point is live; a deleted slot may be
/// reused by a later insertion. All workloads in this workspace hold ids
/// only for points they know to be live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The slot index, for use with dense per-point side tables.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Ground-truth label of a point: the generating cluster, or `None` for
/// noise. Purely evaluation metadata — no algorithm reads it.
pub type Label = Option<u32>;

const NOISE_SENTINEL: u32 = u32::MAX;

/// A batch of updates: the deletions remove currently-live points, the
/// insertions add new points (ids are assigned at application time).
///
/// The paper inspects the clustering structure after batches in which N % of
/// the points have been deleted and M % inserted; the scenario generators in
/// `idb-synth` emit values of this type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    /// Points to delete; must be live when the batch is applied.
    pub deletes: Vec<PointId>,
    /// Points to insert, as `(coordinates, ground-truth label)`.
    pub inserts: Vec<(Vec<f64>, Label)>,
}

impl Batch {
    /// Total number of operations in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len()
    }

    /// `true` when the batch contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }
}

/// Slab-backed store of d-dimensional points with labels.
///
/// # Examples
/// ```
/// use idb_store::PointStore;
///
/// let mut store = PointStore::new(2);
/// let a = store.insert(&[1.0, 2.0], Some(0));
/// let b = store.insert(&[3.0, 4.0], None); // noise
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.point(a), &[1.0, 2.0]);
///
/// store.remove(a);
/// assert!(!store.contains(a) || store.point(a) != [1.0, 2.0]);
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.label(b), None);
/// ```
/// # Tiered mode
///
/// [`PointStore::enable_tier`] bounds the resident coordinate slab: at
/// most `hot_cap` points stay in memory, the rest live as fixed-stride
/// records on a [`ColdMedium`]. In tiered mode `coords` is
/// *frame*-strided (a compact hot arena) instead of slot-strided, and
/// cold points must be read through [`PointStore::read_point_into`] —
/// [`PointStore::point`] and [`PointStore::iter`] panic on them. See
/// [`tier`] for the determinism and failure contracts.
#[derive(Debug, Clone)]
pub struct PointStore {
    dim: usize,
    /// Untiered: slot-strided payloads. Tiered: frame-strided hot arena.
    coords: Vec<f64>,
    labels: Vec<u32>,
    /// slot -> position in `live_list`, or `u32::MAX` when the slot is free.
    live_pos: Vec<u32>,
    /// Dense list of live slots, for O(1) sampling and fast iteration.
    live_list: Vec<u32>,
    free: Vec<u32>,
    /// Cold-tier state; `None` = classic all-resident store.
    tier: Option<Tier>,
}

const FREE: u32 = u32::MAX;

impl PointStore {
    /// Creates an empty store for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "PointStore requires dim > 0");
        Self {
            dim,
            coords: Vec::new(),
            labels: Vec::new(),
            live_pos: Vec::new(),
            live_list: Vec::new(),
            free: Vec::new(),
            tier: None,
        }
    }

    /// Creates an empty store pre-sized for `capacity` points.
    #[must_use]
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "PointStore requires dim > 0");
        Self {
            dim,
            coords: Vec::with_capacity(capacity * dim),
            labels: Vec::with_capacity(capacity),
            live_pos: Vec::with_capacity(capacity),
            live_list: Vec::with_capacity(capacity),
            free: Vec::new(),
            tier: None,
        }
    }

    /// Dimensionality of the stored points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_list.len()
    }

    /// `true` when no live point exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_list.is_empty()
    }

    /// Total number of slots ever allocated (live + free). Dense per-point
    /// side tables should be sized to this value.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.live_pos.len()
    }

    /// Inserts a point, returning its id. Reuses a free slot when available.
    ///
    /// In tiered mode the new point always lands *hot* (its clock
    /// reference bit set), possibly overshooting the hot budget until the
    /// next [`enforce_hot_budget`](Self::enforce_hot_budget) sweep —
    /// insertion itself stays infallible.
    ///
    /// # Panics
    /// Panics if the point's dimensionality differs from the store's.
    pub fn insert(&mut self, point: &[f64], label: Label) -> PointId {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        let label = label.unwrap_or(NOISE_SENTINEL);
        let slot = if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            if self.tier.is_some() {
                self.place_hot(s, point);
            } else {
                self.coords[s * self.dim..(s + 1) * self.dim].copy_from_slice(point);
            }
            self.labels[s] = label;
            slot
        } else {
            let slot = self.live_pos.len() as u32;
            if let Some(tier) = &mut self.tier {
                tier.frame_of.push(NONE_FRAME);
            } else {
                self.coords.extend_from_slice(point);
            }
            self.labels.push(label);
            self.live_pos.push(FREE);
            if self.tier.is_some() {
                self.place_hot(slot as usize, point);
            }
            slot
        };
        self.live_pos[slot as usize] = self.live_list.len() as u32;
        self.live_list.push(slot);
        PointId(slot)
    }

    /// Puts `point` into a hot frame bound to `slot` (tiered mode only).
    fn place_hot(&mut self, slot: usize, point: &[f64]) {
        let dim = self.dim;
        let tier = self.tier.as_mut().expect("tiered mode");
        debug_assert_eq!(tier.frame_of[slot], NONE_FRAME, "slot already hot");
        let f = if let Some(f) = tier.free_frames.pop() {
            f as usize
        } else {
            let f = tier.frame_slot.len();
            tier.frame_slot.push(FREE_FRAME);
            tier.ref_bit.push(false);
            self.coords.resize((f + 1) * dim, 0.0);
            f
        };
        self.coords[f * dim..(f + 1) * dim].copy_from_slice(point);
        tier.frame_slot[f] = slot as u32;
        tier.frame_of[slot] = f as u32;
        tier.ref_bit[f] = true;
    }

    /// Deletes a live point.
    ///
    /// # Panics
    /// Panics if `id` does not refer to a live point (double deletion is a
    /// logic error in the caller and must not be silently absorbed).
    pub fn remove(&mut self, id: PointId) {
        let slot = id.0 as usize;
        assert!(
            slot < self.live_pos.len() && self.live_pos[slot] != FREE,
            "remove of non-live point {id:?}"
        );
        let pos = self.live_pos[slot] as usize;
        self.live_list.swap_remove(pos);
        if pos < self.live_list.len() {
            let moved = self.live_list[pos];
            self.live_pos[moved as usize] = pos as u32;
        }
        self.live_pos[slot] = FREE;
        self.free.push(id.0);
        if let Some(tier) = &mut self.tier {
            // A hot frame is vacated immediately; a cold record simply
            // becomes garbage until the slot is reused (the reusing
            // insert lands hot and a later eviction overwrites it).
            let f = tier.frame_of[slot];
            if f != NONE_FRAME {
                tier.frame_of[slot] = NONE_FRAME;
                tier.frame_slot[f as usize] = FREE_FRAME;
                tier.ref_bit[f as usize] = false;
                tier.free_frames.push(f);
            }
        }
    }

    /// `true` when `id` refers to a live point.
    #[must_use]
    pub fn contains(&self, id: PointId) -> bool {
        let slot = id.0 as usize;
        slot < self.live_pos.len() && self.live_pos[slot] != FREE
    }

    /// Coordinates of a live, *resident* point.
    ///
    /// # Panics
    /// Panics if `id` is not live, or (in tiered mode) if the point is
    /// cold — demand-fetch paths must use
    /// [`read_point_into`](Self::read_point_into) instead.
    #[inline]
    #[must_use]
    pub fn point(&self, id: PointId) -> &[f64] {
        assert!(self.contains(id), "access to non-live point {id:?}");
        self.coords_of(id.index())
    }

    /// Resident coordinates of live slot `s` (tier-aware addressing).
    #[inline]
    fn coords_of(&self, s: usize) -> &[f64] {
        let f = match &self.tier {
            None => s,
            Some(tier) => {
                let f = tier.frame_of[s];
                assert!(
                    f != NONE_FRAME,
                    "point in slot {s} is cold; use read_point_into"
                );
                f as usize
            }
        };
        &self.coords[f * self.dim..(f + 1) * self.dim]
    }

    /// Ground-truth label of a live point (`None` = noise).
    ///
    /// # Panics
    /// Panics if `id` is not live.
    #[must_use]
    pub fn label(&self, id: PointId) -> Label {
        assert!(self.contains(id), "access to non-live point {id:?}");
        match self.labels[id.index()] {
            NOISE_SENTINEL => None,
            l => Some(l),
        }
    }

    /// Iterates over all live points as `(id, coordinates, label)`.
    ///
    /// # Panics
    /// In tiered mode the coordinate slice is computed per item and
    /// panics on a cold point (even if the caller ignores it) — id-only
    /// walks must use [`ids`](Self::ids), payload walks
    /// [`read_point_into`](Self::read_point_into).
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64], Label)> + '_ {
        self.live_list.iter().map(move |&slot| {
            let s = slot as usize;
            let label = match self.labels[s] {
                NOISE_SENTINEL => None,
                l => Some(l),
            };
            (PointId(slot), self.coords_of(s), label)
        })
    }

    /// Ids of all live points, in internal (arbitrary) order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + '_ {
        self.live_list.iter().map(|&s| PointId(s))
    }

    /// Uniformly samples one live point id, or `None` when empty. O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PointId> {
        if self.live_list.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.live_list.len());
            Some(PointId(self.live_list[i]))
        }
    }

    /// Samples `k` *distinct* live point ids uniformly (partial
    /// Fisher–Yates over a copy of the live list). Returns fewer than `k`
    /// when the store holds fewer points.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<PointId> {
        let n = self.live_list.len();
        let k = k.min(n);
        let mut pool: Vec<u32> = self.live_list.clone();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool.into_iter().map(PointId).collect()
    }

    /// The free slots, in reuse order: the *last* element is the next slot
    /// an insertion recycles. Persisted by snapshots so a restored store
    /// assigns the exact same ids as the original would have.
    #[must_use]
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Reassembles a store from its raw parts (snapshot decoding only; the
    /// caller guarantees internal consistency).
    pub(crate) fn from_raw_parts(
        dim: usize,
        coords: Vec<f64>,
        labels: Vec<u32>,
        live_pos: Vec<u32>,
        live_list: Vec<u32>,
        free: Vec<u32>,
    ) -> Self {
        Self {
            dim,
            coords,
            labels,
            live_pos,
            live_list,
            free,
            tier: None,
        }
    }

    /// Applies a batch of updates, returning the ids assigned to the
    /// inserted points (in insertion order).
    ///
    /// Deletions are applied before insertions, matching the maintenance
    /// scheme of the paper (Figure 3) where the affected bubbles are first
    /// decremented and then incremented.
    pub fn apply(&mut self, batch: &Batch) -> Vec<PointId> {
        for &id in &batch.deletes {
            self.remove(id);
        }
        batch
            .inserts
            .iter()
            .map(|(p, label)| self.insert(p, *label))
            .collect()
    }

    // ------------------------------------------------------------------
    // Cold tier (see the `tier` module for the contracts)
    // ------------------------------------------------------------------

    /// Enables the cold tier: spills **all** current payloads to `cold`
    /// (one atomic rewrite, dead slots padded to keep the stride) and
    /// caps the resident set at `hot_cap` points from here on. The store
    /// starts all-cold; subsequent inserts populate the hot set.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the spill fails; the store is left
    /// untiered and unchanged.
    ///
    /// # Panics
    /// Panics if the tier is already enabled or `hot_cap == 0`.
    pub fn enable_tier(
        &mut self,
        cold: Box<dyn ColdMedium>,
        hot_cap: usize,
    ) -> Result<(), StorageError> {
        assert!(self.tier.is_none(), "cold tier already enabled");
        assert!(hot_cap >= 1, "hot_cap must be at least 1");
        let dim = self.dim;
        let slots = self.live_pos.len();
        {
            let mut rw = cold.start_rewrite()?;
            let zero = vec![0u8; dim * 8];
            let mut buf = Vec::with_capacity(dim * 8);
            for s in 0..slots {
                if self.live_pos[s] == FREE {
                    rw.append(&zero)?;
                } else {
                    buf.clear();
                    for x in &self.coords[s * dim..(s + 1) * dim] {
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                    rw.append(&buf)?;
                }
            }
            rw.commit()?;
        }
        self.coords = Vec::new();
        self.tier = Some(Tier {
            cold,
            hot_cap,
            frame_of: vec![NONE_FRAME; slots],
            frame_slot: Vec::new(),
            ref_bit: Vec::new(),
            free_frames: Vec::new(),
            hand: 0,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            cold_reads: std::sync::atomic::AtomicU64::new(0),
            cold_bytes: std::sync::atomic::AtomicU64::new(0),
            evictions: 0,
        });
        Ok(())
    }

    /// `true` when the cold tier is enabled.
    #[must_use]
    pub fn tiered(&self) -> bool {
        self.tier.is_some()
    }

    /// The hot-point budget, when tiered.
    #[must_use]
    pub fn hot_cap(&self) -> Option<usize> {
        self.tier.as_ref().map(|t| t.hot_cap)
    }

    /// Live points currently resident in memory. Untiered stores hold
    /// everything; tiered stores hold at most the hot budget (plus any
    /// not-yet-swept overshoot).
    #[must_use]
    pub fn resident_points(&self) -> usize {
        match &self.tier {
            None => self.len(),
            Some(t) => t.live_frames(),
        }
    }

    /// Bytes held by the resident coordinate slab (the quantity the hot
    /// budget bounds).
    #[must_use]
    pub fn resident_coord_bytes(&self) -> usize {
        self.coords.len() * 8
    }

    /// `true` when every live point is resident (trivially so untiered).
    #[must_use]
    pub fn all_resident(&self) -> bool {
        match &self.tier {
            None => true,
            Some(t) => t.live_frames() == self.len(),
        }
    }

    /// Snapshot of tier traffic counters, when tiered.
    #[must_use]
    pub fn tier_counters(&self) -> Option<TierCounters> {
        self.tier.as_ref().map(Tier::counters)
    }

    /// Reads a live point's coordinates, hot or cold, appending `dim`
    /// values to `out`. This is the demand-fetch path: cold reads copy
    /// the record out **without promoting it** (reads never perturb the
    /// eviction state, which keeps tiering bit-transparent).
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the cold medium fails; `out` is
    /// left as passed in.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn read_point_into(&self, id: PointId, out: &mut Vec<f64>) -> Result<(), StorageError> {
        assert!(self.contains(id), "access to non-live point {id:?}");
        let s = id.index();
        let dim = self.dim;
        use std::sync::atomic::Ordering::Relaxed;
        let Some(tier) = &self.tier else {
            out.extend_from_slice(&self.coords[s * dim..(s + 1) * dim]);
            return Ok(());
        };
        let f = tier.frame_of[s];
        if f != NONE_FRAME {
            tier.hits.fetch_add(1, Relaxed);
            let f = f as usize;
            out.extend_from_slice(&self.coords[f * dim..(f + 1) * dim]);
            return Ok(());
        }
        let mut bytes = vec![0u8; dim * 8];
        tier.cold.read_at((s * dim * 8) as u64, &mut bytes)?;
        tier.misses.fetch_add(1, Relaxed);
        tier.cold_reads.fetch_add(1, Relaxed);
        tier.cold_bytes.fetch_add((dim * 8) as u64, Relaxed);
        out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        Ok(())
    }

    /// Verifies that every id in `ids` is readable (hot or cold). The
    /// durable path calls this *before* appending a batch to the WAL so
    /// a cold outage rejects the batch typed instead of failing halfway.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] on the first unreadable point.
    ///
    /// # Panics
    /// Panics if any id is not live.
    pub fn prefetch(&self, ids: &[PointId]) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(self.dim);
        for &id in ids {
            buf.clear();
            self.read_point_into(id, &mut buf)?;
        }
        Ok(())
    }

    /// Clock-evicts hot points down to the budget, writing each victim's
    /// record to the cold medium, then returns how many were evicted.
    /// Called at batch boundaries; a no-op untiered or under budget.
    ///
    /// The sweep is deterministic: the hand and reference bits depend
    /// only on the sequence of inserts/removes/sweeps, never on reads.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when a victim's cold write fails. The
    /// slab stays consistent (the victim simply stays hot) and the
    /// resident set may exceed the budget until a later sweep succeeds.
    pub fn enforce_hot_budget(&mut self) -> Result<u64, StorageError> {
        let dim = self.dim;
        let Some(tier) = &mut self.tier else {
            return Ok(0);
        };
        let mut evicted = 0u64;
        let mut buf = Vec::with_capacity(dim * 8);
        while tier.live_frames() > tier.hot_cap {
            let nframes = tier.frame_slot.len();
            loop {
                let f = tier.hand % nframes;
                tier.hand = (f + 1) % nframes;
                if tier.frame_slot[f] == FREE_FRAME {
                    continue;
                }
                if tier.ref_bit[f] {
                    tier.ref_bit[f] = false;
                    continue;
                }
                let slot = tier.frame_slot[f] as usize;
                buf.clear();
                for x in &self.coords[f * dim..(f + 1) * dim] {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
                tier.cold.write_at((slot * dim * 8) as u64, &buf)?;
                tier.frame_of[slot] = NONE_FRAME;
                tier.frame_slot[f] = FREE_FRAME;
                tier.free_frames.push(f as u32);
                tier.evictions += 1;
                evicted += 1;
                break;
            }
        }
        // Give memory back: drop trailing vacant frames so the arena
        // physically shrinks to the high-water mark of the hot set.
        while tier.frame_slot.last() == Some(&FREE_FRAME) {
            tier.frame_slot.pop();
            tier.ref_bit.pop();
        }
        self.coords.truncate(tier.frame_slot.len() * dim);
        let nframes = tier.frame_slot.len() as u32;
        tier.free_frames.retain(|&f| f < nframes);
        if tier.hand >= tier.frame_slot.len() {
            tier.hand = 0;
        }
        Ok(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn insert_and_read_back() {
        let mut s = PointStore::new(2);
        let a = s.insert(&[1.0, 2.0], Some(0));
        let b = s.insert(&[3.0, 4.0], None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(a), &[1.0, 2.0]);
        assert_eq!(s.point(b), &[3.0, 4.0]);
        assert_eq!(s.label(a), Some(0));
        assert_eq!(s.label(b), None);
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut s = PointStore::new(1);
        let a = s.insert(&[1.0], None);
        let _b = s.insert(&[2.0], None);
        s.remove(a);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(a));
        let c = s.insert(&[9.0], Some(3));
        // The freed slot is reused, so the slot space stays dense.
        assert_eq!(c, a);
        assert_eq!(s.slots(), 2);
        assert_eq!(s.point(c), &[9.0]);
        assert_eq!(s.label(c), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn double_remove_panics() {
        let mut s = PointStore::new(1);
        let a = s.insert(&[1.0], None);
        s.remove(a);
        s.remove(a);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_insert_panics() {
        let mut s = PointStore::new(2);
        s.insert(&[1.0], None);
    }

    #[test]
    fn iteration_covers_exactly_live_points() {
        let mut s = PointStore::new(1);
        let ids: Vec<PointId> = (0..10).map(|i| s.insert(&[i as f64], Some(i))).collect();
        s.remove(ids[3]);
        s.remove(ids[7]);
        let mut seen: Vec<u32> = s.iter().map(|(id, _, _)| id.0).collect();
        seen.sort_unstable();
        let mut want: Vec<u32> = ids
            .iter()
            .filter(|id| **id != ids[3] && **id != ids[7])
            .map(|id| id.0)
            .collect();
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn sampling_is_uniform_over_live_points() {
        let mut s = PointStore::new(1);
        let ids: Vec<PointId> = (0..4).map(|i| s.insert(&[i as f64], None)).collect();
        s.remove(ids[1]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        for _ in 0..3000 {
            let id = s.sample(&mut rng).unwrap();
            assert!(s.contains(id));
            counts[id.index()] += 1;
        }
        assert_eq!(counts[1], 0);
        for &slot in &[0usize, 2, 3] {
            // Expected 1000 each; allow generous slack.
            assert!(counts[slot] > 800 && counts[slot] < 1200, "{counts:?}");
        }
    }

    #[test]
    fn sample_distinct_returns_unique_live_ids() {
        let mut s = PointStore::new(1);
        for i in 0..50 {
            s.insert(&[i as f64], None);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let got = s.sample_distinct(20, &mut rng);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "ids must be distinct");
        for id in got {
            assert!(s.contains(id));
        }
    }

    #[test]
    fn sample_distinct_caps_at_population() {
        let mut s = PointStore::new(1);
        s.insert(&[0.0], None);
        s.insert(&[1.0], None);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample_distinct(10, &mut rng).len(), 2);
    }

    #[test]
    fn empty_store_sampling() {
        let s = PointStore::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.sample_distinct(3, &mut rng).is_empty());
    }

    #[test]
    fn apply_batch_deletes_then_inserts() {
        let mut s = PointStore::new(1);
        let a = s.insert(&[1.0], None);
        let b = s.insert(&[2.0], Some(1));
        let batch = Batch {
            deletes: vec![a],
            inserts: vec![(vec![5.0], Some(2)), (vec![6.0], None)],
        };
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let new_ids = s.apply(&batch);
        assert_eq!(new_ids.len(), 2);
        assert_eq!(s.len(), 3);
        // The deleted slot is recycled by the first insertion.
        assert_eq!(new_ids[0], a);
        assert!(s.contains(b));
        assert_eq!(s.point(new_ids[0]), &[5.0]);
        assert_eq!(s.label(new_ids[1]), None);
    }

    #[test]
    fn tiered_store_round_trips_hot_and_cold() {
        let mut s = PointStore::new(2);
        let ids: Vec<PointId> = (0..10)
            .map(|i| s.insert(&[f64::from(i), f64::from(i) + 0.5], Some(i)))
            .collect();
        s.enable_tier(Box::new(MemCold::new()), 3).unwrap();
        assert!(s.tiered());
        assert_eq!(s.hot_cap(), Some(3));
        assert_eq!(s.resident_points(), 0, "enable_tier starts all-cold");
        assert!(!s.all_resident());
        let mut buf = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            buf.clear();
            s.read_point_into(*id, &mut buf).unwrap();
            assert_eq!(buf, vec![i as f64, i as f64 + 0.5]);
            assert_eq!(s.label(*id), Some(i as u32), "labels stay resident");
        }
        let c = s.tier_counters().unwrap();
        assert_eq!(c.misses, 10);
        assert_eq!(c.cold_reads, 10);
        assert_eq!(c.cold_bytes, 10 * 16);
        assert_eq!(c.hits, 0);
    }

    #[test]
    fn eviction_enforces_budget_and_preserves_payloads() {
        let mut s = PointStore::new(1);
        s.enable_tier(Box::new(MemCold::new()), 4).unwrap();
        let ids: Vec<PointId> = (0..32).map(|i| s.insert(&[f64::from(i)], None)).collect();
        assert_eq!(s.resident_points(), 32, "inserts land hot, over budget");
        let evicted = s.enforce_hot_budget().unwrap();
        assert_eq!(evicted, 28);
        assert_eq!(s.resident_points(), 4);
        // Every payload still reads back exactly, hot or cold.
        let mut buf = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            buf.clear();
            s.read_point_into(*id, &mut buf).unwrap();
            assert_eq!(buf, vec![i as f64]);
        }
        let c = s.tier_counters().unwrap();
        assert_eq!(c.evictions, 28);
        assert_eq!(c.hits + c.misses, 32);
        // The arena is bounded by the high-water mark, not the stream.
        assert!(s.resident_coord_bytes() <= 32 * 8);
        // Another big wave reuses vacated frames instead of growing.
        for i in 0..20 {
            s.insert(&[f64::from(100 + i)], None);
        }
        assert!(s.resident_coord_bytes() <= 32 * 8, "frame reuse, no growth");
        s.enforce_hot_budget().unwrap();
        assert_eq!(s.resident_points(), 4);
    }

    #[test]
    fn tiered_eviction_is_deterministic_across_runs() {
        let run = || {
            let mut s = PointStore::new(2);
            s.enable_tier(Box::new(MemCold::new()), 5).unwrap();
            let mut ids = Vec::new();
            for round in 0..6 {
                for i in 0..8 {
                    ids.push(s.insert(&[f64::from(round * 8 + i), 0.5], None));
                }
                if round % 2 == 1 {
                    // Interleave deletes (and demand reads, which must NOT
                    // perturb eviction) with budget sweeps.
                    let mut buf = Vec::new();
                    s.read_point_into(ids[round as usize], &mut buf).unwrap();
                    let victim = ids.remove(3);
                    s.remove(victim);
                }
                s.enforce_hot_budget().unwrap();
            }
            let snap: Vec<(PointId, Vec<f64>)> = {
                let mut out = Vec::new();
                let mut buf = Vec::new();
                let mut live: Vec<PointId> = s.ids().collect();
                live.sort_unstable();
                for id in live {
                    buf.clear();
                    s.read_point_into(id, &mut buf).unwrap();
                    out.push((id, buf.clone()));
                }
                out
            };
            (snap, s.resident_points(), s.tier_counters().unwrap())
        };
        assert_eq!(run(), run(), "same op stream, same tier state");
    }

    #[test]
    fn cold_point_access_through_point_panics() {
        let mut s = PointStore::new(1);
        let id = s.insert(&[1.0], None);
        s.enable_tier(Box::new(MemCold::new()), 1).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.point(id)));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("cold"), "{msg}");
    }

    #[test]
    fn slots_grow_only_when_free_list_empty() {
        let mut s = PointStore::new(1);
        let ids: Vec<PointId> = (0..5).map(|i| s.insert(&[i as f64], None)).collect();
        assert_eq!(s.slots(), 5);
        for id in &ids {
            s.remove(*id);
        }
        for i in 0..5 {
            s.insert(&[i as f64], None);
        }
        assert_eq!(s.slots(), 5, "all slots reused");
        s.insert(&[99.0], None);
        assert_eq!(s.slots(), 6);
    }
}
