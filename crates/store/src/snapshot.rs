//! Binary snapshots of a point store.
//!
//! A long-running deployment checkpoints its database and its
//! summarization together (see `idb-core`'s snapshot module) so a restart
//! resumes without a full rebuild. The format is a small hand-rolled
//! little-endian codec — versioned, with explicit validation on read —
//! because the only structures crossing the boundary are flat arrays and
//! the workspace deliberately avoids a serialization dependency.
//!
//! Crucially, snapshots preserve **slot numbers**: a restored store hands
//! out the same [`PointId`](crate::PointId)s, so side structures (bubble
//! memberships) survive the round trip. The live-list order is preserved
//! too, keeping post-restore sampling bit-identical.

use crate::PointStore;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"IDBP";
const LABEL_NOISE: u32 = u32::MAX;

/// Current snapshot format version: a CRC-framed payload (see
/// [`write_frame`]). Version-1 snapshots (unchecksummed streams) are still
/// readable.
pub const FRAME_VERSION: u32 = 2;
const LEGACY_VERSION: u32 = 1;

/// Payloads larger than this are rejected before allocation. Generous —
/// a billion 20-dimensional points fit — but bounds what a hand-crafted
/// header can make the reader allocate.
const MAX_PAYLOAD: u64 = 1 << 40;

/// Snapshot decoding failure.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic, version, or structurally impossible contents.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot i/o error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Little-endian codec helpers, shared with `idb-core`'s summarization
/// snapshots so both formats stay consistent.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// See [`write_u32`].
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// See [`write_u32`].
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// See [`write_u32`].
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// See [`write_u32`].
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// See [`write_u32`].
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

/// Reads a `u64`, or `None` at a clean end of stream — used for optional
/// trailing sections that legacy snapshot bodies lack entirely.
fn try_read_u64<R: Read>(r: &mut R) -> Result<Option<u64>, SnapshotError> {
    let mut buf = [0u8; 8];
    let mut filled = 0;
    while filled < 8 {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    match filled {
        0 => Ok(None),
        8 => Ok(Some(u64::from_le_bytes(buf))),
        n => Err(SnapshotError::Corrupt(format!(
            "truncated trailing section ({n} of 8 bytes)"
        ))),
    }
}

/// Table for the IEEE CRC-32 (reflected polynomial `0xEDB88320`), built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `data` (the zlib/PNG polynomial). Hand-rolled — the
/// workspace carries no checksum dependency.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Writes a version-2 checksummed snapshot frame:
///
/// ```text
/// magic (4) | version u32 | payload_len u64 | payload_crc u32 |
/// header_crc u32 | payload
/// ```
///
/// `header_crc` covers the first 20 bytes, so a corrupted length cannot
/// drive the reader into a bogus allocation; `payload_crc` covers the
/// payload, so any bit damage to the body is detected before parsing.
/// Shared between the store snapshot and `idb-core`'s bubble snapshot.
pub fn write_frame<W: Write>(w: &mut W, magic: &[u8; 4], payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 20];
    header[..4].copy_from_slice(magic);
    header[4..8].copy_from_slice(&FRAME_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[16..20].copy_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&header);
    w.write_all(&header)?;
    w.write_all(&header_crc.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads a snapshot frame header written by [`write_frame`].
///
/// Returns `Ok(Some(payload))` for a verified version-2 frame, or
/// `Ok(None)` for a legacy version-1 snapshot — the caller then parses the
/// rest of `r` as the unchecksummed version-1 stream.
///
/// # Errors
/// [`SnapshotError::Corrupt`] on a wrong magic, an unsupported version, an
/// implausible payload length, or a checksum mismatch in either the header
/// or the payload; [`SnapshotError::Io`] when the stream ends early.
pub fn read_frame<R: Read>(r: &mut R, magic: &[u8; 4]) -> Result<Option<Vec<u8>>, SnapshotError> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    if &head[..4] != magic {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    match version {
        LEGACY_VERSION => Ok(None),
        FRAME_VERSION => {
            let mut rest = [0u8; 16];
            r.read_exact(&mut rest)?;
            let mut header = [0u8; 20];
            header[..8].copy_from_slice(&head);
            header[8..].copy_from_slice(&rest[..12]);
            let header_crc = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
            if crc32(&header) != header_crc {
                return Err(SnapshotError::Corrupt("header checksum mismatch".into()));
            }
            let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
            if payload_len > MAX_PAYLOAD {
                return Err(SnapshotError::Corrupt(format!(
                    "implausible payload length {payload_len}"
                )));
            }
            let payload_crc = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
            // Never allocate more than the input can actually supply: grow
            // while reading (capped pre-allocation) instead of trusting the
            // declared length, so a hostile prefix on a short stream cannot
            // drive the reader out of memory.
            let mut payload = Vec::with_capacity(
                usize::try_from(payload_len.min(1 << 20)).expect("capped length fits usize"),
            );
            let got = r.by_ref().take(payload_len).read_to_end(&mut payload)?;
            if got as u64 != payload_len {
                return Err(SnapshotError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("payload truncated: {got} of {payload_len} bytes"),
                )));
            }
            if crc32(&payload) != payload_crc {
                return Err(SnapshotError::Corrupt("payload checksum mismatch".into()));
            }
            Ok(Some(payload))
        }
        other => Err(SnapshotError::Corrupt(format!(
            "unsupported version {other}"
        ))),
    }
}

impl PointStore {
    /// Writes a binary snapshot of the full store state (live points with
    /// their slots and labels, in live-list order), wrapped in the
    /// checksummed version-2 frame of [`write_frame`].
    ///
    /// # Errors
    /// Whatever the underlying writer reports.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_body(&mut payload)?;
        write_frame(w, MAGIC, &payload)
    }

    fn write_body<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_u64(w, self.dim() as u64)?;
        write_u64(w, self.slots() as u64)?;
        write_u64(w, self.len() as u64)?;
        // Demand-fetch each payload so tiered stores snapshot without
        // materializing the cold set; the bytes are identical to the
        // classic all-resident encoding. A cold-read failure surfaces as
        // an I/O error and feeds the caller's checkpoint failure ladder.
        let mut p = Vec::with_capacity(self.dim());
        for id in self.ids() {
            write_u32(w, id.0)?;
            p.clear();
            self.read_point_into(id, &mut p).map_err(io::Error::other)?;
            for &x in &p {
                write_f64(w, x)?;
            }
            write_u32(w, self.label(id).unwrap_or(LABEL_NOISE))?;
        }
        // The free list in reuse order: slot ids are only stable across a
        // restart if a restored store recycles slots in the exact order the
        // original would have, so the stack is persisted verbatim. (Legacy
        // snapshots lack this section and rebuild it in descending order.)
        write_u64(w, self.free_slots().len() as u64)?;
        for &slot in self.free_slots() {
            write_u32(w, slot)?;
        }
        Ok(())
    }

    /// Restores a store from a snapshot. Slot numbers, labels and
    /// live-list order are identical to the snapshotted store.
    ///
    /// Version-2 snapshots are checksum-verified (header and payload)
    /// before any parsing; legacy version-1 snapshots are still accepted
    /// and parsed with structural validation only.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] on checksum or structural damage;
    /// [`SnapshotError::Io`] when the stream ends early.
    pub fn read_snapshot<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        match read_frame(r, MAGIC)? {
            Some(payload) => {
                let remaining = payload.len() as u64;
                let mut cur: &[u8] = &payload;
                let store = Self::read_body(&mut cur, Some(remaining))?;
                if !cur.is_empty() {
                    return Err(SnapshotError::Corrupt(format!(
                        "{} trailing bytes after payload",
                        cur.len()
                    )));
                }
                Ok(store)
            }
            None => Self::read_body(r, None),
        }
    }

    /// Decodes the snapshot body. When the caller knows how many input
    /// bytes back the header's claims (`remaining`, available for framed
    /// snapshots), every allocation is capped against that budget *before*
    /// it happens, so a hostile header cannot force an out-of-memory
    /// condition — it fails with a typed error instead.
    fn read_body<R: Read>(r: &mut R, remaining: Option<u64>) -> Result<Self, SnapshotError> {
        let dim = read_u64(r)? as usize;
        if dim == 0 || dim > 1 << 20 {
            return Err(SnapshotError::Corrupt(format!("implausible dim {dim}")));
        }
        let slots = read_u64(r)? as usize;
        let len = read_u64(r)? as usize;
        if len > slots || slots > u32::MAX as usize {
            return Err(SnapshotError::Corrupt(format!(
                "len {len} exceeds slots {slots}"
            )));
        }
        if let Some(rem) = remaining {
            // Each live entry occupies 8 + 8·dim input bytes, so `len`
            // (and with it `dim`) is bounded by the input.
            let live_cost = (len as u64).saturating_mul(8 + 8 * dim as u64);
            if live_cost.saturating_add(24) > rem {
                return Err(SnapshotError::Corrupt(format!(
                    "live section claims {live_cost} bytes but only {rem} are framed"
                )));
            }
            // Free slots cost 4 input bytes each in the free-list section;
            // grant legacy bodies (which lack the section) the same
            // headroom so a hostile `slots` cannot inflate the allocation.
            let holes = (slots - len) as u64;
            if holes > rem / 4 + 1 {
                return Err(SnapshotError::Corrupt(format!(
                    "{holes} free slots claimed but only {rem} bytes framed"
                )));
            }
        }
        // Cap the big allocation itself: framed snapshots may allocate at
        // most a fixed multiple of their input (every realistic store is
        // far below this; a hostile header fails typed instead of OOMing),
        // and the unframed legacy path — whose input size is unknowable —
        // gets a generous absolute ceiling.
        let coord_count = slots.checked_mul(dim).ok_or_else(|| {
            SnapshotError::Corrupt(format!("coordinate count {slots}×{dim} overflows"))
        })?;
        let cap = match remaining {
            Some(rem) => {
                usize::try_from(rem.saturating_mul(8).saturating_add(1 << 16)).unwrap_or(usize::MAX)
            }
            None => 1 << 28,
        };
        if coord_count > cap {
            return Err(SnapshotError::Corrupt(format!(
                "{coord_count} coordinates claimed, beyond the allocation cap {cap}"
            )));
        }

        let mut coords = vec![0.0f64; coord_count];
        let mut labels = vec![LABEL_NOISE; slots];
        let mut live_pos = vec![u32::MAX; slots];
        let mut live_list = Vec::with_capacity(len);
        for pos in 0..len {
            let slot = read_u32(r)? as usize;
            if slot >= slots {
                return Err(SnapshotError::Corrupt(format!("slot {slot} out of range")));
            }
            if live_pos[slot] != u32::MAX {
                return Err(SnapshotError::Corrupt(format!("duplicate slot {slot}")));
            }
            for x in coords[slot * dim..(slot + 1) * dim].iter_mut() {
                *x = read_f64(r)?;
            }
            labels[slot] = read_u32(r)?;
            live_pos[slot] = pos as u32;
            live_list.push(slot as u32);
        }
        // Free-slot section (absent in legacy snapshots): the reuse stack
        // in stack order, so a restored store hands out the same ids the
        // original would have. Legacy snapshots rebuild it in descending
        // slot order instead.
        let free = match try_read_u64(r)? {
            Some(count) => {
                let count = usize::try_from(count)
                    .map_err(|_| SnapshotError::Corrupt(format!("free count {count} overflows")))?;
                if count != slots - len {
                    return Err(SnapshotError::Corrupt(format!(
                        "free count {count} != slots {slots} - live {len}"
                    )));
                }
                let mut free = Vec::with_capacity(count);
                let mut seen = vec![false; slots];
                for _ in 0..count {
                    let slot = read_u32(r)? as usize;
                    if slot >= slots {
                        return Err(SnapshotError::Corrupt(format!(
                            "free slot {slot} out of range"
                        )));
                    }
                    if live_pos[slot] != u32::MAX {
                        return Err(SnapshotError::Corrupt(format!("free slot {slot} is live")));
                    }
                    if seen[slot] {
                        return Err(SnapshotError::Corrupt(format!(
                            "duplicate free slot {slot}"
                        )));
                    }
                    seen[slot] = true;
                    free.push(slot as u32);
                }
                free
            }
            None => {
                let mut free: Vec<u32> = (0..slots as u32)
                    .filter(|&s| live_pos[s as usize] == u32::MAX)
                    .collect();
                free.reverse();
                free
            }
        };

        Ok(Self::from_raw_parts(
            dim, coords, labels, live_pos, live_list, free,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn churned_store() -> PointStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = PointStore::new(3);
        let mut ids = Vec::new();
        for i in 0..200 {
            let label = if i % 7 == 0 { None } else { Some(i % 4) };
            ids.push(s.insert(&[i as f64, -(i as f64), rng.gen()], label));
        }
        // Punch holes so the slot space has a free list.
        for i in (0..200).step_by(3) {
            s.remove(ids[i]);
        }
        for i in 0..30 {
            s.insert(&[1000.0 + i as f64, 0.0, 0.0], Some(9));
        }
        s
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let restored = PointStore::read_snapshot(&mut buf.as_slice()).unwrap();

        assert_eq!(restored.len(), store.len());
        assert_eq!(restored.dim(), store.dim());
        assert_eq!(restored.slots(), store.slots());
        let a: Vec<_> = store.iter().map(|(id, p, l)| (id, p.to_vec(), l)).collect();
        let b: Vec<_> = restored
            .iter()
            .map(|(id, p, l)| (id, p.to_vec(), l))
            .collect();
        assert_eq!(a, b, "live-list order and contents identical");
        assert_eq!(
            restored.free_slots(),
            store.free_slots(),
            "free-list reuse order identical"
        );
    }

    #[test]
    fn restored_store_reuses_slots_in_the_original_order() {
        let mut store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let mut restored = PointStore::read_snapshot(&mut buf.as_slice()).unwrap();
        // The same future insertions must receive the same ids in both
        // stores — this is what makes WAL replay id-exact after recovery.
        for i in 0..60 {
            let p = [i as f64, 0.0, 0.0];
            assert_eq!(store.insert(&p, None), restored.insert(&p, None), "at {i}");
        }
    }

    #[test]
    fn restored_store_continues_operating() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let mut restored = PointStore::read_snapshot(&mut buf.as_slice()).unwrap();
        // Ids from the original remain valid in the restored store.
        let some_id = store.ids().next().unwrap();
        assert_eq!(restored.point(some_id), store.point(some_id));
        // Inserts and removes keep working (free list intact).
        let before_slots = restored.slots();
        let id = restored.insert(&[1.0, 2.0, 3.0], None);
        assert!(restored.slots() <= before_slots.max(id.index() + 1));
        restored.remove(id);
    }

    /// Recomputes both checksums of a v2 frame after its payload was
    /// mutated, so structural validation (not the CRC) is exercised.
    fn reframe(buf: &mut [u8]) {
        let payload_crc = crc32(&buf[24..]);
        buf[16..20].copy_from_slice(&payload_crc.to_le_bytes());
        let header_crc = crc32(&buf[..20]);
        buf[20..24].copy_from_slice(&header_crc.to_le_bytes());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = PointStore::read_snapshot(&mut &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        buf[4] = 99; // version byte
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_snapshot_is_an_io_error() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }

    #[test]
    fn duplicate_slot_is_rejected() {
        let mut s = PointStore::new(1);
        s.insert(&[1.0], None);
        s.insert(&[2.0], None);
        let mut buf = Vec::new();
        s.write_snapshot(&mut buf).unwrap();
        // Point the second live entry's slot at the first's.
        // Layout: frame header (24) then payload of dim(8) slots(8) len(8)
        // and entries of (slot u32, coord f64, label u32).
        let first_entry = 24 + 8 + 8 + 8;
        let second_entry = first_entry + 4 + 8 + 4;
        buf[second_entry..second_entry + 4].copy_from_slice(&0u32.to_le_bytes());
        reframe(&mut buf);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_damage_is_caught_by_the_checksum() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let mid = 24 + (buf.len() - 24) / 2;
        buf[mid] ^= 0x10;
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("payload checksum"), "{err}");
    }

    #[test]
    fn header_damage_is_caught_before_allocation() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        // Claim an absurd payload length; the header CRC rejects it.
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("header checksum"), "{err}");
    }

    #[test]
    fn trailing_bytes_after_payload_are_rejected() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        buf.push(0);
        let len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) + 1;
        buf[8..16].copy_from_slice(&len.to_le_bytes());
        reframe(&mut buf);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn legacy_v1_snapshot_still_reads() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        // A true v1 snapshot is magic + version + the body *without* the
        // free-slot section (which v1 writers did not emit).
        let free_section = 8 + 4 * store.free_slots().len();
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"IDBP");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&buf[24..buf.len() - free_section]);
        let restored = PointStore::read_snapshot(&mut v1.as_slice()).unwrap();
        assert_eq!(restored.len(), store.len());
        let a: Vec<_> = store.iter().map(|(id, p, l)| (id, p.to_vec(), l)).collect();
        let b: Vec<_> = restored
            .iter()
            .map(|(id, p, l)| (id, p.to_vec(), l))
            .collect();
        assert_eq!(a, b);
        // v1 carried no reuse order; the rebuilt free list is the
        // deterministic descending fallback.
        let mut want: Vec<u32> = (0..store.slots() as u32)
            .filter(|&s| !restored.contains(crate::PointId(s)))
            .collect();
        want.reverse();
        assert_eq!(restored.free_slots(), &want[..]);
    }

    #[test]
    fn corrupt_free_section_is_rejected() {
        let store = churned_store();
        let free = store.free_slots().len();
        assert!(free > 1, "fixture must have free slots");
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        // Duplicate free entry.
        let first_free = buf.len() - 4 * free;
        let dup: [u8; 4] = buf[first_free..first_free + 4].try_into().unwrap();
        buf[first_free + 4..first_free + 8].copy_from_slice(&dup);
        reframe(&mut buf);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate free slot"), "{err}");
        // Live slot listed as free.
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let live = store.ids().next().unwrap().0;
        let first_free = buf.len() - 4 * free;
        buf[first_free..first_free + 4].copy_from_slice(&live.to_le_bytes());
        reframe(&mut buf);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("is live"), "{err}");
        // Wrong count.
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let count_at = buf.len() - 4 * free - 8;
        buf[count_at..count_at + 8].copy_from_slice(&((free as u64) + 1).to_le_bytes());
        reframe(&mut buf);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("free count"), "{err}");
    }
}
