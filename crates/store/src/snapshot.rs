//! Binary snapshots of a point store.
//!
//! A long-running deployment checkpoints its database and its
//! summarization together (see `idb-core`'s snapshot module) so a restart
//! resumes without a full rebuild. The format is a small hand-rolled
//! little-endian codec — versioned, with explicit validation on read —
//! because the only structures crossing the boundary are flat arrays and
//! the workspace deliberately avoids a serialization dependency.
//!
//! Crucially, snapshots preserve **slot numbers**: a restored store hands
//! out the same [`PointId`](crate::PointId)s, so side structures (bubble
//! memberships) survive the round trip. The live-list order is preserved
//! too, keeping post-restore sampling bit-identical.

use crate::PointStore;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"IDBP";
const VERSION: u32 = 1;
const LABEL_NOISE: u32 = u32::MAX;

/// Snapshot decoding failure.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic, version, or structurally impossible contents.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot i/o error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Little-endian codec helpers, shared with `idb-core`'s summarization
/// snapshots so both formats stay consistent.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// See [`write_u32`].
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// See [`write_u32`].
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// See [`write_u32`].
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// See [`write_u32`].
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// See [`write_u32`].
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

impl PointStore {
    /// Writes a binary snapshot of the full store state (live points with
    /// their slots and labels, in live-list order).
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        write_u64(w, self.dim() as u64)?;
        write_u64(w, self.slots() as u64)?;
        write_u64(w, self.len() as u64)?;
        for (id, p, label) in self.iter() {
            write_u32(w, id.0)?;
            for &x in p {
                write_f64(w, x)?;
            }
            write_u32(w, label.unwrap_or(LABEL_NOISE))?;
        }
        Ok(())
    }

    /// Restores a store from a snapshot. Slot numbers, labels and
    /// live-list order are identical to the snapshotted store.
    pub fn read_snapshot<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic".into()));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(SnapshotError::Corrupt(format!(
                "unsupported version {version}"
            )));
        }
        let dim = read_u64(r)? as usize;
        if dim == 0 || dim > 1 << 20 {
            return Err(SnapshotError::Corrupt(format!("implausible dim {dim}")));
        }
        let slots = read_u64(r)? as usize;
        let len = read_u64(r)? as usize;
        if len > slots || slots > u32::MAX as usize {
            return Err(SnapshotError::Corrupt(format!(
                "len {len} exceeds slots {slots}"
            )));
        }

        let mut coords = vec![0.0f64; slots * dim];
        let mut labels = vec![LABEL_NOISE; slots];
        let mut live_pos = vec![u32::MAX; slots];
        let mut live_list = Vec::with_capacity(len);
        for pos in 0..len {
            let slot = read_u32(r)? as usize;
            if slot >= slots {
                return Err(SnapshotError::Corrupt(format!(
                    "slot {slot} out of range"
                )));
            }
            if live_pos[slot] != u32::MAX {
                return Err(SnapshotError::Corrupt(format!("duplicate slot {slot}")));
            }
            for x in coords[slot * dim..(slot + 1) * dim].iter_mut() {
                *x = read_f64(r)?;
            }
            labels[slot] = read_u32(r)?;
            live_pos[slot] = pos as u32;
            live_list.push(slot as u32);
        }
        // Free slots, in descending order so reuse order is deterministic.
        let mut free: Vec<u32> = (0..slots as u32)
            .filter(|&s| live_pos[s as usize] == u32::MAX)
            .collect();
        free.reverse();

        Ok(Self::from_raw_parts(
            dim, coords, labels, live_pos, live_list, free,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn churned_store() -> PointStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = PointStore::new(3);
        let mut ids = Vec::new();
        for i in 0..200 {
            let label = if i % 7 == 0 { None } else { Some(i % 4) };
            ids.push(s.insert(&[i as f64, -(i as f64), rng.gen()], label));
        }
        // Punch holes so the slot space has a free list.
        for i in (0..200).step_by(3) {
            s.remove(ids[i]);
        }
        for i in 0..30 {
            s.insert(&[1000.0 + i as f64, 0.0, 0.0], Some(9));
        }
        s
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let restored = PointStore::read_snapshot(&mut buf.as_slice()).unwrap();

        assert_eq!(restored.len(), store.len());
        assert_eq!(restored.dim(), store.dim());
        assert_eq!(restored.slots(), store.slots());
        let a: Vec<_> = store.iter().map(|(id, p, l)| (id, p.to_vec(), l)).collect();
        let b: Vec<_> = restored.iter().map(|(id, p, l)| (id, p.to_vec(), l)).collect();
        assert_eq!(a, b, "live-list order and contents identical");
    }

    #[test]
    fn restored_store_continues_operating() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let mut restored = PointStore::read_snapshot(&mut buf.as_slice()).unwrap();
        // Ids from the original remain valid in the restored store.
        let some_id = store.ids().next().unwrap();
        assert_eq!(restored.point(some_id), store.point(some_id));
        // Inserts and removes keep working (free list intact).
        let before_slots = restored.slots();
        let id = restored.insert(&[1.0, 2.0, 3.0], None);
        assert!(restored.slots() <= before_slots.max(id.index() + 1));
        restored.remove(id);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = PointStore::read_snapshot(&mut &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        buf[4] = 99; // version byte
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_snapshot_is_an_io_error() {
        let store = churned_store();
        let mut buf = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }

    #[test]
    fn duplicate_slot_is_rejected() {
        let mut s = PointStore::new(1);
        s.insert(&[1.0], None);
        s.insert(&[2.0], None);
        let mut buf = Vec::new();
        s.write_snapshot(&mut buf).unwrap();
        // Point the second live entry's slot at the first's.
        // Layout: magic(4) version(4) dim(8) slots(8) len(8) then entries
        // of (slot u32, coord f64, label u32).
        let first_entry = 4 + 4 + 8 + 8 + 8;
        let second_entry = first_entry + 4 + 8 + 4;
        buf[second_entry..second_entry + 4].copy_from_slice(&0u32.to_le_bytes());
        let err = PointStore::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }
}
