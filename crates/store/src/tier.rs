//! Cold tier for point payloads: bounded-resident coordinate storage.
//!
//! The paper's premise is that bubbles summarize points well enough that
//! maintenance rarely touches raw payloads; this module makes the memory
//! footprint match that access pattern. A tiered
//! [`PointStore`](crate::PointStore) keeps at most a configured number of
//! *hot* points resident in its slab and spills everything else to a
//! [`ColdMedium`] — a file of fixed-stride coordinate records addressed
//! by slot index (`offset = slot * dim * 8`, little-endian `f64`s), read
//! with positioned reads and rewritten atomically via tmp + rename.
//!
//! # Determinism contract
//!
//! Tiering must never change output bits. Two rules enforce that:
//!
//! 1. **Demand fetches never promote.** Reading a cold point copies its
//!    coordinates out; it does not move the point back into the hot set
//!    or touch any eviction state. Reads go through `&self` and only
//!    bump atomic traffic counters.
//! 2. **Eviction is a pure function of the mutation stream.** The hot
//!    set evolves only on `insert`, `remove`, and
//!    `enforce_hot_budget` — a clock sweep whose hand and reference
//!    bits depend on nothing but the sequence of those calls. Replaying
//!    the same op stream reproduces the same hot set, the same cold
//!    writes, and the same counters.
//!
//! The cold file is an ephemeral spill, **not** durability state:
//! recovery rebuilds the store from checkpoints + WAL (always untiered)
//! and re-enables the tier afterwards, so a crash can never lose
//! acknowledged data through the cold path.
//!
//! # Failure ladder
//!
//! Every cold-tier IO failure is a typed
//! [`StorageError::ColdIo`] — mirroring the WAL's ENOSPC ladder, never a
//! panic on the durable path: a failed eviction write leaves the point
//! hot (the resident set temporarily exceeds the budget and the
//! maintainer degrades until a later sweep succeeds); a failed demand
//! read on the batch path rejects the batch before anything mutates.

use crate::segment::StorageError;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment knob: hot-point budget for ambient tiering. When set (a
/// positive point count), [`hot_points_from_env`] reports it and the
/// durability layer enables a cold tier with that budget by default.
pub const HOT_POINTS_ENV: &str = "IDB_HOT_POINTS";

/// Environment knob: directory for ambient cold-tier spill files. When
/// set, [`default_cold_medium`] creates an [`FsCold`] file inside it;
/// otherwise spills go to an in-memory [`MemCold`].
pub const COLD_DIR_ENV: &str = "IDB_COLD_DIR";

/// The `IDB_HOT_POINTS` value, if set and parseable (a positive point
/// count); an invalid value warns **once** on stderr and reads as unset,
/// mirroring `IDB_DISK_BUDGET`.
#[must_use]
pub fn hot_points_from_env() -> Option<usize> {
    match hot_points_from_env_strict() {
        Ok(v) => v,
        Err(e) => {
            use std::sync::Once;
            static WARN: Once = Once::new();
            WARN.call_once(|| eprintln!("warning: {e}; running untiered"));
            None
        }
    }
}

/// Like [`hot_points_from_env`], but an unparseable value is a typed
/// error instead of a silent fallback.
///
/// # Errors
/// [`crate::segment::EnvParseError`] when `IDB_HOT_POINTS` is set to
/// anything but a positive point count.
pub fn hot_points_from_env_strict() -> Result<Option<usize>, crate::segment::EnvParseError> {
    let Some(raw) = std::env::var_os(HOT_POINTS_ENV) else {
        return Ok(None);
    };
    let text = raw.to_string_lossy();
    text.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .map(Some)
        .ok_or_else(|| crate::segment::EnvParseError {
            var: HOT_POINTS_ENV,
            value: text.into_owned(),
            expected: "a positive point count",
        })
}

/// The ambient cold medium: an [`FsCold`] file with a unique name under
/// `IDB_COLD_DIR` when that directory is configured (and creatable),
/// an in-memory [`MemCold`] otherwise.
#[must_use]
pub fn default_cold_medium() -> Box<dyn ColdMedium> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(dir) = std::env::var_os(COLD_DIR_ENV) {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = Path::new(&dir).join(format!("cold-{}-{n}.points", std::process::id()));
        if let Ok(fs) = FsCold::create(&path) {
            return Box::new(fs);
        }
        // Fall through: a misconfigured directory degrades to memory
        // rather than refusing to start.
    }
    Box::new(MemCold::new())
}

fn cold_io(op: &'static str, e: &std::io::Error) -> StorageError {
    StorageError::ColdIo {
        op,
        detail: e.to_string(),
    }
}

/// Backing storage for spilled point payloads: positioned reads and
/// writes over a flat record space, plus an atomic whole-content
/// rewrite. Implementations share their underlying medium across
/// [`boxed_clone`](ColdMedium::boxed_clone) (like
/// [`MemSegments`](crate::MemSegments)), so a cloned tiered store reads
/// the same cold records.
pub trait ColdMedium: Send + Sync + fmt::Debug {
    /// Fills `buf` from `offset`.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the record cannot be read in full.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError>;

    /// Writes `data` at `offset`, extending the medium as needed.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the write cannot complete.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Begins an atomic whole-content rewrite: stream chunks through
    /// [`ColdRewriter::append`], then [`ColdRewriter::commit`]. Until
    /// commit, readers see the old content; a dropped (uncommitted)
    /// rewriter leaves the old content intact — the crash-consistency
    /// contract of tmp + rename.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the staging area cannot be created.
    fn start_rewrite(&self) -> Result<Box<dyn ColdRewriter + '_>, StorageError>;

    /// Clones the handle; the clone shares the same underlying medium.
    fn boxed_clone(&self) -> Box<dyn ColdMedium>;
}

/// An in-progress atomic rewrite of a [`ColdMedium`]'s content.
pub trait ColdRewriter {
    /// Appends a chunk to the staged content.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the chunk cannot be staged.
    fn append(&mut self, chunk: &[u8]) -> Result<(), StorageError>;

    /// Atomically publishes the staged content.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when publication fails; the old content
    /// remains visible.
    fn commit(self: Box<Self>) -> Result<(), StorageError>;
}

/// In-memory cold medium for tests and hermetic runs. Clones share the
/// same backing vector.
#[derive(Debug, Clone, Default)]
pub struct MemCold {
    data: Arc<Mutex<Vec<u8>>>,
}

impl MemCold {
    /// An empty in-memory medium.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current content length in bytes (tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.lock().expect("cold lock").len()
    }

    /// `true` when nothing has been spilled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ColdMedium for MemCold {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        let data = self.data.lock().expect("cold lock");
        let start = usize::try_from(offset).map_err(|_| StorageError::ColdIo {
            op: "read",
            detail: format!("offset {offset} exceeds the address space"),
        })?;
        let end = start.checked_add(buf.len()).filter(|&e| e <= data.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&data[start..end]);
                Ok(())
            }
            None => Err(StorageError::ColdIo {
                op: "read",
                detail: format!(
                    "short read: {} bytes at {offset} but medium holds {}",
                    buf.len(),
                    data.len()
                ),
            }),
        }
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let mut vec = self.data.lock().expect("cold lock");
        let start = usize::try_from(offset).map_err(|_| StorageError::ColdIo {
            op: "write",
            detail: format!("offset {offset} exceeds the address space"),
        })?;
        let end = start + data.len();
        if vec.len() < end {
            vec.resize(end, 0);
        }
        vec[start..end].copy_from_slice(data);
        Ok(())
    }

    fn start_rewrite(&self) -> Result<Box<dyn ColdRewriter + '_>, StorageError> {
        Ok(Box::new(MemRewriter {
            staged: Vec::new(),
            target: Arc::clone(&self.data),
        }))
    }

    fn boxed_clone(&self) -> Box<dyn ColdMedium> {
        Box::new(self.clone())
    }
}

struct MemRewriter {
    staged: Vec<u8>,
    target: Arc<Mutex<Vec<u8>>>,
}

impl ColdRewriter for MemRewriter {
    fn append(&mut self, chunk: &[u8]) -> Result<(), StorageError> {
        self.staged.extend_from_slice(chunk);
        Ok(())
    }

    fn commit(self: Box<Self>) -> Result<(), StorageError> {
        *self.target.lock().expect("cold lock") = self.staged;
        Ok(())
    }
}

/// File-backed cold medium: one flat file of fixed-stride records,
/// positioned reads/writes, tmp + rename rewrites. Clones share the same
/// file handle (and therefore see each other's writes).
#[derive(Debug, Clone)]
pub struct FsCold {
    path: PathBuf,
    file: Arc<Mutex<File>>,
}

impl FsCold {
    /// Creates (truncating) the spill file at `path`.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when the file cannot be created.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| cold_io("create", &e))?;
        Ok(Self {
            path,
            file: Arc::new(Mutex::new(file)),
        })
    }

    /// The spill file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn tmp_path(&self) -> PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }
}

impl ColdMedium for FsCold {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.file
            .lock()
            .expect("cold lock")
            .read_exact_at(buf, offset)
            .map_err(|e| cold_io("read", &e))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.file
            .lock()
            .expect("cold lock")
            .write_all_at(data, offset)
            .map_err(|e| cold_io("write", &e))
    }

    fn start_rewrite(&self) -> Result<Box<dyn ColdRewriter + '_>, StorageError> {
        let tmp = self.tmp_path();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| cold_io("rewrite", &e))?;
        Ok(Box::new(FsRewriter {
            owner: self,
            tmp,
            file,
        }))
    }

    fn boxed_clone(&self) -> Box<dyn ColdMedium> {
        Box::new(self.clone())
    }
}

struct FsRewriter<'a> {
    owner: &'a FsCold,
    tmp: PathBuf,
    file: File,
}

impl ColdRewriter for FsRewriter<'_> {
    fn append(&mut self, chunk: &[u8]) -> Result<(), StorageError> {
        self.file
            .write_all(chunk)
            .map_err(|e| cold_io("rewrite", &e))
    }

    fn commit(self: Box<Self>) -> Result<(), StorageError> {
        self.file.sync_all().map_err(|e| cold_io("rewrite", &e))?;
        std::fs::rename(&self.tmp, &self.owner.path).map_err(|e| cold_io("rewrite", &e))?;
        // The shared handle still points at the replaced inode; reopen so
        // every clone reads the published content.
        let fresh = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.owner.path)
            .map_err(|e| cold_io("rewrite", &e))?;
        *self.owner.file.lock().expect("cold lock") = fresh;
        Ok(())
    }
}

/// A snapshot of a tiered store's traffic counters (monotonic over the
/// store's life; [`Default`] is all-zero for delta bookkeeping).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Demand reads served from the hot slab.
    pub hits: u64,
    /// Demand reads that had to go to the cold medium.
    pub misses: u64,
    /// Records read from the cold medium (== `misses`; kept separate so
    /// future prefetching can diverge them).
    pub cold_reads: u64,
    /// Payload bytes read from the cold medium.
    pub cold_bytes: u64,
    /// Hot frames evicted (written) to the cold medium.
    pub evictions: u64,
}

pub(crate) const NONE_FRAME: u32 = u32::MAX;
pub(crate) const FREE_FRAME: u32 = u32::MAX;

/// Per-store tier state: the slot↔frame maps, the clock sweep, the cold
/// handle, and the traffic counters.
///
/// In tiered mode the store's `coords` vector is *frame*-strided (frame
/// `f` occupies `f*dim..(f+1)*dim`) instead of slot-strided; `frame_of`
/// and `frame_slot` translate between the two spaces.
#[derive(Debug)]
pub(crate) struct Tier {
    pub(crate) cold: Box<dyn ColdMedium>,
    pub(crate) hot_cap: usize,
    /// slot -> hot frame, or [`NONE_FRAME`] when the slot is cold/dead.
    pub(crate) frame_of: Vec<u32>,
    /// frame -> slot, or [`FREE_FRAME`] when the frame is vacant.
    pub(crate) frame_slot: Vec<u32>,
    /// Clock reference bits (set at insert, cleared by the first sweep
    /// pass, evicted on the second).
    pub(crate) ref_bit: Vec<bool>,
    /// Vacant frames in reuse order (the last element is recycled next).
    pub(crate) free_frames: Vec<u32>,
    /// Clock hand: the next frame the sweep inspects.
    pub(crate) hand: usize,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) cold_reads: AtomicU64,
    pub(crate) cold_bytes: AtomicU64,
    pub(crate) evictions: u64,
}

impl Tier {
    pub(crate) fn counters(&self) -> TierCounters {
        TierCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cold_reads: self.cold_reads.load(Ordering::Relaxed),
            cold_bytes: self.cold_bytes.load(Ordering::Relaxed),
            evictions: self.evictions,
        }
    }

    /// Occupied (non-vacant) hot frames.
    pub(crate) fn live_frames(&self) -> usize {
        self.frame_slot.len() - self.free_frames.len()
    }
}

impl Clone for Tier {
    fn clone(&self) -> Self {
        Self {
            cold: self.cold.boxed_clone(),
            hot_cap: self.hot_cap,
            frame_of: self.frame_of.clone(),
            frame_slot: self.frame_slot.clone(),
            ref_bit: self.ref_bit.clone(),
            free_frames: self.free_frames.clone(),
            hand: self.hand,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            cold_reads: AtomicU64::new(self.cold_reads.load(Ordering::Relaxed)),
            cold_bytes: AtomicU64::new(self.cold_bytes.load(Ordering::Relaxed)),
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_cold_positioned_io_round_trips() {
        let m = MemCold::new();
        m.write_at(16, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        m.read_at(16, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        // The gap before the record reads as zeros.
        let mut head = [9u8; 16];
        m.read_at(0, &mut head).unwrap();
        assert_eq!(head, [0u8; 16]);
    }

    #[test]
    fn mem_cold_short_read_is_typed() {
        let m = MemCold::new();
        m.write_at(0, &[1, 2]).unwrap();
        let mut buf = [0u8; 8];
        let err = m.read_at(0, &mut buf).unwrap_err();
        assert!(
            matches!(err, StorageError::ColdIo { op: "read", .. }),
            "{err}"
        );
    }

    #[test]
    fn mem_cold_clones_share_content() {
        let a = MemCold::new();
        let b = a.boxed_clone();
        a.write_at(0, &[7; 8]).unwrap();
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn mem_rewrite_is_atomic_until_commit() {
        let m = MemCold::new();
        m.write_at(0, b"old-content!").unwrap();
        let mut rw = m.start_rewrite().unwrap();
        rw.append(b"new!").unwrap();
        // Not yet committed: readers still see the old content.
        let mut buf = [0u8; 12];
        m.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"old-content!");
        rw.commit().unwrap();
        let mut buf = [0u8; 4];
        m.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"new!");
        assert_eq!(m.len(), 4, "commit replaces, not appends");
    }

    #[test]
    fn fs_cold_round_trips_and_rewrites_via_rename() {
        let dir = std::env::temp_dir().join(format!("idb-tier-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cold.points");
        let fs = FsCold::create(&path).unwrap();
        fs.write_at(8, &[5u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        fs.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 8]);

        // A clone shares the handle.
        let twin = fs.boxed_clone();
        let mut buf = [0u8; 8];
        twin.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 8]);

        // Rewrite publishes atomically and the old handle follows.
        let mut rw = fs.start_rewrite().unwrap();
        rw.append(&[1u8; 4]).unwrap();
        rw.commit().unwrap();
        let mut buf = [0u8; 4];
        twin.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 4]);
        let mut long = [0u8; 16];
        assert!(twin.read_at(0, &mut long).is_err(), "old length is gone");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abandoned_fs_rewrite_leaves_old_content() {
        let dir = std::env::temp_dir().join(format!("idb-tier-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FsCold::create(dir.join("cold.points")).unwrap();
        fs.write_at(0, b"keep").unwrap();
        {
            let mut rw = fs.start_rewrite().unwrap();
            rw.append(b"discarded").unwrap();
            // Dropped without commit: crash-equivalent.
        }
        let mut buf = [0u8; 4];
        fs.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"keep");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_knob_parses_strictly() {
        // Only exercise the parse path for values that cannot race other
        // tests: the strict reader reports unset/parseable states.
        assert!(hot_points_from_env_strict().is_ok());
    }
}
