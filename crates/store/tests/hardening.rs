//! Hostile-input hardening corpus for the two decoders that consume
//! untrusted bytes: [`PointStore::read_snapshot`] and [`read_wal`].
//!
//! Contract: garbage, truncated, bit-damaged, and deliberately hostile
//! inputs (length prefixes and element counts claiming gigabytes) must
//! produce a typed error or a clean torn-tail result — never a panic and
//! never an allocation beyond a fixed multiple of the input size.

use idb_store::segment::{read_chain, MemSegments, SegmentId, SegmentedSink};
use idb_store::wal::{read_wal, WalError, WalRecord, WalWriter};
use idb_store::{Batch, DurableSink, PointId, PointStore, SnapshotError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn churned_store() -> PointStore {
    let mut store = PointStore::new(3);
    let mut ids = Vec::new();
    for i in 0..150 {
        ids.push(store.insert(&[i as f64, 0.5 * i as f64, -(i as f64)], Some(i % 5)));
    }
    for i in (0..150).step_by(4) {
        store.remove(ids[i]);
    }
    store
}

fn snapshot_bytes(store: &PointStore) -> Vec<u8> {
    let mut buf = Vec::new();
    store.write_snapshot(&mut buf).unwrap();
    buf
}

/// Builds a syntactically valid v2 frame around an arbitrary payload:
/// correct magic, version, length and both CRCs — so decoding reaches the
/// body parser and its claims.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut body = Vec::new();
    body.extend_from_slice(b"IDBP");
    body.extend_from_slice(&2u32.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(&idb_store::snapshot::crc32(payload).to_le_bytes());
    buf.extend_from_slice(&body);
    buf.extend_from_slice(&idb_store::snapshot::crc32(&body).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

#[test]
fn random_garbage_never_panics_either_decoder() {
    let mut rng = StdRng::seed_from_u64(0x4A5D_0001);
    for trial in 0..512 {
        let n = rng.gen_range(0..2048);
        let mut bytes: Vec<u8> = (0..n).map(|_| rng.gen::<u32>() as u8).collect();
        // A quarter of the corpus gets a valid magic + version so decoding
        // reaches the interior instead of bouncing off the first check.
        if trial % 4 == 0 && bytes.len() >= 8 {
            let magic: &[u8; 4] = if trial % 8 == 0 { b"IDBP" } else { b"IDBW" };
            bytes[..4].copy_from_slice(magic);
            bytes[4..8].copy_from_slice(&if magic == b"IDBP" { 2u32 } else { 1u32 }.to_le_bytes());
        }
        // Typed results only; unwinding would fail the test.
        let _ = PointStore::read_snapshot(&mut bytes.as_slice()).err();
        let _ = read_wal(&bytes).err();
    }
}

#[test]
fn hostile_frame_length_is_capped_to_the_input() {
    // A frame header claiming a payload just under the 1 TiB ceiling,
    // followed by 16 actual bytes: the reader must not trust the claim
    // with an allocation — it reads what is there and reports truncation.
    let mut buf = Vec::new();
    buf.extend_from_slice(b"IDBP");
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.extend_from_slice(&((1u64 << 40) - 1).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // payload crc (never reached)
    let crc = idb_store::snapshot::crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(&[0xAB; 16]);
    match PointStore::read_snapshot(&mut buf.as_slice()) {
        Err(SnapshotError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}");
        }
        other => panic!("expected truncation Io error, got {other:?}"),
    }

    // Claims beyond the ceiling are rejected outright.
    let mut buf = Vec::new();
    buf.extend_from_slice(b"IDBP");
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    let crc = idb_store::snapshot::crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        PointStore::read_snapshot(&mut buf.as_slice()),
        Err(SnapshotError::Corrupt(_))
    ));
}

#[test]
fn hostile_body_counts_fail_typed_without_huge_allocations() {
    let cases: [(u64, u64, u64, &str); 4] = [
        // dim, slots, len — each claims gigabytes from a ~40-byte payload.
        (3, u32::MAX as u64, 0, "4 billion empty slots"),
        (1 << 20, 1 << 20, 0, "maximum dim times a million holes"),
        (2, 1 << 30, 1 << 30, "a billion live points"),
        (u64::MAX, 1, 1, "dim beyond any plausibility"),
    ];
    for (dim, slots, len, what) in cases {
        let mut payload = Vec::new();
        payload.extend_from_slice(&dim.to_le_bytes());
        payload.extend_from_slice(&slots.to_le_bytes());
        payload.extend_from_slice(&len.to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]); // a little plausible-looking tail
        match PointStore::read_snapshot(&mut frame(&payload).as_slice()) {
            Err(SnapshotError::Corrupt(_)) | Err(SnapshotError::Io(_)) => {}
            other => panic!("{what}: expected typed rejection, got {other:?}"),
        }
    }

    // The WAL analogue: a record whose u32 length field claims ~4 GiB.
    let mut wal = Vec::new();
    wal.extend_from_slice(b"IDBW");
    wal.extend_from_slice(&1u32.to_le_bytes());
    wal.extend_from_slice(&2u32.to_le_bytes());
    wal.extend_from_slice(&0u64.to_le_bytes());
    wal.extend_from_slice(&(u32::MAX - 8).to_le_bytes());
    wal.extend_from_slice(&0u32.to_le_bytes());
    wal.extend_from_slice(&[0u8; 64]);
    let contents = read_wal(&wal).expect("an oversized length claim is a torn tail");
    assert!(contents.torn_tail);
    assert!(contents.records.is_empty());
}

#[test]
fn every_truncation_of_a_valid_snapshot_is_a_typed_error() {
    let buf = snapshot_bytes(&churned_store());
    for cut in 0..buf.len() {
        match PointStore::read_snapshot(&mut &buf[..cut]) {
            Err(SnapshotError::Io(_)) | Err(SnapshotError::Corrupt(_)) => {}
            Ok(_) => panic!("truncation to {cut} of {} bytes decoded", buf.len()),
        }
    }
    assert!(PointStore::read_snapshot(&mut buf.as_slice()).is_ok());
}

#[test]
fn every_single_bit_flip_of_a_valid_snapshot_is_detected() {
    let buf = snapshot_bytes(&churned_store());
    let mut rng = StdRng::seed_from_u64(0x4A5D_0002);
    // Sweep every byte (random bit within it): the two CRCs must catch
    // every flip — in the header, the live section, or the free list.
    for offset in 0..buf.len() {
        let mut damaged = buf.clone();
        damaged[offset] ^= 1u8 << rng.gen_range(0..8);
        assert!(
            PointStore::read_snapshot(&mut damaged.as_slice()).is_err(),
            "flip at byte {offset} went undetected"
        );
    }
}

#[test]
fn wal_decode_errors_carry_offsets_and_details() {
    // Distinguishes the two WAL failure shapes on the same damaged input:
    // structural damage is `Corrupt { offset, .. }` pointing at the record,
    // truncation is a clean torn tail.
    let mut wal = Vec::new();
    wal.extend_from_slice(b"IDBW");
    wal.extend_from_slice(&1u32.to_le_bytes());
    wal.extend_from_slice(&2u32.to_le_bytes());
    wal.extend_from_slice(&0u64.to_le_bytes());
    let payload = [7u8; 24]; // unknown record kind
    wal.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wal.extend_from_slice(&idb_store::snapshot::crc32(&payload).to_le_bytes());
    wal.extend_from_slice(&payload);
    match read_wal(&wal) {
        Err(WalError::Corrupt { offset, detail }) => {
            assert_eq!(offset, 20, "error anchors at the record start");
            assert!(!detail.is_empty());
        }
        other => panic!("expected a corrupt record, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Segment-chain hostile corpus: read_chain over damaged multi-segment WALs.
// ---------------------------------------------------------------------------

/// A valid multi-segment chain (tiny per-segment budget forces several
/// rotations) plus its shared medium handle for sabotage.
fn sample_chain(seed: u64) -> (MemSegments, Vec<WalRecord>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<WalRecord> = (0..24)
        .map(|_| WalRecord {
            round_seed: rng.gen(),
            maintain: rng.gen_bool(0.5),
            batch: Batch {
                deletes: (0..rng.gen_range(0..3))
                    .map(|_| PointId(rng.gen()))
                    .collect(),
                inserts: (0..rng.gen_range(1..4))
                    .map(|_| {
                        (
                            vec![rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0)],
                            None,
                        )
                    })
                    .collect(),
            },
        })
        .collect();
    let medium = MemSegments::new();
    let sink = SegmentedSink::fresh(medium.clone(), 200).unwrap();
    let mut w = WalWriter::new(sink, 2, 0, 1);
    w.commit().unwrap();
    for r in &records {
        w.append(r);
        w.commit().unwrap();
        let next = w.committed_records();
        w.sink_mut().roll(2, next).unwrap();
    }
    assert!(
        w.sink().segment_count() >= 4,
        "the corpus needs a real chain, got {} segments",
        w.sink().segment_count()
    );
    (medium, records)
}

#[test]
fn missing_interior_segment_is_a_typed_chain_gap() {
    let (medium, _) = sample_chain(0x5E61);
    let ids: Vec<SegmentId> = medium.snapshot().into_keys().collect();
    for (victim, id) in ids.iter().enumerate().take(ids.len() - 1).skip(1) {
        let damaged = MemSegments::new();
        let mut m = medium.snapshot();
        m.remove(id);
        damaged.restore(m);
        match read_chain(&damaged) {
            Err(WalError::ChainGap {
                epoch,
                expected_seq,
            }) => {
                assert_eq!(epoch, id.epoch);
                assert_eq!(expected_seq, id.seq);
            }
            other => panic!("segment {victim} removed: expected ChainGap, got {other:?}"),
        }
    }
    // Removing the *final* segment leaves a shorter but well-formed chain.
    let mut m = medium.snapshot();
    m.remove(ids.last().unwrap());
    let damaged = MemSegments::new();
    damaged.restore(m);
    assert!(read_chain(&damaged).is_ok(), "a shorter chain is legal");
}

#[test]
fn swapped_segment_contents_fail_the_base_handoff() {
    let (medium, _) = sample_chain(0x5E62);
    let snap = medium.snapshot();
    let ids: Vec<SegmentId> = snap.keys().copied().collect();
    // Swap two interior segments' bytes: sequence numbers stay contiguous
    // but each segment's base no longer matches its predecessor's end.
    let mut m = snap.clone();
    let (a, b) = (ids[1], ids[2]);
    let (ba, bb) = (m[&a].clone(), m[&b].clone());
    m.insert(a, bb);
    m.insert(b, ba);
    let damaged = MemSegments::new();
    damaged.restore(m);
    assert!(
        matches!(read_chain(&damaged), Err(WalError::CorruptSegment { .. })),
        "reordered contents must fail the base handoff"
    );
}

#[test]
fn interior_bit_flips_and_truncations_are_typed_never_panics() {
    let (medium, records) = sample_chain(0x5E63);
    let snap = medium.snapshot();
    let ids: Vec<SegmentId> = snap.keys().copied().collect();
    let mut rng = StdRng::seed_from_u64(0x5E64);
    for trial in 0..128 {
        let victim = ids[rng.gen_range(0..ids.len())];
        let mut m = snap.clone();
        let bytes = m.get_mut(&victim).unwrap();
        if trial % 2 == 0 {
            let len = bytes.len();
            bytes[rng.gen_range(0..len)] ^= 1u8 << rng.gen_range(0..8);
        } else {
            bytes.truncate(rng.gen_range(0..bytes.len()));
        }
        let damaged = MemSegments::new();
        damaged.restore(m);
        match read_chain(&damaged) {
            Ok(chain) => {
                // Only damage confined to the final segment may read clean
                // (as a shorter/torn chain); the survivors must be a prefix
                // of the reference stream.
                assert_eq!(
                    chain.records,
                    records[..chain.records.len()],
                    "trial {trial}"
                );
            }
            Err(WalError::ChainGap { .. } | WalError::CorruptSegment { .. } | WalError::Io(_)) => {}
            Err(other) => panic!("trial {trial}: unexpected error class: {other}"),
        }
    }
}

#[test]
fn gigabyte_claiming_segment_headers_fail_typed_without_allocating() {
    let (medium, records) = sample_chain(0x5E65);
    let snap = medium.snapshot();
    let ids: Vec<SegmentId> = snap.keys().copied().collect();
    // A hostile record framing planted at the start of a segment's record
    // area: a u32 length claiming ~4 GiB. In an interior segment that is
    // typed corruption (interior tails must be clean); as the final
    // segment it is an ordinary torn tail.
    let hostile_tail: Vec<u8> = (u32::MAX - 8)
        .to_le_bytes()
        .into_iter()
        .chain(0u32.to_le_bytes())
        .chain([0u8; 64])
        .collect();
    for (k, &victim) in ids.iter().enumerate() {
        let mut m = snap.clone();
        let bytes = m.get_mut(&victim).unwrap();
        bytes.truncate(20); // Keep only the segment header...
        bytes.extend_from_slice(&hostile_tail); // ...then claim gigabytes.
        let damaged = MemSegments::new();
        damaged.restore(m);
        match read_chain(&damaged) {
            Ok(chain) if k == ids.len() - 1 => {
                assert!(chain.torn_tail, "an oversized claim is a torn tail");
                assert_eq!(chain.records, records[..chain.records.len()]);
            }
            Err(WalError::CorruptSegment { epoch, seq, .. }) if k < ids.len() - 1 => {
                assert_eq!((epoch, seq), (victim.epoch, victim.seq));
            }
            other => panic!("victim {k}: unexpected outcome: {other:?}"),
        }
    }
}
