//! Property-based tests for the point store.
//!
//! The store is the substrate every experiment mutates tens of thousands of
//! times per run; its invariants (live set consistency, slot reuse, label
//! fidelity) are exercised here with random operation sequences.

use idb_store::{PointId, PointStore};
use proptest::prelude::*;
use std::collections::HashMap;

/// A randomized op sequence: `true` = insert with the given value/label,
/// `false` = delete a pseudo-randomly chosen live point.
fn ops() -> impl Strategy<Value = Vec<(bool, f64, Option<u32>, usize)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            -1000.0f64..1000.0,
            prop::option::of(0u32..8),
            0usize..1024,
        ),
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A shadow model (HashMap) and the store agree after any op sequence.
    #[test]
    fn store_matches_shadow_model(ops in ops()) {
        let mut store = PointStore::new(1);
        let mut model: HashMap<PointId, (f64, Option<u32>)> = HashMap::new();
        let mut live: Vec<PointId> = Vec::new();

        for (is_insert, val, label, pick) in ops {
            if is_insert || live.is_empty() {
                let id = store.insert(&[val], label);
                // An id must never collide with a live one.
                prop_assert!(!model.contains_key(&id));
                model.insert(id, (val, label));
                live.push(id);
            } else {
                let idx = pick % live.len();
                let id = live.swap_remove(idx);
                store.remove(id);
                model.remove(&id);
            }

            prop_assert_eq!(store.len(), model.len());
            for (&id, &(val, label)) in &model {
                prop_assert!(store.contains(id));
                prop_assert_eq!(store.point(id)[0], val);
                prop_assert_eq!(store.label(id), label);
            }
        }

        // Iteration visits exactly the live set.
        let mut seen: Vec<PointId> = store.iter().map(|(id, _, _)| id).collect();
        seen.sort_unstable();
        let mut want: Vec<PointId> = model.keys().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(seen, want);
    }

    /// Slot space never exceeds the high-water mark of concurrent liveness
    /// plus churn that outpaced the free list (i.e. slots <= total inserts,
    /// and slots == max live when deletions always precede growth).
    #[test]
    fn slot_space_is_bounded_by_inserts(n in 1usize..100, churn in 1usize..50) {
        let mut store = PointStore::new(2);
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(store.insert(&[i as f64, 0.0], None));
        }
        let high_water = store.slots();
        prop_assert_eq!(high_water, n);
        for c in 0..churn {
            let slot = c % ids.len();
            let victim = ids[slot];
            store.remove(victim);
            let new_id = store.insert(&[c as f64, 1.0], Some(1));
            ids[slot] = new_id;
            // Delete-then-insert churn must never grow the slot space.
            prop_assert_eq!(store.slots(), high_water);
        }
    }
}
