//! Cross-checks of the clustering algorithms against independent
//! brute-force reference implementations.
//!
//! Each production algorithm here (OPTICS, DBSCAN, NN-chain agglomerative
//! clustering, ξ-extraction, cluster-tree extraction) is validated against
//! a slow, textbook re-implementation written with none of the production
//! shortcuts — different data structures, different traversal order — so a
//! shared bug is unlikely. The suite is organized in four sections:
//!
//! 1. **Density orderings vs. references** — OPTICS reachability multisets
//!    and DBSCAN partitions against O(n²) references.
//! 2. **Dendrograms vs. references** — NN-chain merge heights against a
//!    greedy global-minimum agglomerative reference, with and without
//!    distance ties, plus a replay check that every emitted merge height
//!    is the true linkage distance at merge time.
//! 3. **Plot extraction invariants** — ξ-clusters and cluster-tree
//!    clusters over randomized reachability plots: bounds, nesting,
//!    disjointness.
//! 4. **Degenerate inputs** — duplicate-heavy point sets, singleton and
//!    coincident bubbles.

use idb_clustering::agglomerative::{agglomerative_points, Linkage};
use idb_clustering::extract::{extract_clusters, ExtractParams};
use idb_clustering::optics_bubbles::{bubble_distance, optics_bubbles};
use idb_clustering::optics_points;
use idb_clustering::reachability::{PlotEntry, ReachabilityPlot};
use idb_clustering::xi::{extract_xi, XiParams};
use idb_core::{DataSummary, SufficientStats};
use idb_store::PointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

fn random_points(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| vec![rng.gen_range(lo..hi), rng.gen_range(lo..hi)])
        .collect()
}

/// Integer-grid points: many exactly-equal pairwise distances (ties).
fn grid_points(rng: &mut StdRng, n: usize, cells: u32) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                f64::from(rng.gen_range(0..cells)),
                f64::from(rng.gen_range(0..cells)),
            ]
        })
        .collect()
}

fn store_of(pts: &[Vec<f64>]) -> PointStore {
    let mut store = PointStore::new(2);
    for p in pts {
        store.insert(p, None);
    }
    store
}

fn plot_of(reach: &[f64]) -> ReachabilityPlot {
    ReachabilityPlot::from_entries(
        reach
            .iter()
            .enumerate()
            .map(|(i, &r)| PlotEntry {
                id: i as u64,
                reachability: r,
            })
            .collect(),
    )
}

fn random_plot(rng: &mut StdRng, n: usize) -> ReachabilityPlot {
    let reach: Vec<f64> = (0..n)
        .map(|i| {
            if i == 0 || rng.gen_bool(0.05) {
                f64::INFINITY
            } else {
                rng.gen_range(0.01..10.0)
            }
        })
        .collect();
    plot_of(&reach)
}

// ---------------------------------------------------------------------------
// 1. Density orderings vs. references
// ---------------------------------------------------------------------------

/// Textbook O(n²) OPTICS: seed list instead of a heap, min-scan each step,
/// ties broken by smaller index.
fn optics_reference(points: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<(usize, f64)> {
    let n = points.len();
    let d = |i: usize, j: usize| idb_geometry::dist(&points[i], &points[j]);
    let mut processed = vec![false; n];
    let mut reach = vec![f64::INFINITY; n];
    let mut out = Vec::new();
    let core_dist = |i: usize| -> f64 {
        let mut ds: Vec<f64> = (0..n).map(|j| d(i, j)).filter(|&x| x <= eps).collect();
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if ds.len() < min_pts {
            f64::INFINITY
        } else {
            ds[min_pts - 1]
        }
    };
    for start in 0..n {
        if processed[start] {
            continue;
        }
        processed[start] = true;
        out.push((start, f64::INFINITY));
        let update =
            |i: usize, processed: &[bool], reach: &mut Vec<f64>, seeds: &mut Vec<usize>| {
                let cd = core_dist(i);
                if cd.is_infinite() {
                    return;
                }
                for j in 0..n {
                    if processed[j] || j == i {
                        continue;
                    }
                    let dij = d(i, j);
                    if dij > eps {
                        continue;
                    }
                    let r = cd.max(dij);
                    if r < reach[j] {
                        reach[j] = r;
                        if !seeds.contains(&j) {
                            seeds.push(j);
                        }
                    }
                }
            };
        let mut seeds: Vec<usize> = Vec::new();
        update(start, &processed, &mut reach, &mut seeds);
        while !seeds.is_empty() {
            let mut best = 0usize;
            for k in 1..seeds.len() {
                let (a, b) = (seeds[k], seeds[best]);
                if reach[a] < reach[b] || (reach[a] == reach[b] && a < b) {
                    best = k;
                }
            }
            let i = seeds.swap_remove(best);
            processed[i] = true;
            out.push((i, reach[i]));
            update(i, &processed, &mut reach, &mut seeds);
        }
    }
    out
}

/// The production OPTICS and the reference may order tied points
/// differently, but the multiset of reachability values is an invariant of
/// the input; compare the sorted values.
#[test]
fn optics_reachability_multiset_matches_reference() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = random_points(&mut rng, 60, 0.0, 10.0);
        for (eps, min_pts) in [(f64::INFINITY, 4), (1.5, 3), (0.8, 5), (2.5, 1)] {
            let store = store_of(&pts);
            let plot = optics_points(&store, eps, min_pts);
            let mut got: Vec<f64> = plot.entries().iter().map(|e| e.reachability).collect();
            let mut want: Vec<f64> = optics_reference(&pts, eps, min_pts)
                .iter()
                .map(|&(_, r)| r)
                .collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() < 1e-9 || (g.is_infinite() && w.is_infinite()),
                    "seed {seed} eps {eps} min_pts {min_pts}: {g} vs {w}"
                );
            }
        }
    }
}

/// Textbook DBSCAN: core flags by brute-force neighbourhood counts, BFS
/// over core points.
fn dbscan_reference(pts: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<Option<usize>> {
    let n = pts.len();
    let d = |i: usize, j: usize| idb_geometry::dist(&pts[i], &pts[j]);
    let core: Vec<bool> = (0..n)
        .map(|i| (0..n).filter(|&j| d(i, j) <= eps).count() >= min_pts)
        .collect();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut c = 0usize;
    for i in 0..n {
        if !core[i] || labels[i].is_some() {
            continue;
        }
        let mut stack = vec![i];
        labels[i] = Some(c);
        while let Some(x) = stack.pop() {
            for j in 0..n {
                if d(x, j) <= eps && labels[j].is_none() {
                    labels[j] = Some(c);
                    if core[j] {
                        stack.push(j);
                    }
                }
            }
        }
        c += 1;
    }
    labels
}

/// Noise sets must match exactly; the core-point partition must be
/// identical. (Border points may legitimately land in either adjacent
/// cluster depending on visit order, so they are excluded.)
#[test]
fn dbscan_partition_matches_reference() {
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let pts = random_points(&mut rng, 50, 0.0, 10.0);
        for (eps, min_pts) in [(1.0, 3), (0.7, 4), (2.0, 6)] {
            let store = store_of(&pts);
            let res = idb_clustering::dbscan::dbscan(&store, eps, min_pts);
            let want = dbscan_reference(&pts, eps, min_pts);
            let d = |i: usize, j: usize| idb_geometry::dist(&pts[i], &pts[j]);
            let n = pts.len();
            let core: Vec<bool> = (0..n)
                .map(|i| (0..n).filter(|&j| d(i, j) <= eps).count() >= min_pts)
                .collect();
            for i in 0..n {
                assert_eq!(
                    res.labels[i].is_none(),
                    want[i].is_none(),
                    "seed {seed} eps {eps} mp {min_pts} pt {i}: noise mismatch (core={})",
                    core[i]
                );
            }
            for i in 0..n {
                for j in 0..n {
                    if core[i] && core[j] {
                        assert_eq!(
                            res.labels[i] == res.labels[j],
                            want[i] == want[j],
                            "seed {seed} eps {eps} mp {min_pts}: core pts {i},{j}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Dendrograms vs. references
// ---------------------------------------------------------------------------

/// Greedy global-minimum agglomerative reference with Lance–Williams
/// updates; returns the sorted merge heights.
fn agglomerative_reference(points: &[Vec<f64>], linkage: Linkage) -> Vec<f64> {
    let n = points.len();
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut v = idb_geometry::dist(&points[i], &points[j]);
            if linkage == Linkage::Ward {
                v *= v;
            }
            d[i * n + j] = v;
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut size = vec![1.0f64; n];
    let mut heights = Vec::new();
    while active.len() > 1 {
        let (mut ba, mut bb, mut best) = (0, 0, f64::INFINITY);
        for (x, &i) in active.iter().enumerate() {
            for &j in &active[x + 1..] {
                if d[i * n + j] < best {
                    best = d[i * n + j];
                    ba = i;
                    bb = j;
                }
            }
        }
        heights.push(best);
        let (na, nb) = (size[ba], size[bb]);
        for &m in &active {
            if m == ba || m == bb {
                continue;
            }
            let dam = d[ba * n + m];
            let dbm = d[bb * n + m];
            let nm = size[m];
            let new = match linkage {
                Linkage::Single => dam.min(dbm),
                Linkage::Complete => dam.max(dbm),
                Linkage::Average => (na * dam + nb * dbm) / (na + nb),
                Linkage::Ward => ((na + nm) * dam + (nb + nm) * dbm - nm * best) / (na + nb + nm),
            };
            d[ba * n + m] = new;
            d[m * n + ba] = new;
        }
        size[ba] += size[bb];
        active.retain(|&x| x != bb);
    }
    heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
    heights
}

fn sorted_nn_chain_heights(pts: &[Vec<f64>], linkage: Linkage) -> Vec<f64> {
    let mut h: Vec<f64> = agglomerative_points(pts, linkage)
        .merges()
        .iter()
        .map(|m| m.height)
        .collect();
    h.sort_by(|a, b| a.partial_cmp(b).unwrap());
    h
}

/// Tie-free continuous inputs: NN-chain and the greedy reference must
/// produce the same merge heights under every linkage.
#[test]
fn nn_chain_heights_match_reference_all_linkages() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let pts = random_points(&mut rng, 25, 0.0, 10.0);
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let got = sorted_nn_chain_heights(&pts, linkage);
            let want = agglomerative_reference(&pts, linkage);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-7, "seed {seed} {linkage:?}: {g} vs {w}");
            }
        }
    }
}

/// Ties (integer grids): only single linkage is checked against the
/// reference — its sorted merge heights are the MST edge weights, a
/// multiset invariant under any tie-breaking order. For the other
/// linkages, tied merges taken in a different order legitimately change
/// later heights; the replay check below covers their validity instead.
#[test]
fn nn_chain_single_linkage_heights_match_reference_under_ties() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let pts = grid_points(&mut rng, 20, 4);
        let got = sorted_nn_chain_heights(&pts, Linkage::Single);
        let want = agglomerative_reference(&pts, Linkage::Single);
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() < 1e-7,
                "seed {seed}: got {got:?} want {want:?}"
            );
        }
    }
}

/// Replays the emitted merges in order and verifies every merge height is
/// the *true* linkage distance between the two clusters at merge time
/// (Ward via the centroid formula).
fn check_dendrogram_valid(pts: &[Vec<f64>], linkage: Linkage, seed: u64) -> Result<(), String> {
    let r = agglomerative_points(pts, linkage);
    let n = pts.len();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut slot: Vec<usize> = (0..n).collect();
    let d0 = |i: usize, j: usize| {
        let v = idb_geometry::dist(&pts[i], &pts[j]);
        if linkage == Linkage::Ward {
            v * v
        } else {
            v
        }
    };
    for m in r.merges() {
        let sa = slot[m.a];
        let sb = slot[m.b];
        if sa == sb {
            return Err(format!(
                "seed {seed} {linkage:?}: merge {m:?} within one cluster"
            ));
        }
        let (ca, cb) = (&members[sa], &members[sb]);
        let true_h = match linkage {
            Linkage::Single => {
                let mut best = f64::INFINITY;
                for &x in ca {
                    for &y in cb {
                        best = best.min(d0(x, y));
                    }
                }
                best
            }
            Linkage::Complete => {
                let mut best = 0.0f64;
                for &x in ca {
                    for &y in cb {
                        best = best.max(d0(x, y));
                    }
                }
                best
            }
            Linkage::Average => {
                let mut s = 0.0;
                for &x in ca {
                    for &y in cb {
                        s += d0(x, y);
                    }
                }
                s / (ca.len() * cb.len()) as f64
            }
            Linkage::Ward => {
                let dim = pts[0].len();
                let mean = |c: &Vec<usize>| -> Vec<f64> {
                    let mut v = vec![0.0; dim];
                    for &x in c {
                        for k in 0..dim {
                            v[k] += pts[x][k];
                        }
                    }
                    for vk in &mut v {
                        *vk /= c.len() as f64;
                    }
                    v
                };
                let (ma, mb) = (mean(ca), mean(cb));
                let sq = idb_geometry::sq_dist(&ma, &mb);
                2.0 * (ca.len() * cb.len()) as f64 / (ca.len() + cb.len()) as f64 * sq
            }
        };
        if (m.height - true_h).abs() > 1e-7 {
            return Err(format!(
                "seed {seed} {linkage:?}: merge height {} but true linkage distance {true_h}",
                m.height
            ));
        }
        let moved = std::mem::take(&mut members[sb]);
        for &x in &moved {
            slot[x] = sa;
        }
        members[sa].extend(moved);
    }
    Ok(())
}

#[test]
fn nn_chain_dendrogram_is_valid_under_ties() {
    let mut failures = Vec::new();
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let pts = grid_points(&mut rng, 18, 4);
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            if let Err(e) = check_dendrogram_valid(&pts, linkage, seed) {
                failures.push(e);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} failures, first 5:\n{}",
        failures.len(),
        failures[..failures.len().min(5)].join("\n")
    );
}

// ---------------------------------------------------------------------------
// 3. Plot extraction invariants
// ---------------------------------------------------------------------------

fn assert_nested_or_disjoint(clusters: &[idb_clustering::XiCluster], n: usize, context: &str) {
    for c in clusters {
        assert!(c.start < c.end, "{context}: bad range {c:?}");
        assert!(c.end <= n, "{context}: out of bounds {c:?} n {n}");
    }
    for a in clusters {
        for b in clusters {
            let disjoint = a.end <= b.start || b.end <= a.start;
            let nested =
                (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end);
            assert!(disjoint || nested, "{context}: {a:?} vs {b:?}");
        }
    }
}

/// ξ-clusters over arbitrary plots (random interior infinities included)
/// are in-bounds and form a laminar family: any two are nested or
/// disjoint.
#[test]
fn xi_clusters_are_nested_or_disjoint() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..80);
        let plot = random_plot(&mut rng, n);
        let clusters = extract_xi(&plot, &XiParams::new(0.1, 3));
        assert_nested_or_disjoint(&clusters, n, &format!("seed {seed}"));
    }
}

/// The same laminar-family invariant on plots whose only infinity is the
/// leading entry — the common case of a single connected component.
#[test]
fn xi_clusters_are_nested_or_disjoint_on_finite_interiors() {
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(4..80);
        let reach: Vec<f64> = (0..n)
            .map(|i| {
                if i == 0 {
                    f64::INFINITY
                } else {
                    rng.gen_range(0.01..10.0)
                }
            })
            .collect();
        let clusters = extract_xi(&plot_of(&reach), &XiParams::new(0.1, 3));
        assert_nested_or_disjoint(&clusters, n, &format!("finite-interior seed {seed}"));
    }
}

/// Cluster-tree extraction returns clusters of plot ids: every id at most
/// once, all ids drawn from the plot.
#[test]
fn extracted_clusters_assign_each_point_at_most_once() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let n = rng.gen_range(1..100);
        let plot = random_plot(&mut rng, n);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        let mut seen = vec![false; n];
        for c in &clusters {
            for &id in c {
                assert!(!seen[id as usize], "seed {seed}: id {id} in two clusters");
                seen[id as usize] = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Degenerate inputs
// ---------------------------------------------------------------------------

/// Minimal summary wrapper for bubble-level degenerate cases.
#[derive(Debug, Clone)]
struct RawSummary(SufficientStats);
impl DataSummary for RawSummary {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn n(&self) -> u64 {
        self.0.n()
    }
    fn rep(&self) -> Vec<f64> {
        self.0.rep().unwrap()
    }
    fn extent(&self) -> f64 {
        self.0.extent()
    }
    fn nn_dist(&self, k: usize) -> f64 {
        self.0.nn_dist(k)
    }
}

/// Duplicate-heavy point sets and singleton/coincident bubbles: every
/// stage stays total (no panics, no NaN), plots keep all points, and
/// bubble orderings keep all summaries.
#[test]
fn degenerate_inputs_stay_total() {
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..40);
        let pts = grid_points(&mut rng, n, 3);
        let store = store_of(&pts);
        for (eps, mp) in [(f64::INFINITY, 3), (1.0, 2), (0.5, 7)] {
            let plot = optics_points(&store, eps, mp);
            assert_eq!(plot.len(), n);
            let _ = extract_clusters(&plot, &ExtractParams::with_min_size(3));
            let _ = extract_xi(&plot, &XiParams::new(0.15, 3));
        }
        // Singleton and coincident bubbles.
        let summaries: Vec<RawSummary> = (0..rng.gen_range(1..10))
            .map(|_| {
                let mut s = SufficientStats::new(2);
                let c = [f64::from(rng.gen_range(0..2)), 0.0];
                for _ in 0..rng.gen_range(1..5) {
                    s.add(&c);
                }
                RawSummary(s)
            })
            .collect();
        for a in &summaries {
            for b in &summaries {
                let d = bubble_distance(a, b);
                assert!(!d.is_nan(), "NaN bubble distance");
                assert!(d >= 0.0, "negative bubble distance {d}");
            }
        }
        let ord = optics_bubbles(&summaries, f64::INFINITY, 3);
        assert_eq!(ord.len(), summaries.len());
        let ord2 = optics_bubbles(&summaries, 0.5, 3);
        assert_eq!(ord2.len(), summaries.len());
    }
}
