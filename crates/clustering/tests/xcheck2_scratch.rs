//! Scratch cross-checks part 2 (review only).

use idb_clustering::extract::{extract_clusters, ExtractParams};
use idb_clustering::reachability::{PlotEntry, ReachabilityPlot};
use idb_clustering::xi::{extract_xi, XiParams};
use idb_store::PointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_plot(rng: &mut StdRng, n: usize) -> ReachabilityPlot {
    let entries: Vec<PlotEntry> = (0..n)
        .map(|i| {
            let r = if i == 0 || rng.gen_bool(0.05) {
                f64::INFINITY
            } else {
                rng.gen_range(0.01..10.0)
            };
            PlotEntry {
                id: i as u64,
                reachability: r,
            }
        })
        .collect();
    ReachabilityPlot::from_entries(entries)
}

#[test]
fn xi_clusters_never_partially_overlap_and_in_bounds() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..80);
        let plot = random_plot(&mut rng, n);
        let clusters = extract_xi(&plot, &XiParams::new(0.1, 3));
        for c in &clusters {
            assert!(c.start < c.end, "seed {seed} bad range {c:?}");
            assert!(c.end <= n, "seed {seed} out of bounds {c:?} n {n}");
        }
        for a in &clusters {
            for b in &clusters {
                let disjoint = a.end <= b.start || b.end <= a.start;
                let nested = (a.start <= b.start && b.end <= a.end)
                    || (b.start <= a.start && a.end <= b.end);
                assert!(disjoint || nested, "seed {seed}: {a:?} vs {b:?}");
            }
        }
    }
}

#[test]
fn extract_clusters_cover_subset_and_in_bounds() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let n = rng.gen_range(1..100);
        let plot = random_plot(&mut rng, n);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        let mut seen = vec![false; n];
        for c in &clusters {
            for &id in c {
                assert!(!seen[id as usize], "seed {seed}: id {id} in two clusters");
                seen[id as usize] = true;
            }
        }
    }
}

fn brute_dbscan(pts: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<Option<usize>> {
    let n = pts.len();
    let d = |i: usize, j: usize| idb_geometry::dist(&pts[i], &pts[j]);
    let core: Vec<bool> = (0..n)
        .map(|i| (0..n).filter(|&j| d(i, j) <= eps).count() >= min_pts)
        .collect();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut c = 0usize;
    for i in 0..n {
        if !core[i] || labels[i].is_some() {
            continue;
        }
        // BFS over core points
        let mut stack = vec![i];
        labels[i] = Some(c);
        while let Some(x) = stack.pop() {
            for j in 0..n {
                if d(x, j) <= eps {
                    if labels[j].is_none() {
                        labels[j] = Some(c);
                        if core[j] {
                            stack.push(j);
                        }
                    }
                }
            }
        }
        c += 1;
    }
    labels
}

#[test]
fn dbscan_matches_bruteforce_partition() {
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let n = 50;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        for (eps, min_pts) in [(1.0, 3), (0.7, 4), (2.0, 6)] {
            let mut store = PointStore::new(2);
            for p in &pts {
                store.insert(p, None);
            }
            let res = idb_clustering::dbscan::dbscan(&store, eps, min_pts);
            let want = brute_dbscan(&pts, eps, min_pts);
            // Noise sets must match exactly; clustered points up to border
            // ambiguity: core points must agree as a partition.
            let d = |i: usize, j: usize| idb_geometry::dist(&pts[i], &pts[j]);
            let core: Vec<bool> = (0..n)
                .map(|i| (0..n).filter(|&j| d(i, j) <= eps).count() >= min_pts)
                .collect();
            for i in 0..n {
                assert_eq!(
                    res.labels[i].is_none(),
                    want[i].is_none(),
                    "seed {seed} eps {eps} mp {min_pts} pt {i}: noise mismatch (core={})",
                    core[i]
                );
            }
            // Core-point partition equality.
            for i in 0..n {
                for j in 0..n {
                    if core[i] && core[j] {
                        assert_eq!(
                            res.labels[i] == res.labels[j],
                            want[i] == want[j],
                            "seed {seed} eps {eps} mp {min_pts}: core pts {i},{j}"
                        );
                    }
                }
            }
        }
    }
}
