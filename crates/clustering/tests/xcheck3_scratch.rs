//! Dump the failing xi case (review only).
use idb_clustering::reachability::{PlotEntry, ReachabilityPlot};
use idb_clustering::xi::{extract_xi, XiParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_plot(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i == 0 || rng.gen_bool(0.05) {
                f64::INFINITY
            } else {
                rng.gen_range(0.01..10.0)
            }
        })
        .collect()
}

fn plot_of(reach: &[f64]) -> ReachabilityPlot {
    ReachabilityPlot::from_entries(
        reach
            .iter()
            .enumerate()
            .map(|(i, &r)| PlotEntry {
                id: i as u64,
                reachability: r,
            })
            .collect(),
    )
}

fn overlaps(r: &[f64]) -> Option<(usize, usize, usize, usize)> {
    let clusters = extract_xi(&plot_of(r), &XiParams::new(0.1, 3));
    for a in &clusters {
        for b in &clusters {
            let disjoint = a.end <= b.start || b.end <= a.start;
            let nested = (a.start <= b.start && b.end <= a.end)
                || (b.start <= a.start && a.end <= b.end);
            if !(disjoint || nested) {
                return Some((a.start, a.end, b.start, b.end));
            }
        }
    }
    None
}

#[test]
fn dump_failing_case() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = rng.gen_range(1..80);
    let mut r = random_plot(&mut rng, n);
    assert!(overlaps(&r).is_some(), "expected failure");
    // Greedy shrink: try removing elements while overlap persists.
    loop {
        let mut shrunk = false;
        for i in 0..r.len() {
            let mut cand = r.clone();
            cand.remove(i);
            if overlaps(&cand).is_some() {
                r = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    let (a0, a1, b0, b1) = overlaps(&r).unwrap();
    panic!("minimal plot ({} entries): {:?}\noverlap: [{a0},{a1}) vs [{b0},{b1})", r.len(), r);
}
