//! review only
use idb_clustering::reachability::{PlotEntry, ReachabilityPlot};
use idb_clustering::xi::{extract_xi, XiParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn plot_of(reach: &[f64]) -> ReachabilityPlot {
    ReachabilityPlot::from_entries(
        reach
            .iter()
            .enumerate()
            .map(|(i, &r)| PlotEntry {
                id: i as u64,
                reachability: r,
            })
            .collect(),
    )
}

#[test]
fn finite_interior_plots() {
    let mut bad = 0;
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(4..80);
        let r: Vec<f64> = (0..n)
            .map(|i| {
                if i == 0 {
                    f64::INFINITY
                } else {
                    rng.gen_range(0.01..10.0)
                }
            })
            .collect();
        let clusters = extract_xi(&plot_of(&r), &XiParams::new(0.1, 3));
        for a in &clusters {
            for b in &clusters {
                let disjoint = a.end <= b.start || b.end <= a.start;
                let nested = (a.start <= b.start && b.end <= a.end)
                    || (b.start <= a.start && a.end <= b.end);
                if !(disjoint || nested) {
                    bad += 1;
                    if bad < 3 {
                        eprintln!("seed {seed}: {a:?} vs {b:?}\n{r:?}");
                    }
                }
            }
        }
    }
    eprintln!("bad pairs: {bad}");
    // Also: does any cluster span an interior INF in the mixed case? Direct check.
    let r = [
        f64::INFINITY,
        3.36,
        f64::INFINITY,
        1.21,
        f64::INFINITY,
        1.74,
    ];
    let clusters = extract_xi(&plot_of(&r), &XiParams::new(0.1, 3));
    eprintln!("mixed case clusters: {clusters:?}");
    assert!(bad == 0, "finite-interior overlaps found");
}
