//! review only: validity of NN-chain dendrogram under ties.
use idb_clustering::agglomerative::{agglomerative_points, Linkage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replays merges in emitted (sorted) order and checks each height equals
/// the true linkage distance between the two clusters at merge time.
fn check_valid(pts: &[Vec<f64>], linkage: Linkage, seed: u64) -> Result<(), String> {
    let r = agglomerative_points(pts, linkage);
    let n = pts.len();
    // cluster membership: map slot -> member set
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut slot: Vec<usize> = (0..n).collect(); // point -> current cluster slot root
    let d0 = |i: usize, j: usize| {
        let v = idb_geometry::dist(&pts[i], &pts[j]);
        if linkage == Linkage::Ward {
            v * v
        } else {
            v
        }
    };
    for m in r.merges() {
        let sa = slot[m.a];
        let sb = slot[m.b];
        if sa == sb {
            return Err(format!(
                "seed {seed} {linkage:?}: merge {m:?} within one cluster"
            ));
        }
        let (ca, cb) = (&members[sa], &members[sb]);
        let true_h = match linkage {
            Linkage::Single => {
                let mut best = f64::INFINITY;
                for &x in ca {
                    for &y in cb {
                        best = best.min(d0(x, y));
                    }
                }
                best
            }
            Linkage::Complete => {
                let mut best = 0.0f64;
                for &x in ca {
                    for &y in cb {
                        best = best.max(d0(x, y));
                    }
                }
                best
            }
            Linkage::Average => {
                let mut s = 0.0;
                for &x in ca {
                    for &y in cb {
                        s += d0(x, y);
                    }
                }
                s / (ca.len() * cb.len()) as f64
            }
            Linkage::Ward => {
                // Ward height via centroid formula: (|A||B|/(|A|+|B|)) * ||ma-mb||^2
                let dim = pts[0].len();
                let mean = |c: &Vec<usize>| -> Vec<f64> {
                    let mut v = vec![0.0; dim];
                    for &x in c {
                        for k in 0..dim {
                            v[k] += pts[x][k];
                        }
                    }
                    for k in 0..dim {
                        v[k] /= c.len() as f64;
                    }
                    v
                };
                let (ma, mb) = (mean(ca), mean(cb));
                let sq = idb_geometry::sq_dist(&ma, &mb);
                2.0 * (ca.len() * cb.len()) as f64 / (ca.len() + cb.len()) as f64 * sq
            }
        };
        if (m.height - true_h).abs() > 1e-7 {
            return Err(format!(
                "seed {seed} {linkage:?}: merge height {} but true linkage distance {true_h}",
                m.height
            ));
        }
        // apply merge
        let moved = std::mem::take(&mut members[sb]);
        for &x in &moved {
            slot[x] = sa;
        }
        members[sa].extend(moved);
    }
    Ok(())
}

#[test]
fn nn_chain_dendrogram_is_valid_under_ties() {
    let mut failures = Vec::new();
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let n = 18;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64])
            .collect();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            if let Err(e) = check_valid(&pts, linkage, seed) {
                failures.push(e);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} failures, first 5:\n{}",
        failures.len(),
        failures[..failures.len().min(5)].join("\n")
    );
}
