//! End-to-end clustering pipeline tests on synthetic data.
//!
//! These exercise the exact pipeline of the paper's evaluation: build data
//! bubbles over a labeled mixture → OPTICS over the bubbles → expand with
//! virtual reachability → extract flat clusters — and cross-check against
//! point-level OPTICS on the same data.

use idb_clustering::{extract_clusters, optics_bubbles, optics_points, ExtractParams};
use idb_core::{IncrementalBubbles, MaintainerConfig};
use idb_geometry::SearchStats;
use idb_store::{PointId, PointStore};
use idb_synth::{ClusterModel, MixtureModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn three_cluster_store(n: usize, seed: u64) -> PointStore {
    let model = MixtureModel::new(
        2,
        vec![
            ClusterModel::new(vec![15.0, 15.0], 2.0),
            ClusterModel::new(vec![50.0, 50.0], 2.0),
            ClusterModel::new(vec![85.0, 15.0], 2.0),
        ],
        0.02,
        (0.0, 100.0),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    model.populate(n, &mut rng)
}

/// Majority ground-truth label of each extracted cluster; the fraction of
/// members carrying it (purity) and coverage of clustered points.
fn purity(store: &PointStore, clusters: &[Vec<u64>]) -> (f64, usize) {
    let mut pure = 0usize;
    let mut total = 0usize;
    for cluster in clusters {
        let mut counts: HashMap<Option<u32>, usize> = HashMap::new();
        for &id in cluster {
            *counts.entry(store.label(PointId(id as u32))).or_default() += 1;
        }
        let best = counts.values().copied().max().unwrap_or(0);
        pure += best;
        total += cluster.len();
    }
    (pure as f64 / total.max(1) as f64, total)
}

#[test]
fn point_level_optics_recovers_generated_clusters() {
    let store = three_cluster_store(1200, 42);
    let plot = optics_points(&store, f64::INFINITY, 8);
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(40));
    assert_eq!(clusters.len(), 3, "three generated clusters");
    let (p, covered) = purity(&store, &clusters);
    assert!(p > 0.95, "purity {p}");
    assert!(covered > 1000, "coverage {covered}");
}

#[test]
fn bubble_level_optics_matches_point_level_structure() {
    let store = three_cluster_store(3000, 7);
    let mut rng = StdRng::seed_from_u64(99);
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(60), &mut rng, &mut search);

    let min_pts = 8;
    let ordering = optics_bubbles(ib.bubbles(), f64::INFINITY, min_pts);
    let plot = ordering.expand(|i| {
        ib.bubble(i)
            .members()
            .iter()
            .map(|id| u64::from(id.0))
            .collect::<Vec<_>>()
    });
    assert_eq!(plot.len(), store.len(), "expansion covers every point");

    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(60));
    assert_eq!(
        clusters.len(),
        3,
        "bubble pipeline finds the three clusters"
    );
    let (p, covered) = purity(&store, &clusters);
    assert!(p > 0.9, "purity {p}");
    assert!(
        covered as f64 > store.len() as f64 * 0.8,
        "coverage {covered}"
    );
}

#[test]
fn expansion_emits_each_member_exactly_once() {
    let store = three_cluster_store(800, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(24), &mut rng, &mut search);
    let ordering = optics_bubbles(ib.bubbles(), f64::INFINITY, 5);
    let plot = ordering.expand(|i| {
        ib.bubble(i)
            .members()
            .iter()
            .map(|id| u64::from(id.0))
            .collect::<Vec<_>>()
    });
    let mut seen: Vec<u64> = plot.entries().iter().map(|e| e.id).collect();
    seen.sort_unstable();
    let mut want: Vec<u64> = store.ids().map(|id| u64::from(id.0)).collect();
    want.sort_unstable();
    assert_eq!(seen, want);
}

#[test]
fn xi_extraction_agrees_with_cluster_tree_on_real_plots() {
    use idb_clustering::{extract_xi, xi::xi_cluster_ids, XiParams};
    let store = three_cluster_store(1500, 11);
    let plot = optics_points(&store, f64::INFINITY, 8);

    let tree_clusters = extract_clusters(&plot, &ExtractParams::with_min_size(50));
    let xi_clusters = extract_xi(&plot, &XiParams::new(0.05, 50));
    let xi_ids = xi_cluster_ids(&plot, &xi_clusters);

    assert_eq!(tree_clusters.len(), 3);
    // ξ produces a nested hierarchy; its *minimal* clusters must align
    // with the three generated blobs: for every tree cluster there is a ξ
    // cluster sharing > 80 % of its members.
    for tc in &tree_clusters {
        let tc_set: std::collections::HashSet<u64> = tc.iter().copied().collect();
        let best = xi_ids
            .iter()
            .map(|xc| xc.iter().filter(|id| tc_set.contains(id)).count())
            .max()
            .unwrap_or(0);
        assert!(
            best as f64 > tc.len() as f64 * 0.8,
            "xi misses a generated cluster (best overlap {best}/{})",
            tc.len()
        );
    }
    // Purity is only meaningful for the *leaves* of the ξ hierarchy —
    // outer clusters legitimately mix the classes they nest.
    let leaves: Vec<Vec<u64>> = xi_clusters
        .iter()
        .zip(&xi_ids)
        .filter(|(outer, _)| {
            !xi_clusters.iter().any(|inner| {
                inner != *outer && outer.start <= inner.start && inner.end <= outer.end
            })
        })
        .map(|(_, ids)| ids.clone())
        .collect();
    assert!(!leaves.is_empty());
    let (p, _) = purity(&store, &leaves);
    assert!(p > 0.9, "xi leaf purity {p}");
}

#[test]
fn bubble_pipeline_handles_single_cluster() {
    let model = MixtureModel::new(
        2,
        vec![ClusterModel::new(vec![50.0, 50.0], 3.0)],
        0.0,
        (0.0, 100.0),
    );
    let mut rng = StdRng::seed_from_u64(17);
    let store = model.populate(600, &mut rng);
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(12), &mut rng, &mut search);
    let ordering = optics_bubbles(ib.bubbles(), f64::INFINITY, 5);
    let plot = ordering.expand(|i| {
        ib.bubble(i)
            .members()
            .iter()
            .map(|id| u64::from(id.0))
            .collect::<Vec<_>>()
    });
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(30));
    assert_eq!(clusters.len(), 1, "one blob, one cluster");
}
