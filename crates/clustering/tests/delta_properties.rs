//! Property-based tests for the incremental clustering primitives in
//! isolation: the [`PairCache`] distance matrix and the [`TreeCache`]
//! component-reuse extraction.
//!
//! Two locality/soundness contracts:
//!
//! * random bubble-set edits (stat changes, pushes, swap-removes)
//!   change the refreshed distance matrix **only** inside the predicted
//!   dirty neighborhood (rows and columns of edited slots), and the
//!   matrix — hence the ordering fed from it — is bit-identical to a
//!   from-scratch computation;
//! * random reachability-plot edits leave [`cluster_tree_delta`]
//!   bit-identical to [`cluster_tree`], with the nesting invariants of
//!   the extracted hierarchy holding after every delta.

use idb_clustering::{
    bubble_distance, cluster_tree, cluster_tree_delta, optics_bubbles_with, optics_from_matrix,
    ClusterNode, ExtractParams, PairCache, ReachabilityPlot, TreeCache,
};
use idb_core::DataSummary;
use idb_geometry::Parallelism;
use proptest::prelude::*;

/// A minimal summary for matrix-level tests: a weighted ball.
#[derive(Debug, Clone)]
struct Orb {
    at: Vec<f64>,
    count: u64,
    radius: f64,
}

impl DataSummary for Orb {
    fn dim(&self) -> usize {
        self.at.len()
    }
    fn n(&self) -> u64 {
        self.count
    }
    fn rep(&self) -> Vec<f64> {
        self.at.clone()
    }
    fn extent(&self) -> f64 {
        self.radius
    }
    fn nn_dist(&self, k: usize) -> f64 {
        // Distinct per-k values so orderings exercise real variation.
        self.radius * (k as f64).sqrt() / (self.count as f64).max(1.0).sqrt()
    }
}

/// Raw generator output for one [`Orb`]: center, count, radius. The
/// offline proptest stub has no `prop_map`, so tuples are mapped into
/// `Orb`s inside the test body.
type OrbRaw = (Vec<f64>, u64, f64);

fn orb_strategy() -> impl Strategy<Value = OrbRaw> {
    (
        prop::collection::vec(-50.0f64..50.0, 2),
        1u64..40,
        0.1f64..6.0,
    )
}

fn orb_of((at, count, radius): OrbRaw) -> Orb {
    Orb { at, count, radius }
}

/// Raw generator output for one mutation: an opcode (0 = touch,
/// 1 = push, 2 = swap-remove), a raw slot index (taken modulo the live
/// length), and replacement stats for touch/push.
type EditRaw = (u32, usize, OrbRaw);

fn edit_strategy() -> impl Strategy<Value = EditRaw> {
    (0u32..3, 0usize..1_000_000, orb_strategy())
}

/// The canonical from-scratch matrix: upper triangle in index order,
/// mirrored — the exact orientation `optics_bubbles_with` builds.
fn scratch_matrix(orbs: &[Orb]) -> Vec<f64> {
    let s = orbs.len();
    let mut m = vec![0.0f64; s * s];
    for x in 0..s {
        for y in (x + 1)..s {
            let d = bubble_distance(&orbs[x], &orbs[y]);
            m[x * s + y] = d;
            m[y * s + x] = d;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Touch-only edit batches: the refreshed matrix is bit-identical to
    /// scratch, entries outside the dirty rows/columns are untouched
    /// bit-for-bit, and the refresh work equals the dirty-slot count.
    #[test]
    fn touches_only_reach_the_predicted_neighborhood(
        raw_orbs in prop::collection::vec(orb_strategy(), 3..14),
        batches in prop::collection::vec(
            prop::collection::vec((0usize..1_000_000, orb_strategy()), 1..4),
            1..5,
        ),
    ) {
        let mut orbs: Vec<Orb> = raw_orbs.into_iter().map(orb_of).collect();
        let s = orbs.len();
        let mut cache = PairCache::new();
        cache.reset(s);
        prop_assert_eq!(cache.refresh(&orbs, Parallelism::Serial), s);
        let all: Vec<usize> = (0..s).collect();
        let mut prev = cache.live_view(&all);

        for batch in batches {
            let mut dirty = std::collections::HashSet::new();
            for (i, raw) in batch {
                let slot = i % s;
                orbs[slot] = orb_of(raw);
                cache.touch(slot);
                dirty.insert(slot);
            }
            prop_assert_eq!(cache.refresh(&orbs, Parallelism::Serial), dirty.len());
            let next = cache.live_view(&all);
            // Bit-identical to scratch over the edited set…
            let scratch = scratch_matrix(&orbs);
            for (got, want) in next.iter().zip(&scratch) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
            // …and untouched outside the dirty neighborhood.
            for x in 0..s {
                for y in 0..s {
                    if !dirty.contains(&x) && !dirty.contains(&y) {
                        prop_assert_eq!(
                            next[x * s + y].to_bits(),
                            prev[x * s + y].to_bits(),
                            "clean entry ({}, {}) changed", x, y
                        );
                    }
                }
            }
            prev = next;
        }
    }

    /// Arbitrary edit sequences (touch, push, swap-remove): the cache
    /// matrix stays bit-identical to scratch and the ordering computed
    /// from it equals the from-scratch `optics_bubbles_with` ordering.
    #[test]
    fn any_edit_sequence_stays_bit_identical_to_scratch(
        raw_orbs in prop::collection::vec(orb_strategy(), 3..12),
        edits in prop::collection::vec(edit_strategy(), 1..12),
        min_pts in 1usize..30,
    ) {
        let mut orbs: Vec<Orb> = raw_orbs.into_iter().map(orb_of).collect();
        let mut cache = PairCache::new();
        cache.reset(orbs.len());
        cache.refresh(&orbs, Parallelism::Serial);

        for (op, i, raw) in edits {
            match op {
                0 => {
                    let slot = i % orbs.len();
                    orbs[slot] = orb_of(raw);
                    cache.touch(slot);
                }
                1 => {
                    orbs.push(orb_of(raw));
                    cache.push();
                }
                _ => {
                    if orbs.len() > 3 {
                        let slot = i % orbs.len();
                        orbs.swap_remove(slot);
                        cache.swap_remove(slot);
                    }
                }
            }
            cache.refresh(&orbs, Parallelism::Serial);
            let all: Vec<usize> = (0..orbs.len()).collect();
            let matrix = cache.live_view(&all);
            let scratch = scratch_matrix(&orbs);
            for (got, want) in matrix.iter().zip(&scratch) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }

            let from_cache = optics_from_matrix(&orbs, &all, &matrix, f64::INFINITY, min_pts);
            let from_scratch =
                optics_bubbles_with(&orbs, f64::INFINITY, min_pts, Parallelism::Serial);
            prop_assert_eq!(&from_cache.order, &from_scratch.order);
            let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(
                bits(&from_cache.reachability),
                bits(&from_scratch.reachability)
            );
            prop_assert_eq!(
                bits(&from_cache.virtual_reachability),
                bits(&from_scratch.virtual_reachability)
            );
        }
    }
}

// --- Tree extraction ----------------------------------------------------

/// Preorder serialization for bit-exact tree comparison.
fn tree_bits(node: &ClusterNode) -> Vec<(usize, usize, u64, usize)> {
    fn walk(n: &ClusterNode, out: &mut Vec<(usize, usize, u64, usize)>) {
        out.push((
            n.range.0,
            n.range.1,
            n.split_value.map_or(u64::MAX, f64::to_bits),
            n.children.len(),
        ));
        for c in &n.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out);
    out
}

/// The nesting invariants of an extracted hierarchy: children sit
/// inside their parent's range, in order, each strictly smaller than
/// its parent, every non-root node carrying a split value.
fn assert_nesting(node: &ClusterNode) {
    let (start, end) = node.range;
    assert!(start <= end, "range is well-formed");
    let mut prev_start = start;
    for child in &node.children {
        assert!(child.range.0 >= prev_start, "children are ordered");
        assert!(child.range.0 >= start && child.range.1 <= end, "nested");
        assert!(
            child.range.1 - child.range.0 < end - start,
            "a child is strictly smaller than its parent"
        );
        assert!(child.split_value.is_some(), "non-root nodes carry a split");
        prev_start = child.range.0;
        assert_nesting(child);
    }
}

fn plot_of(entries: &[(u64, f64)]) -> ReachabilityPlot {
    let mut plot = ReachabilityPlot::new();
    for &(id, r) in entries {
        plot.push(id, r);
    }
    plot
}

/// Raw reachability value: a finite draw plus an infinity marker (0
/// means the entry becomes an infinity, i.e. starts a new component).
type ReachRaw = (f64, u32);

fn reach_strategy() -> impl Strategy<Value = ReachRaw> {
    (0.1f64..20.0, 0u32..6)
}

fn reach_of((finite, marker): ReachRaw) -> f64 {
    if marker == 0 {
        f64::INFINITY
    } else {
        finite
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random plots under random edits: the cache-maintained extraction
    /// equals the from-scratch tree bit for bit, and the nesting
    /// invariants hold after every delta.
    #[test]
    fn cached_extraction_is_bit_identical_under_random_edits(
        raw_reaches in prop::collection::vec(reach_strategy(), 6..60),
        edits in prop::collection::vec((0usize..1_000_000, reach_strategy()), 1..10),
        min_size in 1usize..8,
    ) {
        let mut entries: Vec<(u64, f64)> = raw_reaches
            .into_iter()
            .enumerate()
            .map(|(i, raw)| (i as u64, reach_of(raw)))
            .collect();
        entries[0].1 = f64::INFINITY; // every plot starts a component
        let params = ExtractParams::with_min_size(min_size);
        let mut cache = TreeCache::new();

        for round in 0..=edits.len() {
            if round > 0 {
                let (i, raw) = &edits[round - 1];
                let slot = i % entries.len();
                entries[slot].1 = reach_of(*raw);
                entries[0].1 = f64::INFINITY;
            }
            let plot = plot_of(&entries);
            let (tree, stats) = cluster_tree_delta(&plot, &params, &mut cache);
            let scratch = cluster_tree(&plot, &params);
            prop_assert_eq!(tree_bits(&tree), tree_bits(&scratch), "round {}", round);
            assert_nesting(&tree);
            // Noise-sized components can be merged into a neighbouring
            // leaf without an exact-range recursion call, so the two
            // counters need not cover every component — but they can
            // never exceed them.
            prop_assert!(stats.reused + stats.rebuilt <= stats.components);
        }
    }

    /// A parameter change between epochs must not leak stale cached
    /// subtrees (the parameter fingerprint clears the cache).
    #[test]
    fn a_parameter_change_never_reuses_stale_subtrees(
        raw_reaches in prop::collection::vec(reach_strategy(), 8..40),
        sizes in prop::collection::vec(1usize..8, 2..5),
    ) {
        let mut entries: Vec<(u64, f64)> = raw_reaches
            .into_iter()
            .enumerate()
            .map(|(i, raw)| (i as u64, reach_of(raw)))
            .collect();
        entries[0].1 = f64::INFINITY;
        let plot = plot_of(&entries);
        let mut cache = TreeCache::new();
        for min_size in sizes {
            let params = ExtractParams::with_min_size(min_size);
            let (tree, _) = cluster_tree_delta(&plot, &params, &mut cache);
            prop_assert_eq!(tree_bits(&tree), tree_bits(&cluster_tree(&plot, &params)));
            assert_nesting(&tree);
        }
    }
}

/// Deterministic reuse locality: with several well-sized components, an
/// edit inside one of them rebuilds only that component's subtree — the
/// untouched siblings come back from the cache.
#[test]
fn an_edit_to_one_component_reuses_the_untouched_ones() {
    // Four components of twelve entries each, every one large enough to
    // receive its own exact-range recursion call.
    let mut entries: Vec<(u64, f64)> = Vec::new();
    for c in 0..4u64 {
        for (j, r) in [
            f64::INFINITY,
            9.0,
            5.0,
            3.0,
            4.0,
            8.0,
            9.5,
            5.5,
            3.5,
            4.5,
            8.5,
            9.0,
        ]
        .into_iter()
        .enumerate()
        {
            entries.push((c * 12 + j as u64, r + c as f64 * 0.01));
        }
    }
    let params = ExtractParams::with_min_size(3);
    let mut cache = TreeCache::new();

    let plot = plot_of(&entries);
    let (tree, first) = cluster_tree_delta(&plot, &params, &mut cache);
    assert_eq!(tree_bits(&tree), tree_bits(&cluster_tree(&plot, &params)));
    assert_eq!(first.components, 4);
    assert_eq!(first.reused, 0, "a cold cache reuses nothing");

    // Touch one entry in the second component only.
    entries[17].1 = 2.0;
    let plot = plot_of(&entries);
    let (tree, second) = cluster_tree_delta(&plot, &params, &mut cache);
    assert_eq!(tree_bits(&tree), tree_bits(&cluster_tree(&plot, &params)));
    assert_eq!(second.components, 4);
    assert!(
        second.reused >= 2,
        "untouched components must come from the cache: {second:?}"
    );
    assert!(
        second.rebuilt <= 2,
        "only the touched neighborhood rebuilds: {second:?}"
    );

    // A no-op epoch reuses everything that was reusable before.
    let (tree, third) = cluster_tree_delta(&plot, &params, &mut cache);
    assert_eq!(tree_bits(&tree), tree_bits(&cluster_tree(&plot, &params)));
    assert_eq!(third.rebuilt, 0, "nothing changed: {third:?}");
    assert!(third.reused >= second.reused + second.rebuilt);
}
