//! Property-based tests for the clustering substrate.

use idb_clustering::{
    agglomerative::{agglomerative_points, Linkage},
    extract_clusters, extract_clusters_at,
    kmeans::kmeans_weighted,
    optics_points,
    slink::slink_points,
    ExtractParams,
};
use idb_store::PointStore;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn points(dim: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim), 2..max)
}

fn store_of(pts: &[Vec<f64>]) -> PointStore {
    let mut s = PointStore::new(pts[0].len());
    for p in pts {
        s.insert(p, None);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// OPTICS emits every point exactly once, for any eps and min_pts.
    #[test]
    fn optics_is_a_permutation(
        pts in points(2, 80),
        eps in prop::sample::select(vec![5.0, 50.0, f64::INFINITY]),
        min_pts in 1usize..8,
    ) {
        let store = store_of(&pts);
        let plot = optics_points(&store, eps, min_pts);
        prop_assert_eq!(plot.len(), store.len());
        let mut got: Vec<u64> = plot.entries().iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = store.ids().map(|id| u64::from(id.0)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // The first entry of the plot is always an infinity (new component).
        prop_assert!(plot.entries()[0].reachability.is_infinite());
    }

    /// Extracted clusters are disjoint contiguous subsets of the plot.
    #[test]
    fn extraction_yields_disjoint_clusters(
        pts in points(2, 80),
        min_size in 2usize..10,
    ) {
        let store = store_of(&pts);
        let plot = optics_points(&store, f64::INFINITY, 3);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(min_size));
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            prop_assert!(c.len() >= min_size);
            for id in c {
                prop_assert!(seen.insert(*id), "id {id} in two clusters");
            }
        }
        prop_assert!(seen.len() <= plot.len());
    }

    /// Horizontal cuts also yield disjoint clusters covering at most the
    /// whole plot, and a cut above the maximum finite reachability puts
    /// everything into one cluster.
    #[test]
    fn horizontal_cut_properties(pts in points(2, 60)) {
        let store = store_of(&pts);
        let plot = optics_points(&store, f64::INFINITY, 2);
        let max = plot.max_finite_reachability().unwrap_or(1.0);
        let all = extract_clusters_at(&plot, max + 1.0, 1);
        prop_assert_eq!(all.len(), 1);
        prop_assert_eq!(all[0].len(), plot.len());

        let some = extract_clusters_at(&plot, max / 2.0, 2);
        let mut seen = std::collections::HashSet::new();
        for c in &some {
            for id in c {
                prop_assert!(seen.insert(*id));
            }
        }
    }

    /// SLINK and the NN-chain single-link implementation produce identical
    /// merge-height multisets on any input.
    #[test]
    fn slink_equals_nn_chain_single(pts in points(3, 40)) {
        let slk = slink_points(&pts);
        let agg = agglomerative_points(&pts, Linkage::Single);
        let mut a = slk.merge_levels();
        let mut b: Vec<f64> = agg.merges().iter().map(|m| m.height).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    /// Cutting any linkage into k clusters yields exactly min(k, n) labels.
    #[test]
    fn cut_into_respects_k(
        pts in points(2, 40),
        k in 1usize..10,
    ) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Ward] {
            let labels = agglomerative_points(&pts, linkage).cut_into(k);
            let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
            prop_assert_eq!(distinct.len(), k.min(pts.len()), "{:?}", linkage);
        }
    }

    /// Weighted k-means: assignments index live centroids and the inertia
    /// never exceeds the single-centroid inertia.
    #[test]
    fn kmeans_inertia_monotone_in_k(
        pts in points(2, 60),
        seed in 0u64..1000,
    ) {
        let weights = vec![1.0; pts.len()];
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let one = kmeans_weighted(&pts, &weights, 1, 30, &mut rng1);
        let many = kmeans_weighted(&pts, &weights, 4, 30, &mut rng2);
        for &a in &many.assignments {
            prop_assert!(a < many.centroids.len());
        }
        prop_assert!(many.inertia <= one.inertia + 1e-9);
    }
}
