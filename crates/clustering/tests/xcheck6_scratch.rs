//! review only: degenerate-input fuzz.
use idb_clustering::extract::{extract_clusters, ExtractParams};
use idb_clustering::optics_bubbles::{bubble_distance, optics_bubbles};
use idb_clustering::optics_points;
use idb_clustering::xi::{extract_xi, XiParams};
use idb_core::{DataSummary, SufficientStats};
use idb_store::PointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
struct B(SufficientStats);
impl DataSummary for B {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn n(&self) -> u64 {
        self.0.n()
    }
    fn rep(&self) -> Vec<f64> {
        self.0.rep().unwrap()
    }
    fn extent(&self) -> f64 {
        self.0.extent()
    }
    fn nn_dist(&self, k: usize) -> f64 {
        self.0.nn_dist(k)
    }
}

#[test]
fn degenerate_fuzz() {
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..40);
        // Duplicate-heavy points.
        let mut store = PointStore::new(2);
        let mut pts = Vec::new();
        for _ in 0..n {
            let p = vec![rng.gen_range(0..3) as f64, rng.gen_range(0..3) as f64];
            store.insert(&p, None);
            pts.push(p);
        }
        for (eps, mp) in [(f64::INFINITY, 3), (1.0, 2), (0.0_f64.max(0.5), 7)] {
            let plot = optics_points(&store, eps, mp);
            assert_eq!(plot.len(), n);
            let _ = extract_clusters(&plot, &ExtractParams::with_min_size(3));
            let _ = extract_xi(&plot, &XiParams::new(0.15, 3));
        }
        // Bubbles, incl. singletons and coincident bubbles.
        let summaries: Vec<B> = (0..rng.gen_range(1..10))
            .map(|_| {
                let mut s = SufficientStats::new(2);
                let c = [rng.gen_range(0..2) as f64, 0.0];
                for _ in 0..rng.gen_range(1..5) {
                    s.add(&c);
                }
                B(s)
            })
            .collect();
        for a in &summaries {
            for b in &summaries {
                let d = bubble_distance(a, b);
                assert!(!d.is_nan(), "NaN bubble distance");
                assert!(d >= 0.0, "negative bubble distance {d}");
            }
        }
        let ord = optics_bubbles(&summaries, f64::INFINITY, 3);
        assert_eq!(ord.len(), summaries.len());
        let ord2 = optics_bubbles(&summaries, 0.5, 3);
        assert_eq!(ord2.len(), summaries.len());
    }
}
