//! Scratch cross-checks (review only).

use idb_clustering::agglomerative::{agglomerative_points, Linkage};
use idb_clustering::optics_points;
use idb_store::PointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force OPTICS reference: O(n^2), textbook.
fn optics_ref(points: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<(usize, f64)> {
    let n = points.len();
    let d = |i: usize, j: usize| idb_geometry::dist(&points[i], &points[j]);
    let mut processed = vec![false; n];
    let mut reach = vec![f64::INFINITY; n];
    let mut out = Vec::new();
    let core_dist = |i: usize| -> f64 {
        let mut ds: Vec<f64> = (0..n).map(|j| d(i, j)).filter(|&x| x <= eps).collect();
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if ds.len() < min_pts {
            f64::INFINITY
        } else {
            ds[min_pts - 1]
        }
    };
    for start in 0..n {
        if processed[start] {
            continue;
        }
        // seeds as a simple list, take min each step (reference, slow)
        processed[start] = true;
        out.push((start, f64::INFINITY));
        let update =
            |i: usize, processed: &[bool], reach: &mut Vec<f64>, seeds: &mut Vec<usize>| {
                let cd = core_dist(i);
                if cd.is_infinite() {
                    return;
                }
                for j in 0..n {
                    if processed[j] || j == i {
                        continue;
                    }
                    let dij = d(i, j);
                    if dij > eps {
                        continue;
                    }
                    let r = cd.max(dij);
                    if r < reach[j] {
                        reach[j] = r;
                        if !seeds.contains(&j) {
                            seeds.push(j);
                        }
                    }
                }
            };
        let mut seeds: Vec<usize> = Vec::new();
        update(start, &processed, &mut reach, &mut seeds);
        while !seeds.is_empty() {
            // pick min reach, tie-break smaller index
            let mut best = 0usize;
            for k in 1..seeds.len() {
                let (a, b) = (seeds[k], seeds[best]);
                if reach[a] < reach[b] || (reach[a] == reach[b] && a < b) {
                    best = k;
                }
            }
            let i = seeds.swap_remove(best);
            processed[i] = true;
            out.push((i, reach[i]));
            update(i, &processed, &mut reach, &mut seeds);
        }
    }
    out
}

#[test]
fn optics_matches_reference_reach_multiset() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 60;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        for (eps, min_pts) in [(f64::INFINITY, 4), (1.5, 3), (0.8, 5), (2.5, 1)] {
            let mut store = PointStore::new(2);
            for p in &pts {
                store.insert(p, None);
            }
            let plot = optics_points(&store, eps, min_pts);
            let mut got: Vec<f64> = plot.entries().iter().map(|e| e.reachability).collect();
            let reference = optics_ref(&pts, eps, min_pts);
            let mut want: Vec<f64> = reference.iter().map(|&(_, r)| r).collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() < 1e-9 || (g.is_infinite() && w.is_infinite()),
                    "seed {seed} eps {eps} min_pts {min_pts}: {g} vs {w}\n got {got:?}\nwant {want:?}"
                );
            }
        }
    }
}

/// Brute-force agglomerative: repeatedly merge the globally closest pair.
fn agg_ref(points: &[Vec<f64>], linkage: Linkage) -> Vec<f64> {
    let n = points.len();
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut v = idb_geometry::dist(&points[i], &points[j]);
            if linkage == Linkage::Ward {
                v *= v;
            }
            d[i * n + j] = v;
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut size = vec![1.0f64; n];
    let mut heights = Vec::new();
    while active.len() > 1 {
        let (mut ba, mut bb, mut best) = (0, 0, f64::INFINITY);
        for (x, &i) in active.iter().enumerate() {
            for &j in &active[x + 1..] {
                if d[i * n + j] < best {
                    best = d[i * n + j];
                    ba = i;
                    bb = j;
                }
            }
        }
        heights.push(best);
        let (na, nb) = (size[ba], size[bb]);
        for &m in &active {
            if m == ba || m == bb {
                continue;
            }
            let dam = d[ba * n + m];
            let dbm = d[bb * n + m];
            let nm = size[m];
            let new = match linkage {
                Linkage::Single => dam.min(dbm),
                Linkage::Complete => dam.max(dbm),
                Linkage::Average => (na * dam + nb * dbm) / (na + nb),
                Linkage::Ward => ((na + nm) * dam + (nb + nm) * dbm - nm * best) / (na + nb + nm),
            };
            d[ba * n + m] = new;
            d[m * n + ba] = new;
        }
        size[ba] += size[bb];
        active.retain(|&x| x != bb);
    }
    heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
    heights
}

#[test]
fn nn_chain_matches_bruteforce_heights() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let n = 25;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let got: Vec<f64> = {
                let mut h: Vec<f64> = agglomerative_points(&pts, linkage)
                    .merges()
                    .iter()
                    .map(|m| m.height)
                    .collect();
                h.sort_by(|a, b| a.partial_cmp(b).unwrap());
                h
            };
            let want = agg_ref(&pts, linkage);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-7, "seed {seed} {linkage:?}: {g} vs {w}");
            }
        }
    }
}

/// Ties: integer grid points force many equal distances. Only single
/// linkage is checked here — its sorted merge heights are the MST edge
/// weights, a multiset invariant under any tie-breaking order. For the
/// other linkages, tied merges taken in a different order legitimately
/// change later heights, so NN-chain and the greedy reference need not
/// agree (the tie-free test above covers them).
#[test]
fn nn_chain_matches_bruteforce_heights_with_ties() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let n = 20;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64])
            .collect();
        for linkage in [Linkage::Single] {
            let got: Vec<f64> = {
                let mut h: Vec<f64> = agglomerative_points(&pts, linkage)
                    .merges()
                    .iter()
                    .map(|m| m.height)
                    .collect();
                h.sort_by(|a, b| a.partial_cmp(b).unwrap());
                h
            };
            let want = agg_ref(&pts, linkage);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() < 1e-7,
                    "seed {seed} {linkage:?}: got {got:?} want {want:?}"
                );
            }
        }
    }
}
