//! DBSCAN — flat density-based clustering (Ester et al., the paper's \[9\]).
//!
//! Included as the flat-clustering baseline: OPTICS generalizes DBSCAN, and
//! several tests use DBSCAN as an oracle for "what the obvious clusters
//! are" on synthetic data. ε-neighbourhood queries use the k-d tree over a
//! snapshot of the store.

use idb_geometry::KdTree;
use idb_store::{PointId, PointStore};

/// Result of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Ids in snapshot order.
    pub ids: Vec<PointId>,
    /// Cluster label per id (`None` = noise), aligned with `ids`.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Clusters as id lists, indexed by cluster label.
    #[must_use]
    pub fn clusters(&self) -> Vec<Vec<PointId>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (id, label) in self.ids.iter().zip(&self.labels) {
            if let Some(c) = label {
                out[*c].push(*id);
            }
        }
        out
    }

    /// Ids labelled as noise.
    #[must_use]
    pub fn noise(&self) -> Vec<PointId> {
        self.ids
            .iter()
            .zip(&self.labels)
            .filter(|(_, l)| l.is_none())
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Runs DBSCAN over all live points.
///
/// A point is a *core point* when at least `min_pts` points (itself
/// included) lie within `eps`. Clusters are the connected components of
/// core points under the ε-relation plus their border points; everything
/// else is noise.
///
/// # Panics
/// Panics if `min_pts == 0` or `eps` is not positive and finite.
#[must_use]
pub fn dbscan(store: &PointStore, eps: f64, min_pts: usize) -> DbscanResult {
    assert!(min_pts > 0, "min_pts must be positive");
    assert!(
        eps > 0.0 && eps.is_finite(),
        "eps must be positive and finite"
    );
    let n = store.len();
    let ids: Vec<PointId> = store.ids().collect();
    let coords: Vec<&[f64]> = ids.iter().map(|&id| store.point(id)).collect();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    if n == 0 {
        return DbscanResult {
            ids,
            labels,
            num_clusters: 0,
        };
    }
    let tree = KdTree::build(
        store.dim(),
        ids.iter().enumerate().map(|(i, _)| (i as u64, coords[i])),
    );

    let mut visited = vec![false; n];
    let mut num_clusters = 0usize;
    let mut queue: Vec<u32> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let neigh = tree.range(coords[start], eps);
        if neigh.len() < min_pts {
            continue; // noise (may later become a border point)
        }
        let cluster = num_clusters;
        num_clusters += 1;
        labels[start] = Some(cluster);
        queue.clear();
        queue.extend(neigh.iter().map(|&(i, _)| i as u32));
        while let Some(j) = queue.pop() {
            let j = j as usize;
            if labels[j].is_none() {
                labels[j] = Some(cluster); // border or core
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let jn = tree.range(coords[j], eps);
            if jn.len() >= min_pts {
                queue.extend(jn.iter().map(|&(i, _)| i as u32));
            }
        }
    }
    DbscanResult {
        ids,
        labels,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_store() -> PointStore {
        let mut s = PointStore::new(2);
        // Two dense 5×5 grids far apart plus two isolated points.
        for x in 0..5 {
            for y in 0..5 {
                s.insert(&[x as f64, y as f64], Some(0));
                s.insert(&[x as f64 + 100.0, y as f64], Some(1));
            }
        }
        s.insert(&[50.0, 50.0], None);
        s.insert(&[-50.0, -50.0], None);
        s
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let store = blob_store();
        let res = dbscan(&store, 1.5, 4);
        assert_eq!(res.num_clusters, 2);
        let clusters = res.clusters();
        assert_eq!(clusters[0].len(), 25);
        assert_eq!(clusters[1].len(), 25);
        assert_eq!(res.noise().len(), 2);
        // Labels respect ground truth.
        for (id, label) in res.ids.iter().zip(&res.labels) {
            match store.label(*id) {
                Some(g) => {
                    let c = label.expect("clustered point");
                    // All points of one ground-truth blob share a label.
                    let _ = (g, c);
                }
                None => assert!(label.is_none(), "outliers are noise"),
            }
        }
    }

    #[test]
    fn labels_are_consistent_within_ground_truth_blobs() {
        let store = blob_store();
        let res = dbscan(&store, 1.5, 4);
        let mut truth_to_found: std::collections::HashMap<u32, usize> = Default::default();
        for (id, label) in res.ids.iter().zip(&res.labels) {
            if let (Some(g), Some(c)) = (store.label(*id), label) {
                let prev = truth_to_found.entry(g).or_insert(*c);
                assert_eq!(prev, c, "blob {g} split");
            }
        }
        assert_eq!(truth_to_found.len(), 2);
    }

    #[test]
    fn huge_eps_merges_everything() {
        let store = blob_store();
        let res = dbscan(&store, 1000.0, 4);
        assert_eq!(res.num_clusters, 1);
        assert!(res.noise().is_empty());
    }

    #[test]
    fn tiny_eps_makes_everything_noise() {
        let store = blob_store();
        let res = dbscan(&store, 1e-6, 2);
        assert_eq!(res.num_clusters, 0);
        assert_eq!(res.noise().len(), store.len());
    }

    #[test]
    fn empty_store() {
        let store = PointStore::new(3);
        let res = dbscan(&store, 1.0, 3);
        assert_eq!(res.num_clusters, 0);
        assert!(res.ids.is_empty());
    }

    #[test]
    fn min_pts_one_clusters_every_point() {
        let mut store = PointStore::new(1);
        store.insert(&[0.0], None);
        store.insert(&[10.0], None);
        let res = dbscan(&store, 1.0, 1);
        assert_eq!(res.num_clusters, 2, "singletons are their own clusters");
    }
}
