//! Hierarchical clustering substrate.
//!
//! The paper evaluates incremental data bubbles by feeding them to OPTICS
//! and extracting flat clusters from the resulting reachability plot. This
//! crate implements that entire pipeline, plus the classic baselines the
//! paper positions itself against:
//!
//! * [`reachability`](mod@reachability) — reachability plots ([`ReachabilityPlot`]) produced
//!   by any OPTICS variant;
//! * [`optics`](mod@optics) — OPTICS over raw database points, backed by the k-d tree
//!   (the expensive path data bubbles exist to avoid);
//! * [`optics_bubbles`](mod@optics_bubbles) — OPTICS over data summaries: the bubble distance,
//!   weighted core distances and the *virtual reachability* expansion that
//!   turns a bubble-level ordering back into a point-level plot;
//! * [`merged`](mod@merged) — cross-domain OPTICS: one pass over the union of
//!   several independently-maintained bubble sets (the clustering stage of
//!   the sharded service layer), with provenance back to each domain;
//! * [`pair_cache`](mod@pair_cache) — the pairwise bubble-distance matrix
//!   maintained incrementally across epochs: only rows of changed bubbles
//!   are recomputed, bit-identical to a from-scratch matrix (the
//!   candidate-generation stage of the delta clustering layer);
//! * [`extract`](mod@extract) — automatic extraction of flat clusters from a
//!   reachability plot via the cluster-tree method of Sander et al. 2003
//!   (the paper's reference \[16\]), plus a fixed-threshold horizontal cut;
//! * [`xi`](mod@xi) — the original OPTICS paper's ξ-cluster extraction (steep
//!   areas), yielding the nested cluster hierarchy;
//! * [`slink`](mod@slink) — SLINK, the O(n²)-time / O(n)-space Single-Link method
//!   (the classic hierarchical baseline of the introduction);
//! * [`agglomerative`](mod@agglomerative) — complete/average/Ward linkage via the
//!   nearest-neighbour chain algorithm;
//! * [`kmeans`](mod@kmeans) — Lloyd's algorithm with k-means++ seeding, plain and
//!   weighted-over-summaries (the macro-clustering of the stream
//!   literature the paper reviews);
//! * [`dbscan`](mod@dbscan) — flat density-based clustering, used as an oracle in
//!   tests and examples;
//! * [`render`](mod@render) — ASCII reachability-plot rendering for terminals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod dbscan;
pub mod extract;
pub mod kmeans;
pub mod merged;
pub mod optics;
pub mod optics_bubbles;
pub mod pair_cache;
pub mod reachability;
pub mod render;
pub mod slink;
pub mod xi;

pub use agglomerative::{agglomerative, Linkage};
pub use extract::{
    cluster_tree, cluster_tree_delta, extract_clusters, extract_clusters_at, ClusterNode,
    ExtractParams, TreeCache, TreeDeltaStats,
};
pub use kmeans::{kmeans_points, kmeans_summaries, kmeans_weighted, KMeansResult};
pub use merged::{merge_domains, optics_merged, MergedBubbles, MergedRef};
pub use optics::optics_points;
pub use optics_bubbles::{
    bubble_distance, bubble_distance_flat, optics_bubbles, optics_bubbles_with, optics_from_matrix,
    optics_from_matrix_with_scratch, BubbleOrdering, OpticsScratch, SummaryParts,
};
pub use pair_cache::PairCache;
pub use reachability::{PlotEntry, ReachabilityPlot};
pub use render::render_reachability;
pub use slink::{slink, Dendrogram};
pub use xi::{extract_xi, XiCluster, XiParams};
