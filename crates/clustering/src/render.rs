//! ASCII rendering of reachability plots.
//!
//! OPTICS results are best read visually; the examples and the experiment
//! harness use this compact terminal renderer to show the valleys-and-walls
//! structure without a plotting stack. Wide plots are downsampled by taking
//! the *maximum* reachability per column (walls must never disappear).

use crate::reachability::ReachabilityPlot;

/// Renders the plot as `height` text rows of `width` columns. Infinite
/// reachability renders as a full column with a `^` cap. Returns an empty
/// string for an empty plot.
///
/// # Panics
/// Panics if `width == 0` or `height == 0`.
#[must_use]
pub fn render_reachability(plot: &ReachabilityPlot, width: usize, height: usize) -> String {
    assert!(
        width > 0 && height > 0,
        "render dimensions must be positive"
    );
    if plot.is_empty() {
        return String::new();
    }
    let n = plot.len();
    let width = width.min(n);

    // Column values: max reachability in each bucket (infinite → cap).
    let mut cols: Vec<f64> = Vec::with_capacity(width);
    for c in 0..width {
        let lo = c * n / width;
        let hi = ((c + 1) * n / width).max(lo + 1);
        let v = plot.entries()[lo..hi]
            .iter()
            .map(|e| e.reachability)
            .fold(0.0f64, f64::max);
        cols.push(v);
    }
    let max_finite = plot.max_finite_reachability().unwrap_or(1.0).max(1e-300);

    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        // Row 0 is the top; a column is filled when its value exceeds the
        // level at the *bottom* of this row, so the bottom row shows any
        // positive reachability and the top row only near-maximal ones.
        let level = (height - row - 1) as f64 / height as f64 * max_finite;
        for &v in &cols {
            let ch = if v.is_infinite() {
                if row == 0 {
                    '^'
                } else {
                    '#'
                }
            } else if v > level {
                '#'
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::PlotEntry;

    fn plot_of(reach: &[f64]) -> ReachabilityPlot {
        ReachabilityPlot::from_entries(
            reach
                .iter()
                .enumerate()
                .map(|(i, &r)| PlotEntry {
                    id: i as u64,
                    reachability: r,
                })
                .collect(),
        )
    }

    #[test]
    fn walls_are_taller_than_valleys() {
        let plot = plot_of(&[0.1, 0.1, 5.0, 0.1, 0.1]);
        let s = render_reachability(&plot, 5, 4);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), 4);
        // Top row: only the wall column is filled.
        assert_eq!(rows[0], "  #  ");
        // Bottom row: everything is filled.
        assert_eq!(rows[3], "#####");
    }

    #[test]
    fn infinite_columns_have_caps() {
        let plot = plot_of(&[f64::INFINITY, 0.5, 0.5]);
        let s = render_reachability(&plot, 3, 3);
        let rows: Vec<&str> = s.lines().collect();
        assert!(rows[0].starts_with('^'));
        assert!(rows[1].starts_with('#'));
    }

    #[test]
    fn downsampling_keeps_maxima() {
        // 100 tiny values with one spike; 10 columns must keep the spike.
        let mut reach = vec![0.01f64; 100];
        reach[57] = 9.0;
        let plot = plot_of(&reach);
        let s = render_reachability(&plot, 10, 5);
        let top = s.lines().next().unwrap();
        assert_eq!(top.matches('#').count(), 1, "spike survives: {top:?}");
    }

    #[test]
    fn empty_plot_renders_empty() {
        assert_eq!(render_reachability(&ReachabilityPlot::new(), 10, 5), "");
    }

    #[test]
    fn width_capped_at_plot_length() {
        let plot = plot_of(&[1.0, 2.0]);
        let s = render_reachability(&plot, 80, 2);
        assert_eq!(s.lines().next().unwrap().len(), 2);
    }
}
