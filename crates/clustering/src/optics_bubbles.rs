//! OPTICS over data summaries (the Data Bubbles adaptation the paper
//! applies after every batch of updates).
//!
//! Running OPTICS on `s` summaries instead of `N` points is what makes
//! hierarchical clustering of a large dynamic database cheap; what has to
//! change is how distances are measured:
//!
//! * **Bubble distance** ([`bubble_distance`]): when two bubbles do not
//!   overlap, the distance between their representatives minus both
//!   extents, plus both expected nearest-neighbour distances (the distance
//!   their *border points* would measure); when they overlap, the larger of
//!   the two expected nearest-neighbour distances.
//! * **Core distance**: a bubble holding at least `min_pts` points is a
//!   core object by itself with core distance `nnDist(min_pts)`; a smaller
//!   bubble accumulates neighbouring bubbles by distance until their point
//!   counts reach `min_pts`.
//! * **Virtual reachability**: a bubble appears in the point-level plot as
//!   its first member at the bubble's own reachability followed by its
//!   remaining members at `nnDist(min_pts)` — the reachability its points
//!   would exhibit if processed individually
//!   ([`BubbleOrdering::expand`]).
//!
//! The ordering itself is the standard OPTICS best-first expansion; with
//! `s` in the hundreds a dense `O(s²)` neighbour scan is both simpler and
//! faster than an index.

use crate::reachability::ReachabilityPlot;
use idb_core::DataSummary;
use idb_geometry::parallel::run_chunks;
use idb_geometry::{dist, Parallelism, SeedBlock};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Distance between two non-empty data summaries.
///
/// # Panics
/// Panics (in debug builds) if either summary is empty.
#[must_use]
pub fn bubble_distance<S: DataSummary>(a: &S, b: &S) -> f64 {
    debug_assert!(a.n() > 0 && b.n() > 0, "distance of empty summaries");
    bubble_distance_flat(
        &a.rep(),
        a.extent(),
        a.nn_dist(1),
        &b.rep(),
        b.extent(),
        b.nn_dist(1),
    )
}

/// [`bubble_distance`] over pre-extracted summary parts: representative
/// coordinates, extent and `nnDist(1)` of each side.
///
/// The `O(s²)` matrix-fill passes (here and in the delta layer's
/// `PairCache`) extract each live summary's parts **once** into a flat
/// [`SeedBlock`] and two `Vec<f64>`s, then call this per pair — the
/// trait's `rep()` allocates a fresh `Vec` per call, which at `s²` pairs
/// per epoch dominated the fill. Same floating-point operations in the
/// same order as [`bubble_distance`], so the value is bit-identical.
#[inline]
#[must_use]
pub fn bubble_distance_flat(ra: &[f64], ea: f64, na: f64, rb: &[f64], eb: f64, nb: f64) -> f64 {
    let d = dist(ra, rb);
    let gap = d - (ea + eb);
    if gap >= 0.0 {
        gap + na + nb
    } else {
        na.max(nb)
    }
}

/// Extracted parts of the live summaries: dimension-strided representative
/// block plus per-summary extent and `nnDist(1)` arrays, aligned with the
/// `live` index list they were extracted from.
#[derive(Debug, Clone)]
pub struct SummaryParts {
    /// Representative coordinates, one row per live summary.
    pub reps: SeedBlock,
    /// `extent()` per live summary.
    pub extents: Vec<f64>,
    /// `nn_dist(1)` per live summary.
    pub nn1: Vec<f64>,
}

impl SummaryParts {
    /// Extracts the parts of `summaries[live[..]]` (each must be
    /// non-empty) for a flat pairwise-distance pass.
    pub fn extract<S: DataSummary>(summaries: &[S], live: &[usize]) -> Self {
        let dim = live
            .first()
            .map_or(1, |&i| summaries[i].dim().max(1))
            .max(1);
        let mut parts = Self {
            reps: SeedBlock::with_capacity(dim, live.len()),
            extents: Vec::with_capacity(live.len()),
            nn1: Vec::with_capacity(live.len()),
        };
        for &idx in live {
            let s = &summaries[idx];
            parts.reps.push(&s.rep());
            parts.extents.push(s.extent());
            parts.nn1.push(s.nn_dist(1));
        }
        parts
    }

    /// [`bubble_distance_flat`] between live rows `i` and `j`.
    #[inline]
    #[must_use]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        bubble_distance_flat(
            self.reps.get(i),
            self.extents[i],
            self.nn1[i],
            self.reps.get(j),
            self.extents[j],
            self.nn1[j],
        )
    }
}

/// The OPTICS ordering of a set of summaries.
#[derive(Debug, Clone)]
pub struct BubbleOrdering {
    /// Indices into the input summary slice, in processing order.
    pub order: Vec<usize>,
    /// Reachability of each processed summary, aligned with `order`
    /// (`f64::INFINITY` where undefined).
    pub reachability: Vec<f64>,
    /// `nnDist(min_pts)` of each summary in `order` — its virtual
    /// reachability.
    pub virtual_reachability: Vec<f64>,
}

impl BubbleOrdering {
    /// Number of ordered summaries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no summary was ordered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Expands the bubble-level ordering into a point-level reachability
    /// plot: for the summary at order position `i`, `members(i)` must yield
    /// the ids of its points; the first one is plotted at the bubble's
    /// reachability and the rest at its virtual reachability.
    pub fn expand<F, I>(&self, mut members: F) -> ReachabilityPlot
    where
        F: FnMut(usize) -> I,
        I: IntoIterator<Item = u64>,
    {
        let mut plot = ReachabilityPlot::new();
        for (pos, &summary_idx) in self.order.iter().enumerate() {
            let mut first = true;
            for id in members(summary_idx) {
                let r = if first {
                    self.reachability[pos]
                } else {
                    self.virtual_reachability[pos]
                };
                plot.push(id, r);
                first = false;
            }
        }
        plot
    }
}

/// Min-heap seed with lazy deletion (see `optics` module).
#[derive(Debug, Clone, Copy)]
struct Seed {
    reach: f64,
    idx: u32,
}
impl PartialEq for Seed {
    fn eq(&self, other: &Self) -> bool {
        self.reach == other.reach && self.idx == other.idx
    }
}
impl Eq for Seed {}
impl PartialOrd for Seed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Seed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed operands turn `BinaryHeap`'s max-heap into a min-heap.
        // `total_cmp` keeps the order total even over NaN (a NaN
        // reachability — conceivable from non-finite inputs — sorts
        // below every real value here instead of collapsing the
        // comparison to "equal", which made heap order, and thus the
        // whole cluster ordering, depend on insertion order).
        other
            .reach
            .total_cmp(&self.reach)
            .then(other.idx.cmp(&self.idx))
    }
}

/// Runs OPTICS over non-empty summaries.
///
/// Empty summaries (bubbles whose every point was deleted) are skipped —
/// they compress nothing and have no position. `eps` bounds the
/// neighbourhood (pass `f64::INFINITY` for the full hierarchy); `min_pts`
/// counts *points*, not bubbles.
///
/// # Panics
/// Panics if `min_pts == 0`.
#[must_use]
pub fn optics_bubbles<S: DataSummary + Sync>(
    summaries: &[S],
    eps: f64,
    min_pts: usize,
) -> BubbleOrdering {
    optics_bubbles_with(summaries, eps, min_pts, Parallelism::default())
}

/// [`optics_bubbles`] with an explicit [`Parallelism`] mode.
///
/// The `O(s²)` candidate-generation stage — the pairwise bubble-distance
/// matrix feeding every core-distance and reachability decision — fans out
/// over contiguous chunks of matrix rows. Each pair is computed exactly
/// once by exactly one worker and mirrored serially afterwards, so the
/// matrix (and therefore the ordering) is bit-identical across modes. The
/// best-first expansion itself is inherently sequential and stays serial.
///
/// # Panics
/// Panics if `min_pts == 0`.
#[must_use]
pub fn optics_bubbles_with<S: DataSummary + Sync>(
    summaries: &[S],
    eps: f64,
    min_pts: usize,
    par: Parallelism,
) -> BubbleOrdering {
    assert!(min_pts > 0, "min_pts must be positive");
    // Dense working set of non-empty summaries.
    let live: Vec<usize> = (0..summaries.len())
        .filter(|&i| summaries[i].n() > 0)
        .collect();
    let s = live.len();
    if s == 0 {
        return BubbleOrdering {
            order: Vec::new(),
            reachability: Vec::new(),
            virtual_reachability: Vec::new(),
        };
    }

    // Dense pairwise distance matrix over the live summaries. The parts of
    // every live summary are extracted once into a flat block (rep() is an
    // allocating trait call — O(s) extractions instead of O(s²)); workers
    // fill disjoint upper-triangle rows from the block, and the lower
    // triangle is mirrored once the chunks are back in row order.
    let parts = SummaryParts::extract(summaries, &live);
    let parts = &parts;
    let rows: Vec<usize> = (0..s).collect();
    let row_chunks = run_chunks(&rows, par.effective_threads(), |chunk| {
        chunk
            .iter()
            .map(|&i| {
                ((i + 1)..s)
                    .map(|j| parts.distance(i, j))
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<Vec<f64>>>()
    });
    let mut pair = vec![0.0f64; s * s];
    for (i, row) in row_chunks.into_iter().flatten().enumerate() {
        for (offset, d) in row.into_iter().enumerate() {
            let j = i + 1 + offset;
            pair[i * s + j] = d;
            pair[j * s + i] = d;
        }
    }

    optics_from_matrix(summaries, &live, &pair, eps, min_pts)
}

/// The best-first OPTICS expansion over a *precomputed* dense pairwise
/// distance matrix.
///
/// `live` lists the indices (into `summaries`) to order — every listed
/// summary must be non-empty — and `pair[i * live.len() + j]` must hold
/// `bubble_distance` between `live[i]` and `live[j]`. This is the exact
/// expansion stage [`optics_bubbles_with`] runs after filling its own
/// matrix; callers that maintain the matrix incrementally (the delta
/// clustering layer) feed it here and get a bit-identical ordering, since
/// every downstream decision reads only the matrix and the summaries.
///
/// # Panics
/// Panics if `min_pts == 0`, if `pair.len() != live.len()²`, or (in debug
/// builds) if a listed summary is empty.
#[must_use]
pub fn optics_from_matrix<S: DataSummary>(
    summaries: &[S],
    live: &[usize],
    pair: &[f64],
    eps: f64,
    min_pts: usize,
) -> BubbleOrdering {
    optics_from_matrix_with_scratch(
        summaries,
        live,
        pair,
        eps,
        min_pts,
        &mut OpticsScratch::default(),
    )
}

/// Reusable working memory for [`optics_from_matrix_with_scratch`]: the
/// processed flags, reachability array, candidate heap and neighbour list
/// the expansion needs. A caller that re-runs the expansion every epoch
/// (the delta clustering engine) holds one and reuses the allocations;
/// the scratch never carries results between runs — every buffer is
/// reset on entry.
#[derive(Debug, Clone, Default)]
pub struct OpticsScratch {
    processed: Vec<bool>,
    reach: Vec<f64>,
    heap: BinaryHeap<Seed>,
    neigh: Vec<(usize, f64)>,
}

/// [`optics_from_matrix`] with caller-owned scratch memory; the returned
/// ordering is bit-identical.
///
/// # Panics
/// Panics if `min_pts == 0`, if `pair.len() != live.len()²`, or (in debug
/// builds) if a listed summary is empty.
#[must_use]
pub fn optics_from_matrix_with_scratch<S: DataSummary>(
    summaries: &[S],
    live: &[usize],
    pair: &[f64],
    eps: f64,
    min_pts: usize,
    scratch: &mut OpticsScratch,
) -> BubbleOrdering {
    assert!(min_pts > 0, "min_pts must be positive");
    let s = live.len();
    assert_eq!(pair.len(), s * s, "matrix must be dense over `live`");
    debug_assert!(
        live.iter().all(|&i| summaries[i].n() > 0),
        "live summaries must be non-empty"
    );
    let mut ordering = BubbleOrdering {
        order: Vec::with_capacity(s),
        reachability: Vec::with_capacity(s),
        virtual_reachability: Vec::with_capacity(s),
    };
    if s == 0 {
        return ordering;
    }

    // Core distance of live summary `i`: weighted accumulation of point
    // counts over neighbours by ascending distance.
    let core_dist = |i: usize, neigh_sorted: &[(usize, f64)]| -> f64 {
        let own = summaries[live[i]].n() as usize;
        if own >= min_pts {
            return summaries[live[i]].nn_dist(min_pts);
        }
        let mut acc = own;
        for &(j, d) in neigh_sorted {
            if j == i {
                continue;
            }
            acc += summaries[live[j]].n() as usize;
            if acc >= min_pts {
                return d;
            }
        }
        f64::INFINITY
    };

    let OpticsScratch {
        processed,
        reach,
        heap,
        neigh,
    } = scratch;
    processed.clear();
    processed.resize(s, false);
    reach.clear();
    reach.resize(s, f64::INFINITY);
    heap.clear();
    neigh.clear();

    let expand = |i: usize,
                  processed: &[bool],
                  reach: &mut Vec<f64>,
                  heap: &mut BinaryHeap<Seed>,
                  neigh: &mut Vec<(usize, f64)>| {
        neigh.clear();
        for j in 0..s {
            if j == i {
                continue;
            }
            let d = pair[i * s + j];
            if d <= eps {
                neigh.push((j, d));
            }
        }
        // `total_cmp` with the index tiebreak: a NaN distance (possible
        // when a summary carries non-finite coordinates) must not make
        // the neighbour order — and with it the core distance — depend
        // on the sort algorithm's comparison sequence.
        neigh.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let core = core_dist(i, neigh);
        if core.is_infinite() {
            return;
        }
        for &(j, d) in neigh.iter() {
            if processed[j] {
                continue;
            }
            let r = core.max(d);
            if r < reach[j] {
                reach[j] = r;
                heap.push(Seed {
                    reach: r,
                    idx: j as u32,
                });
            }
        }
    };

    for start in 0..s {
        if processed[start] {
            continue;
        }
        processed[start] = true;
        ordering.order.push(live[start]);
        ordering.reachability.push(f64::INFINITY);
        ordering
            .virtual_reachability
            .push(summaries[live[start]].nn_dist(min_pts));
        expand(start, processed, reach, heap, neigh);

        while let Some(Seed { reach: r, idx }) = heap.pop() {
            let i = idx as usize;
            if processed[i] || r > reach[i] {
                continue;
            }
            processed[i] = true;
            ordering.order.push(live[i]);
            ordering.reachability.push(reach[i]);
            ordering
                .virtual_reachability
                .push(summaries[live[i]].nn_dist(min_pts));
            expand(i, processed, reach, heap, neigh);
        }
    }
    ordering
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_core::SufficientStats;

    /// Minimal summary for tests: a ball of `n` points.
    #[derive(Debug, Clone)]
    struct Ball {
        stats: SufficientStats,
    }

    impl Ball {
        fn new(center: &[f64], radius: f64, n: usize) -> Self {
            // Approximate a ball by pairs symmetric around the center so
            // the mean is exact and the extent ~ radius.
            let dim = center.len();
            let mut stats = SufficientStats::new(dim);
            for i in 0..n {
                let mut p = center.to_vec();
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                p[i % dim] += sign * radius;
                stats.add(&p);
            }
            Self { stats }
        }

        fn empty(dim: usize) -> Self {
            Self {
                stats: SufficientStats::new(dim),
            }
        }
    }

    impl DataSummary for Ball {
        fn dim(&self) -> usize {
            self.stats.dim()
        }
        fn n(&self) -> u64 {
            self.stats.n()
        }
        fn rep(&self) -> Vec<f64> {
            self.stats.rep().unwrap()
        }
        fn extent(&self) -> f64 {
            self.stats.extent()
        }
        fn nn_dist(&self, k: usize) -> f64 {
            self.stats.nn_dist(k)
        }
    }

    #[test]
    fn distance_of_far_bubbles_is_gap_plus_nn() {
        let a = Ball::new(&[0.0, 0.0], 1.0, 20);
        let b = Ball::new(&[50.0, 0.0], 1.0, 20);
        let d = bubble_distance(&a, &b);
        let expect = 50.0 - a.extent() - b.extent() + a.nn_dist(1) + b.nn_dist(1);
        assert!((d - expect).abs() < 1e-9);
        assert!(d < 50.0 && d > 40.0);
    }

    #[test]
    fn distance_of_overlapping_bubbles_is_max_nn() {
        let a = Ball::new(&[0.0, 0.0], 5.0, 10);
        let b = Ball::new(&[1.0, 0.0], 5.0, 40);
        let d = bubble_distance(&a, &b);
        assert!((d - a.nn_dist(1).max(b.nn_dist(1))).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Ball::new(&[3.0, 4.0], 2.0, 15);
        let b = Ball::new(&[30.0, -7.0], 0.5, 8);
        assert_eq!(bubble_distance(&a, &b), bubble_distance(&b, &a));
    }

    #[test]
    fn nan_reachability_orders_last_and_deterministically() {
        // `total_cmp` sorts every NaN above every real value, so the
        // lazy min-heap yields real seeds first (ascending, index
        // tiebreak) and NaN seeds last, in index order — independent of
        // push order. The old `partial_cmp(..).unwrap_or(Equal)`
        // comparator declared NaN equal to *everything*, which is not
        // transitive, breaking the heap invariant and making pop order
        // depend on insertion history.
        let seeds = [
            (f64::NAN, 3u32),
            (1.0, 1),
            (f64::NAN, 2),
            (0.5, 4),
            (f64::INFINITY, 0),
        ];
        let mut forward = BinaryHeap::new();
        for &(reach, idx) in &seeds {
            forward.push(Seed { reach, idx });
        }
        let mut reversed = BinaryHeap::new();
        for &(reach, idx) in seeds.iter().rev() {
            reversed.push(Seed { reach, idx });
        }
        let drain = |mut h: BinaryHeap<Seed>| -> Vec<u32> {
            std::iter::from_fn(|| h.pop()).map(|s| s.idx).collect()
        };
        let f = drain(forward);
        assert_eq!(f, vec![4, 1, 0, 2, 3]);
        assert_eq!(
            f,
            drain(reversed),
            "pop order must not depend on push order"
        );
    }

    #[test]
    fn nan_pair_distances_are_no_edges() {
        // A NaN bubble distance (conceivable from non-finite summary
        // stats) satisfies no `d <= eps` test, so it must behave as "no
        // edge": the expansion completes, visits every summary, and the
        // NaN never infects a reachability value or panics the
        // neighbour sort.
        let summaries = vec![
            Ball::new(&[0.0, 0.0], 1.0, 30),
            Ball::new(&[3.0, 0.0], 1.0, 30),
            Ball::new(&[100.0, 0.0], 1.0, 30),
        ];
        let live = [0usize, 1, 2];
        let mut pair = vec![0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    pair[i * 3 + j] = bubble_distance(&summaries[i], &summaries[j]);
                }
            }
        }
        pair[2] = f64::NAN; // poison 0↔2 ...
        pair[6] = f64::NAN; // ... in both directions
        let a = optics_from_matrix(&summaries, &live, &pair, f64::INFINITY, 10);
        assert_eq!(a.order.len(), 3, "every summary is still visited");
        assert!(
            a.reachability.iter().all(|r| !r.is_nan()),
            "NaN never becomes a reachability: {:?}",
            a.reachability
        );
        let b = optics_from_matrix(&summaries, &live, &pair, f64::INFINITY, 10);
        assert_eq!(a.order, b.order);
        assert_eq!(a.reachability, b.reachability);
    }

    #[test]
    fn ordering_visits_all_nonempty_summaries() {
        let summaries = vec![
            Ball::new(&[0.0, 0.0], 1.0, 30),
            Ball::new(&[3.0, 0.0], 1.0, 30),
            Ball::empty(2),
            Ball::new(&[100.0, 0.0], 1.0, 30),
            Ball::new(&[103.0, 0.0], 1.0, 30),
        ];
        let ord = optics_bubbles(&summaries, f64::INFINITY, 10);
        assert_eq!(ord.len(), 4);
        assert!(!ord.order.contains(&2), "empty summary skipped");
        // Group structure: the two groups are contiguous in the order.
        let group = |i: usize| usize::from(i >= 3);
        let seq: Vec<usize> = ord.order.iter().map(|&i| group(i)).collect();
        let switches = seq.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1, "order {:?}", ord.order);
    }

    #[test]
    fn gap_shows_as_large_reachability() {
        let summaries = vec![
            Ball::new(&[0.0, 0.0], 1.0, 30),
            Ball::new(&[3.0, 0.0], 1.0, 30),
            Ball::new(&[100.0, 0.0], 1.0, 30),
            Ball::new(&[103.0, 0.0], 1.0, 30),
        ];
        let ord = optics_bubbles(&summaries, f64::INFINITY, 10);
        let jumps = ord
            .reachability
            .iter()
            .filter(|r| r.is_finite() && **r > 50.0)
            .count();
        assert_eq!(jumps, 1);
    }

    #[test]
    fn expansion_emits_n_entries_per_bubble() {
        let summaries = vec![
            Ball::new(&[0.0, 0.0], 1.0, 5),
            Ball::new(&[10.0, 0.0], 1.0, 3),
        ];
        let ord = optics_bubbles(&summaries, f64::INFINITY, 2);
        // Bubble i's members are ids 100*i .. 100*i + n.
        let plot = ord.expand(|i| {
            let n = summaries[i].n();
            (0..n).map(move |j| 100 * i as u64 + j)
        });
        assert_eq!(plot.len(), 8);
        // First entry of each bubble is the bubble reachability (the very
        // first is infinite); followers sit at the virtual reachability.
        let inf = plot
            .entries()
            .iter()
            .filter(|e| e.reachability.is_infinite())
            .count();
        assert_eq!(inf, 1);
    }

    #[test]
    fn small_bubbles_accumulate_neighbors_for_core_distance() {
        // Each bubble holds 2 points; min_pts = 5 forces neighbour
        // accumulation. A tight chain is still one cluster.
        let summaries: Vec<Ball> = (0..6)
            .map(|i| Ball::new(&[i as f64, 0.0], 0.2, 2))
            .collect();
        let ord = optics_bubbles(&summaries, f64::INFINITY, 5);
        assert_eq!(ord.len(), 6);
        let finite = ord.reachability.iter().filter(|r| r.is_finite()).count();
        assert_eq!(finite, 5, "single chain after the first seed");
    }

    #[test]
    fn parallel_ordering_is_bit_identical_to_serial() {
        // Awkward sizes (prime count, empty summaries interleaved) so chunk
        // boundaries land mid-row in every threaded mode.
        let summaries: Vec<Ball> = (0..23)
            .map(|i| {
                if i % 7 == 3 {
                    Ball::empty(2)
                } else {
                    let x = f64::from(i % 5) * 2.0 + f64::from(i / 5) * 40.0;
                    Ball::new(&[x, f64::from(i % 3)], 0.8, 4 + i as usize % 6)
                }
            })
            .collect();
        let serial = optics_bubbles_with(&summaries, f64::INFINITY, 6, Parallelism::Serial);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let p = optics_bubbles_with(&summaries, f64::INFINITY, 6, par);
            assert_eq!(p.order, serial.order, "{par:?}");
            assert_eq!(p.reachability, serial.reachability, "{par:?}");
            assert_eq!(
                p.virtual_reachability, serial.virtual_reachability,
                "{par:?}"
            );
        }
    }

    #[test]
    fn all_empty_summaries_yield_empty_ordering() {
        let summaries = vec![Ball::empty(2), Ball::empty(2)];
        let ord = optics_bubbles(&summaries, f64::INFINITY, 3);
        assert!(ord.is_empty());
        let plot = ord.expand(|_| std::iter::empty());
        assert!(plot.is_empty());
    }
}
