//! Reachability plots.
//!
//! OPTICS does not return flat clusters; it returns an *ordering* of the
//! objects together with a reachability distance for each — the
//! reachability plot. Valleys in the plot are clusters; the depth at which
//! a valley sits reflects the density of the cluster, and nesting of
//! valleys reflects the cluster hierarchy.
//!
//! Entries carry an opaque `u64` id so the same plot type serves point-level
//! OPTICS (ids are [`idb_store::PointId`] values) and the expansion of a
//! bubble-level ordering (ids are the bubble members' point ids).

/// One entry of a reachability plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotEntry {
    /// Opaque object id (a point id in this workspace).
    pub id: u64,
    /// Reachability distance; `f64::INFINITY` when undefined (the start of
    /// a new connected component).
    pub reachability: f64,
}

/// An ordered reachability plot.
#[derive(Debug, Clone, Default)]
pub struct ReachabilityPlot {
    entries: Vec<PlotEntry>,
}

impl ReachabilityPlot {
    /// An empty plot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a pre-built entry sequence.
    #[must_use]
    pub fn from_entries(entries: Vec<PlotEntry>) -> Self {
        Self { entries }
    }

    /// Appends one entry.
    pub fn push(&mut self, id: u64, reachability: f64) {
        self.entries.push(PlotEntry { id, reachability });
    }

    /// The entries in OPTICS order.
    #[must_use]
    pub fn entries(&self) -> &[PlotEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the plot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean of the finite reachability values (`None` when there is none) —
    /// a robust summary used by significance tests and diagnostics.
    #[must_use]
    pub fn mean_finite_reachability(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for e in &self.entries {
            if e.reachability.is_finite() {
                sum += e.reachability;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Maximum finite reachability, or `None` when all are infinite.
    #[must_use]
    pub fn max_finite_reachability(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(|e| e.reachability)
            .filter(|r| r.is_finite())
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut p = ReachabilityPlot::new();
        p.push(4, f64::INFINITY);
        p.push(7, 1.5);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.entries()[1].id, 7);
        assert_eq!(p.entries()[1].reachability, 1.5);
    }

    #[test]
    fn mean_ignores_infinite() {
        let p = ReachabilityPlot::from_entries(vec![
            PlotEntry {
                id: 0,
                reachability: f64::INFINITY,
            },
            PlotEntry {
                id: 1,
                reachability: 2.0,
            },
            PlotEntry {
                id: 2,
                reachability: 4.0,
            },
        ]);
        assert_eq!(p.mean_finite_reachability(), Some(3.0));
        assert_eq!(p.max_finite_reachability(), Some(4.0));
    }

    #[test]
    fn all_infinite_yields_none() {
        let p = ReachabilityPlot::from_entries(vec![PlotEntry {
            id: 0,
            reachability: f64::INFINITY,
        }]);
        assert_eq!(p.mean_finite_reachability(), None);
        assert_eq!(p.max_finite_reachability(), None);
    }

    #[test]
    fn empty_plot() {
        let p = ReachabilityPlot::new();
        assert!(p.is_empty());
        assert_eq!(p.mean_finite_reachability(), None);
    }
}
