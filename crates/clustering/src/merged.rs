//! Cross-domain OPTICS: one clustering pass over the union of several
//! independently-maintained bubble sets.
//!
//! A sharded service keeps one maintainer per partition, each with its
//! own bubble list. Clustering must still see the whole database, so the
//! per-partition lists are concatenated *domain-major* — domain 0's
//! bubbles first, each domain's internal order preserved — and a single
//! [`optics_bubbles_with`] pass runs over the union. The concatenation
//! order depends only on the domain numbering, never on how domains are
//! grouped into shards or threads, which is what makes the merged
//! ordering a pure function of the logical partition contents (the
//! shard-count bit-identity the differential suites check).
//!
//! [`MergedRef`] maps each merged index back to `(domain, index within
//! domain)` so callers can resolve ordered entries to their owning
//! maintainer — e.g. to expand bubble members into a point-level plot.

use crate::optics_bubbles::{optics_bubbles_with, BubbleOrdering};
use idb_core::DataSummary;
use idb_geometry::Parallelism;

/// Provenance of one entry in a merged bubble set: which domain
/// (partition) it came from and its index within that domain's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MergedRef {
    /// The owning domain, in the caller's `domains` order.
    pub domain: u32,
    /// Index within that domain's summary slice.
    pub index: usize,
}

/// The union of several per-domain summary sets, ready for one OPTICS
/// pass. Built by [`merge_domains`]; `refs[i]` is the provenance of
/// merged index `i`.
#[derive(Debug)]
pub struct MergedBubbles<'a, S> {
    /// Borrowed summaries, domain-major.
    pub summaries: Vec<&'a S>,
    /// Provenance aligned with `summaries`.
    pub refs: Vec<MergedRef>,
}

/// Concatenates per-domain summary slices domain-major.
///
/// # Panics
/// Panics if more than `u32::MAX` domains are supplied.
#[must_use]
pub fn merge_domains<'a, S: DataSummary>(domains: &[&'a [S]]) -> MergedBubbles<'a, S> {
    let total: usize = domains.iter().map(|d| d.len()).sum();
    let mut summaries = Vec::with_capacity(total);
    let mut refs = Vec::with_capacity(total);
    for (domain, slice) in domains.iter().enumerate() {
        let domain = u32::try_from(domain).expect("more than u32::MAX domains");
        for (index, summary) in slice.iter().enumerate() {
            summaries.push(summary);
            refs.push(MergedRef { domain, index });
        }
    }
    MergedBubbles { summaries, refs }
}

/// Runs OPTICS over the union of per-domain bubble sets.
///
/// Returns the provenance table and the ordering; `ordering.order`
/// indexes into the returned `Vec<MergedRef>`. Empty summaries are
/// skipped exactly as in [`optics_bubbles_with`].
///
/// # Panics
/// Panics if `min_pts == 0` or more than `u32::MAX` domains are
/// supplied.
#[must_use]
pub fn optics_merged<S: DataSummary + Sync>(
    domains: &[&[S]],
    eps: f64,
    min_pts: usize,
    par: Parallelism,
) -> (Vec<MergedRef>, BubbleOrdering) {
    let merged = merge_domains(domains);
    let ordering = optics_bubbles_with(&merged.summaries, eps, min_pts, par);
    (merged.refs, ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics_bubbles::optics_bubbles;

    /// Minimal summary: a ball of `n` points at `center`.
    #[derive(Debug, Clone)]
    struct Ball {
        center: Vec<f64>,
        n: u64,
        extent: f64,
    }

    impl DataSummary for Ball {
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn n(&self) -> u64 {
            self.n
        }
        fn rep(&self) -> Vec<f64> {
            self.center.clone()
        }
        fn extent(&self) -> f64 {
            self.extent
        }
        fn nn_dist(&self, _k: usize) -> f64 {
            self.extent / 4.0
        }
    }

    fn ball(x: f64, y: f64, n: u64) -> Ball {
        Ball {
            center: vec![x, y],
            n,
            extent: 0.5,
        }
    }

    #[test]
    fn refs_are_domain_major_and_aligned() {
        let a = [ball(0.0, 0.0, 5), ball(1.0, 0.0, 5)];
        let b = [ball(10.0, 0.0, 5)];
        let merged = merge_domains(&[&a[..], &b[..]]);
        assert_eq!(merged.summaries.len(), 3);
        assert_eq!(
            merged.refs,
            vec![
                MergedRef {
                    domain: 0,
                    index: 0
                },
                MergedRef {
                    domain: 0,
                    index: 1
                },
                MergedRef {
                    domain: 1,
                    index: 0
                },
            ]
        );
    }

    #[test]
    fn merged_ordering_equals_flat_ordering() {
        // The same nine bubbles, once as a flat slice and once split
        // across three domains: identical orderings bit for bit.
        let all: Vec<Ball> = (0u32..9)
            .map(|i| {
                ball(
                    f64::from(i % 3) * 8.0,
                    f64::from(i / 3),
                    4 + u64::from(i % 2),
                )
            })
            .collect();
        let flat = optics_bubbles(&all, f64::INFINITY, 3);

        let (d0, rest) = all.split_at(3);
        let (d1, d2) = rest.split_at(3);
        let (refs, merged) = optics_merged(&[d0, d1, d2], f64::INFINITY, 3, Parallelism::Serial);

        assert_eq!(merged.order, flat.order);
        assert_eq!(merged.reachability, flat.reachability);
        assert_eq!(merged.virtual_reachability, flat.virtual_reachability);
        // Provenance resolves every merged index back to the original.
        for (merged_idx, r) in refs.iter().enumerate() {
            assert_eq!(r.domain as usize * 3 + r.index, merged_idx);
        }
    }

    #[test]
    fn empty_domains_are_transparent() {
        let a = [ball(0.0, 0.0, 5), ball(9.0, 0.0, 5)];
        let empty: [Ball; 0] = [];
        let (refs, ordering) = optics_merged(
            &[&empty[..], &a[..], &empty[..]],
            f64::INFINITY,
            2,
            Parallelism::Serial,
        );
        assert_eq!(refs.len(), 2);
        assert_eq!(ordering.len(), 2);
        assert!(refs.iter().all(|r| r.domain == 1));
    }
}
