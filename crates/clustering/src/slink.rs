//! SLINK — the Single-Link hierarchical clustering method (Sibson 1973),
//! the classic dendrogram-producing baseline the paper's introduction
//! cites (\[17\]).
//!
//! SLINK computes the single-linkage dendrogram in `O(n²)` time and `O(n)`
//! working memory using the pointer representation: for every point `i`,
//! `lambda[i]` is the level at which `i` ceases to be the last point of its
//! cluster and `pi[i]` is the point it is then merged into. Flat clusterings
//! at any level fall out by cutting: two points are in the same cluster at
//! level `t` iff they are connected by merges with `lambda <= t`.

use std::cmp::Ordering;

/// A single-linkage dendrogram in pointer representation.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// `pi[i]`: the point `i` merges into at level `lambda[i]`.
    pi: Vec<u32>,
    /// `lambda[i]`: the merge level of `i` (infinite for the last point).
    lambda: Vec<f64>,
}

impl Dendrogram {
    /// Number of clustered points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pi.len()
    }

    /// `true` when no point was clustered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pi.is_empty()
    }

    /// Merge target of point `i`.
    #[must_use]
    pub fn merge_target(&self, i: usize) -> usize {
        self.pi[i] as usize
    }

    /// Merge level of point `i` (`f64::INFINITY` for the final point).
    #[must_use]
    pub fn merge_level(&self, i: usize) -> f64 {
        self.lambda[i]
    }

    /// The sorted finite merge levels — the heights at which the number of
    /// clusters decreases by one.
    #[must_use]
    pub fn merge_levels(&self) -> Vec<f64> {
        let mut levels: Vec<f64> = self
            .lambda
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .collect();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        levels
    }

    /// Flat clustering at distance threshold `t`: returns dense cluster
    /// labels (0-based, in order of first appearance).
    #[must_use]
    pub fn cut_at(&self, t: f64) -> Vec<usize> {
        let n = self.pi.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        for i in 0..n {
            if self.lambda[i] <= t {
                let a = find(&mut parent, i as u32);
                let b = find(&mut parent, self.pi[i]);
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        for i in 0..n {
            let root = find(&mut parent, i as u32) as usize;
            if labels[root] == usize::MAX {
                labels[root] = next;
                next += 1;
            }
            labels[i] = labels[root];
        }
        labels
    }

    /// Flat clustering into exactly `min(k, n)` clusters, by applying the
    /// `n − k` smallest merges. (The pointer representation's edges form a
    /// spanning tree, so every applied edge reduces the cluster count by
    /// exactly one — exact even when merge levels tie.)
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn cut_into(&self, k: usize) -> Vec<usize> {
        assert!(k > 0, "k must be positive");
        let n = self.pi.len();
        if n == 0 {
            return Vec::new();
        }
        let k = k.min(n);
        let mut edges: Vec<usize> = (0..n).filter(|&i| self.lambda[i].is_finite()).collect();
        edges.sort_by(|&a, &b| {
            self.lambda[a]
                .partial_cmp(&self.lambda[b])
                .unwrap_or(Ordering::Equal)
        });

        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        for &i in edges.iter().take(n - k) {
            let a = find(&mut parent, i as u32);
            let b = find(&mut parent, self.pi[i]);
            if a != b {
                parent[a as usize] = b;
            }
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        for i in 0..n {
            let root = find(&mut parent, i as u32) as usize;
            if labels[root] == usize::MAX {
                labels[root] = next;
                next += 1;
            }
            labels[i] = labels[root];
        }
        labels
    }
}

/// Runs SLINK over points provided through a distance oracle.
///
/// `dist(i, j)` must be a symmetric dissimilarity; it is called `O(n²)`
/// times, once per pair.
///
/// # Panics
/// Never panics for `n >= 0`.
#[must_use]
pub fn slink<F: FnMut(usize, usize) -> f64>(n: usize, mut dist: F) -> Dendrogram {
    let mut pi = vec![0u32; n];
    let mut lambda = vec![f64::INFINITY; n];
    let mut m = vec![0.0f64; n];

    for i in 0..n {
        pi[i] = i as u32;
        lambda[i] = f64::INFINITY;
        for (j, mj) in m.iter_mut().enumerate().take(i) {
            *mj = dist(j, i);
        }
        for j in 0..i {
            if lambda[j] >= m[j] {
                let p = pi[j] as usize;
                m[p] = m[p].min(lambda[j]);
                lambda[j] = m[j];
                pi[j] = i as u32;
            } else {
                let p = pi[j] as usize;
                m[p] = m[p].min(m[j]);
            }
        }
        for j in 0..i {
            if lambda[j] >= lambda[pi[j] as usize] {
                pi[j] = i as u32;
            }
        }
    }
    Dendrogram { pi, lambda }
}

/// Convenience: SLINK over explicit point coordinates with the Euclidean
/// metric.
///
/// # Examples
/// ```
/// use idb_clustering::slink::slink_points;
///
/// let points = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// let dendrogram = slink_points(&points);
/// let labels = dendrogram.cut_into(2);
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[2], labels[3]);
/// assert_ne!(labels[0], labels[2]);
/// ```
#[must_use]
pub fn slink_points(points: &[Vec<f64>]) -> Dendrogram {
    slink(points.len(), |i, j| {
        idb_geometry::dist(&points[i], &points[j])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_clusters() {
        let pts: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![100.0],
            vec![101.0],
            vec![102.0],
        ];
        let d = slink_points(&pts);
        let labels = d.cut_into(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn cut_at_threshold_matches_connectivity() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0], vec![1.5], vec![3.0], vec![10.0]];
        let d = slink_points(&pts);
        // At t = 2.0 the chain 0–1–2 is connected, 3 is alone.
        let labels = d.cut_at(2.0);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
        // At t = 0.5 everything is separate.
        let labels = d.cut_at(0.5);
        let unique: std::collections::HashSet<usize> = labels.iter().copied().collect();
        assert_eq!(unique.len(), 4);
        // At t = 10 everything merges.
        let labels = d.cut_at(10.0);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn merge_levels_are_the_mst_edges() {
        // Single-link merge levels equal the MST edge weights: for the
        // chain {0, 1.5, 3, 10} these are 1.5, 1.5, 7.
        let pts: Vec<Vec<f64>> = vec![vec![0.0], vec![1.5], vec![3.0], vec![10.0]];
        let d = slink_points(&pts);
        let levels = d.merge_levels();
        assert_eq!(levels.len(), 3);
        assert!((levels[0] - 1.5).abs() < 1e-12);
        assert!((levels[1] - 1.5).abs() < 1e-12);
        assert!((levels[2] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_and_empty() {
        let d = slink_points(&[]);
        assert!(d.is_empty());
        assert!(d.merge_levels().is_empty());

        let d = slink_points(&[vec![5.0, 5.0]]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.cut_into(1), vec![0]);
        assert!(d.merge_level(0).is_infinite());
    }

    #[test]
    fn cut_into_more_clusters_than_points_degrades_gracefully() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0]];
        let d = slink_points(&pts);
        let labels = d.cut_into(5);
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn chaining_effect_is_present() {
        // Single-link famously chains: a bridge of close points merges two
        // groups early. Verify the behaviour (it distinguishes single-link
        // from complete/average link).
        let mut pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 0.5]).collect();
        pts.extend((0..5).map(|i| vec![50.0 + i as f64 * 0.5]));
        // Bridge every 0.5 units.
        pts.extend((1..100).map(|i| vec![2.0 + i as f64 * 0.5]));
        let d = slink_points(&pts);
        let labels = d.cut_at(0.75);
        // Everything is one chain at threshold 0.75.
        assert!(labels.iter().all(|&l| l == labels[0]));
    }
}
