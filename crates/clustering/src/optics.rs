//! OPTICS over raw database points (Ankerst et al., the paper's \[2\]).
//!
//! The algorithm orders the points such that density-based clusters at all
//! resolutions up to `eps` appear as valleys of the reachability plot:
//!
//! * the *core distance* of `p` is the distance to its `min_pts`-th
//!   neighbour, undefined when fewer than `min_pts` points lie within
//!   `eps`;
//! * the *reachability distance* of `q` from `p` is
//!   `max(core_dist(p), dist(p, q))`;
//! * points are emitted in the order of a best-first expansion that always
//!   processes the not-yet-emitted point with the smallest current
//!   reachability.
//!
//! ε-neighbourhoods come from a [`KdTree`] built over a snapshot of the
//! store, so one call is `O(n · (log n + |N_eps|))` instead of the `O(n²)`
//! of a scan-based implementation. The priority queue uses lazy deletion:
//! stale heap entries (whose reachability has since improved) are skipped
//! on pop.

use crate::reachability::ReachabilityPlot;
use idb_geometry::KdTree;
use idb_store::PointStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry (reversed ordering over reachability).
#[derive(Debug, Clone, Copy)]
struct Seed {
    reach: f64,
    /// Dense index of the point (position in the snapshot id table).
    idx: u32,
}

impl PartialEq for Seed {
    fn eq(&self, other: &Self) -> bool {
        self.reach == other.reach && self.idx == other.idx
    }
}
impl Eq for Seed {}
impl PartialOrd for Seed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Seed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest reach.
        other
            .reach
            .partial_cmp(&self.reach)
            .unwrap_or(Ordering::Equal)
            .then(other.idx.cmp(&self.idx))
    }
}

/// Runs OPTICS over all live points of the store.
///
/// Returns the reachability plot in processing order; ids are the
/// [`idb_store::PointId`] raw values. `eps` bounds the neighbourhood search
/// (pass `f64::INFINITY` for the complete hierarchy at any density);
/// `min_pts` is the usual density smoothing parameter.
///
/// # Examples
/// ```
/// use idb_clustering::optics_points;
/// use idb_store::PointStore;
///
/// // Two tight groups with a wide gap.
/// let mut store = PointStore::new(1);
/// for i in 0..10 {
///     store.insert(&[i as f64 * 0.1], None);
///     store.insert(&[50.0 + i as f64 * 0.1], None);
/// }
/// let plot = optics_points(&store, f64::INFINITY, 3);
/// assert_eq!(plot.len(), 20);
/// // Exactly one reachability spike marks the jump between the groups.
/// let spikes = plot.entries().iter()
///     .filter(|e| e.reachability.is_finite() && e.reachability > 10.0)
///     .count();
/// assert_eq!(spikes, 1);
/// ```
///
/// # Panics
/// Panics if `min_pts == 0`.
#[must_use]
pub fn optics_points(store: &PointStore, eps: f64, min_pts: usize) -> ReachabilityPlot {
    assert!(min_pts > 0, "min_pts must be positive");
    let n = store.len();
    let mut plot = ReachabilityPlot::new();
    if n == 0 {
        return plot;
    }

    // Snapshot: dense indices 0..n with an id table.
    let ids: Vec<u64> = store.ids().map(|id| u64::from(id.0)).collect();
    let coords: Vec<&[f64]> = store.ids().map(|id| store.point(id)).collect();
    let tree = KdTree::build(store.dim(), ids.iter().copied().zip(coords.iter().copied()));
    // Map raw id -> dense index for neighbour lookups.
    let max_id = ids.iter().copied().max().unwrap_or(0) as usize;
    let mut dense = vec![u32::MAX; max_id + 1];
    for (i, &id) in ids.iter().enumerate() {
        dense[id as usize] = i as u32;
    }

    let mut processed = vec![false; n];
    let mut reach = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Seed> = BinaryHeap::new();

    // Reusable neighbour buffer: (dense index, distance).
    let mut neigh: Vec<(u32, f64)> = Vec::new();

    let expand = |i: usize,
                  processed: &mut Vec<bool>,
                  reach: &mut Vec<f64>,
                  heap: &mut BinaryHeap<Seed>,
                  neigh: &mut Vec<(u32, f64)>| {
        // Neighbourhood of the point being emitted.
        neigh.clear();
        let eps_query = if eps.is_finite() { eps } else { f64::MAX };
        for (id, d) in tree.range(coords[i], eps_query) {
            neigh.push((dense[id as usize], d));
        }
        // Core distance: distance to the min_pts-th closest (the point
        // itself is part of its own neighbourhood, as in the original
        // formulation).
        if neigh.len() < min_pts {
            return;
        }
        neigh.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
        let core = neigh[min_pts - 1].1;
        for &(j, d) in neigh.iter() {
            let j = j as usize;
            if processed[j] {
                continue;
            }
            let r = core.max(d);
            if r < reach[j] {
                reach[j] = r;
                heap.push(Seed {
                    reach: r,
                    idx: j as u32,
                });
            }
        }
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Emit the component starting at `start`.
        processed[start] = true;
        plot.push(ids[start], f64::INFINITY);
        expand(start, &mut processed, &mut reach, &mut heap, &mut neigh);

        while let Some(Seed { reach: r, idx }) = heap.pop() {
            let i = idx as usize;
            if processed[i] || r > reach[i] {
                continue; // stale entry
            }
            processed[i] = true;
            plot.push(ids[i], reach[i]);
            expand(i, &mut processed, &mut reach, &mut heap, &mut neigh);
        }
    }
    plot
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_store::PointId;

    /// Two 1-d clusters with a wide gap.
    fn two_cluster_store() -> PointStore {
        let mut s = PointStore::new(1);
        for i in 0..20 {
            s.insert(&[i as f64 * 0.1], Some(0));
        }
        for i in 0..20 {
            s.insert(&[100.0 + i as f64 * 0.1], Some(1));
        }
        s
    }

    #[test]
    fn plot_covers_every_point_exactly_once() {
        let store = two_cluster_store();
        let plot = optics_points(&store, f64::INFINITY, 3);
        assert_eq!(plot.len(), store.len());
        let mut seen: Vec<u64> = plot.entries().iter().map(|e| e.id).collect();
        seen.sort_unstable();
        let mut want: Vec<u64> = store.ids().map(|id| u64::from(id.0)).collect();
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn gap_appears_as_reachability_spike() {
        let store = two_cluster_store();
        let plot = optics_points(&store, f64::INFINITY, 3);
        // Exactly one entry (the jump across the gap) has reachability near
        // 100 − 1.9 ≈ 98; everything else is tiny or the initial infinity.
        let big: Vec<f64> = plot
            .entries()
            .iter()
            .map(|e| e.reachability)
            .filter(|r| r.is_finite() && *r > 50.0)
            .collect();
        assert_eq!(big.len(), 1, "one inter-cluster jump, got {big:?}");
        assert!(big[0] > 90.0);
        // In-cluster reachability is bounded by the point spacing times
        // min_pts.
        let small = plot
            .entries()
            .iter()
            .filter(|e| e.reachability.is_finite() && e.reachability < 1.0)
            .count();
        assert_eq!(small, store.len() - 2);
    }

    #[test]
    fn bounded_eps_splits_components() {
        let store = two_cluster_store();
        let plot = optics_points(&store, 5.0, 3);
        // With eps = 5 the gap cannot be bridged: two infinite entries.
        let inf = plot
            .entries()
            .iter()
            .filter(|e| e.reachability.is_infinite())
            .count();
        assert_eq!(inf, 2);
    }

    #[test]
    fn cluster_order_is_contiguous() {
        let store = two_cluster_store();
        let plot = optics_points(&store, f64::INFINITY, 3);
        // Once the plot leaves the first cluster it never returns: labels
        // along the order look like A..AB..B.
        let labels: Vec<u32> = plot
            .entries()
            .iter()
            .map(|e| store.label(PointId(e.id as u32)).unwrap())
            .collect();
        let switches = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1, "order {labels:?}");
    }

    #[test]
    fn empty_store_gives_empty_plot() {
        let store = PointStore::new(2);
        assert!(optics_points(&store, 1.0, 3).is_empty());
    }

    #[test]
    fn min_pts_one_reachability_is_nearest_neighbor_distance() {
        let mut store = PointStore::new(1);
        store.insert(&[0.0], None);
        store.insert(&[1.0], None);
        store.insert(&[3.0], None);
        let plot = optics_points(&store, f64::INFINITY, 1);
        // With min_pts = 1 the core distance is 0 (the point itself), so
        // reachability = plain distance to the predecessor's neighbourhood.
        let finite: Vec<f64> = plot
            .entries()
            .iter()
            .map(|e| e.reachability)
            .filter(|r| r.is_finite())
            .collect();
        assert_eq!(finite, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn zero_min_pts_panics() {
        let store = PointStore::new(1);
        let _ = optics_points(&store, 1.0, 0);
    }

    #[test]
    fn singleton_store() {
        let mut store = PointStore::new(2);
        store.insert(&[1.0, 2.0], None);
        let plot = optics_points(&store, 1.0, 2);
        assert_eq!(plot.len(), 1);
        assert!(plot.entries()[0].reachability.is_infinite());
    }
}
