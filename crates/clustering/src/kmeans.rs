//! k-means (Lloyd's algorithm with k-means++ seeding), plain and weighted.
//!
//! Two roles: the classic *partitioning* baseline the paper's introduction
//! contrasts with hierarchical methods (\[14\]), and the macro-clustering
//! step of the stream literature it reviews (Aggarwal et al. run a
//! modified k-means that treats micro-clusters as weighted points — here,
//! [`kmeans_weighted`] over any [`DataSummary`] set via
//! [`kmeans_summaries`]).

use idb_core::DataSummary;
use idb_geometry::sq_dist;
use idb_store::PointStore;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids (k of them, possibly fewer if the input had fewer
    /// distinct weighted positions).
    pub centroids: Vec<Vec<f64>>,
    /// Per-input cluster index, aligned with the input order.
    pub assignments: Vec<usize>,
    /// Weighted sum of squared distances to the assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Weighted k-means over `(position, weight)` pairs.
///
/// Uses k-means++ seeding (weight-proportional) and runs Lloyd iterations
/// until assignments stabilize or `max_iter` is reached. Empty clusters are
/// re-seeded on the farthest point, so `k` centroids survive whenever the
/// input has at least `k` distinct positions.
///
/// # Panics
/// Panics if `k == 0`, the input is empty, any weight is non-positive, or
/// positions disagree in dimensionality.
pub fn kmeans_weighted<R: Rng + ?Sized>(
    positions: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!positions.is_empty(), "k-means on empty input");
    assert_eq!(positions.len(), weights.len(), "positions/weights mismatch");
    let dim = positions[0].len();
    for p in positions {
        assert_eq!(p.len(), dim, "dimensionality mismatch");
    }
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    let n = positions.len();
    let k = k.min(n);

    // --- k-means++ seeding (weight-proportional D² sampling). ------------
    let total_w: f64 = weights.iter().sum();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = weighted_pick(weights, total_w, rng);
    centroids.push(positions[first].clone());
    let mut d2: Vec<f64> = positions
        .iter()
        .map(|p| sq_dist(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let scores: Vec<f64> = d2.iter().zip(weights).map(|(d, w)| d * w).collect();
        let total: f64 = scores.iter().sum();
        let next = if total > 0.0 {
            weighted_pick(&scores, total, rng)
        } else {
            rng.gen_range(0..n)
        };
        centroids.push(positions[next].clone());
        let c = centroids.last().expect("just pushed").clone();
        for (d, p) in d2.iter_mut().zip(positions) {
            *d = d.min(sq_dist(p, &c));
        }
    }

    // --- Lloyd iterations. ------------------------------------------------
    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;
    for _ in 0..max_iter {
        iterations += 1;
        let mut changed = false;
        for (i, p) in positions.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    sq_dist(p, a.1)
                        .partial_cmp(&sq_dist(p, b.1))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Weighted centroid update.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut mass = vec![0.0f64; centroids.len()];
        for ((p, &w), &a) in positions.iter().zip(weights).zip(&assignments) {
            mass[a] += w;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += w * x;
            }
        }
        for (c, (s, &m)) in centroids.iter_mut().zip(sums.iter().zip(&mass)) {
            if m > 0.0 {
                for (cc, &ss) in c.iter_mut().zip(s) {
                    *cc = ss / m;
                }
            } else {
                // Re-seed an emptied cluster on the farthest point.
                let far = positions
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        let da = sq_dist(a.1, c);
                        let db = sq_dist(b.1, c);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty input");
                c.clone_from(&positions[far]);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = positions
        .iter()
        .zip(weights)
        .zip(&assignments)
        .map(|((p, &w), &a)| w * sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

fn weighted_pick<R: Rng + ?Sized>(weights: &[f64], total: f64, rng: &mut R) -> usize {
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Plain k-means over all live store points (weight 1 each).
pub fn kmeans_points<R: Rng + ?Sized>(
    store: &PointStore,
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> KMeansResult {
    let positions: Vec<Vec<f64>> = store.iter().map(|(_, p, _)| p.to_vec()).collect();
    let weights = vec![1.0; positions.len()];
    kmeans_weighted(&positions, &weights, k, max_iter, rng)
}

/// Macro-clustering: weighted k-means over summaries, each summary counted
/// with its point count (empty summaries are skipped; their positions in
/// the result carry `usize::MAX`).
pub fn kmeans_summaries<S: DataSummary, R: Rng + ?Sized>(
    summaries: &[S],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> (KMeansResult, Vec<usize>) {
    let live: Vec<usize> = (0..summaries.len())
        .filter(|&i| summaries[i].n() > 0)
        .collect();
    let positions: Vec<Vec<f64>> = live.iter().map(|&i| summaries[i].rep()).collect();
    let weights: Vec<f64> = live.iter().map(|&i| summaries[i].n() as f64).collect();
    let result = kmeans_weighted(&positions, &weights, k, max_iter, rng);
    let mut full = vec![usize::MAX; summaries.len()];
    for (pos, &i) in live.iter().enumerate() {
        full[i] = result.assignments[pos];
    }
    (result, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob_positions() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut pos = Vec::new();
        for i in 0..30 {
            pos.push(vec![(i % 6) as f64 * 0.2, (i / 6) as f64 * 0.2]);
            pos.push(vec![50.0 + (i % 6) as f64 * 0.2, (i / 6) as f64 * 0.2]);
        }
        let w = vec![1.0; pos.len()];
        (pos, w)
    }

    #[test]
    fn separates_two_blobs() {
        let (pos, w) = blob_positions();
        let mut rng = StdRng::seed_from_u64(5);
        let r = kmeans_weighted(&pos, &w, 2, 50, &mut rng);
        assert_eq!(r.centroids.len(), 2);
        // All left-blob points share one label, all right-blob the other.
        let left_label = r.assignments[0];
        for (i, &a) in r.assignments.iter().enumerate() {
            if pos[i][0] < 25.0 {
                assert_eq!(a, left_label);
            } else {
                assert_ne!(a, left_label);
            }
        }
        assert!(r.inertia < 30.0, "inertia {}", r.inertia);
    }

    #[test]
    fn weights_pull_centroids() {
        // Two positions; one has 99x the weight: the k=1 centroid must sit
        // at the weighted mean.
        let pos = vec![vec![0.0], vec![100.0]];
        let w = vec![99.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans_weighted(&pos, &w, 1, 10, &mut rng);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_capped_at_input_size() {
        let pos = vec![vec![0.0], vec![10.0]];
        let w = vec![1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(2);
        let r = kmeans_weighted(&pos, &w, 10, 10, &mut rng);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn kmeans_points_runs_on_store() {
        let mut store = PointStore::new(2);
        for i in 0..40 {
            store.insert(&[(i % 2) as f64 * 30.0, 0.0], Some(i % 2));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r = kmeans_points(&store, 2, 20, &mut rng);
        assert_eq!(r.assignments.len(), 40);
        let mut by_label = [usize::MAX; 2];
        for ((_, p, label), &a) in store.iter().zip(&r.assignments) {
            let l = label.unwrap() as usize;
            if by_label[l] == usize::MAX {
                by_label[l] = a;
            }
            assert_eq!(by_label[l], a, "point {p:?}");
        }
        assert_ne!(by_label[0], by_label[1]);
    }

    #[test]
    fn convergence_is_reported() {
        let (pos, w) = blob_positions();
        let mut rng = StdRng::seed_from_u64(8);
        let r = kmeans_weighted(&pos, &w, 2, 100, &mut rng);
        assert!(
            r.iterations < 100,
            "converged in {} iterations",
            r.iterations
        );
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = kmeans_weighted(&[], &[], 2, 10, &mut rng);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = kmeans_weighted(&[vec![1.0]], &[0.0], 1, 10, &mut rng);
    }
}
