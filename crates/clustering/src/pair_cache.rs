//! Incrementally maintained pairwise bubble-distance matrix — the
//! candidate-generation stage of OPTICS, made delta-refreshable.
//!
//! [`optics_bubbles_with`](crate::optics_bubbles::optics_bubbles_with)
//! recomputes all `O(s²)` pairwise distances every epoch. But
//! [`bubble_distance`] is a pure function of the two summaries'
//! sufficient statistics, so a pair whose endpoints are both unchanged
//! since the previous epoch keeps its cached value bit-for-bit.
//! [`PairCache`] exploits that: callers mirror the maintainer's slot
//! mutations ([`PairCache::push`], [`PairCache::swap_remove`] — a moved
//! slot keeps its cached distances, only its index changes) and mark
//! changed slots dirty ([`PairCache::touch`]); [`PairCache::refresh`]
//! then recomputes *only the dirty rows* and mirrors them, leaving
//! clean×clean pairs untouched. The refreshed matrix is bit-identical to
//! a from-scratch computation, so feeding its live sub-matrix
//! ([`PairCache::live_view`]) to
//! [`optics_from_matrix`](crate::optics_bubbles::optics_from_matrix)
//! yields exactly the ordering a full recompute would — the property the
//! delta-clustering equivalence suites assert over every dynamic
//! scenario.

use crate::optics_bubbles::bubble_distance_flat;
use idb_core::DataSummary;
use idb_geometry::parallel::run_chunks;
use idb_geometry::Parallelism;

/// A dense matrix of bubble distances over a slot space that mutates
/// like the maintainer's bubble vector (push / swap-remove / in-place
/// stat changes). Entries between empty summaries are `NaN`
/// placeholders; the diagonal is `0.0` (matching the from-scratch
/// matrix, whose diagonal is never read).
///
/// The matrix is stored *directed*: `rows[i][j]` is exactly
/// `bubble_distance(summary_i, summary_j)`, which differs from the
/// opposite orientation in the last bit (the two flanking
/// nearest-neighbour terms are added in argument order). The
/// from-scratch matrix orients every pair by live *position* (lower
/// position first), and swap-removes permute slots across epochs, so
/// only a cache keyed by `(row summary, column summary)` stays correct
/// under remapping; [`PairCache::live_view`] re-orients by position on
/// the way out.
#[derive(Debug, Clone, Default)]
pub struct PairCache {
    /// `rows[i][j]` = cached `bubble_distance` from slot `i` to slot `j`.
    rows: Vec<Vec<f64>>,
    /// Slots whose summary changed since the last refresh.
    dirty: Vec<bool>,
    /// Reusable per-refresh working memory (summary parts, dirty list);
    /// never carries state between refreshes.
    scratch: RefreshScratch,
}

/// Reusable buffers for [`PairCache::refresh`]: the per-slot summary parts
/// (representatives in one dimension-strided flat buffer, extents,
/// `nnDist(1)`, emptiness flags) extracted once per refresh — `rep()` is an
/// allocating trait call, so extracting per *slot* instead of per *pair*
/// removes the `O(s²)` allocation churn — plus the dirty-slot list.
#[derive(Debug, Clone, Default)]
struct RefreshScratch {
    reps: Vec<f64>,
    extents: Vec<f64>,
    nn1: Vec<f64>,
    empty: Vec<bool>,
    dirty_rows: Vec<usize>,
}

impl PairCache {
    /// An empty cache over zero slots.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.rows.len()
    }

    /// Slots currently marked dirty.
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Discards everything and re-sizes to `slots`, all dirty — the
    /// fallback when the change stream was interrupted and nothing can be
    /// trusted.
    pub fn reset(&mut self, slots: usize) {
        self.rows = (0..slots)
            .map(|i| {
                let mut row = vec![f64::NAN; slots];
                row[i] = 0.0;
                row
            })
            .collect();
        self.dirty = vec![true; slots];
    }

    /// Appends a new slot (dirty until refreshed).
    pub fn push(&mut self) {
        let n = self.rows.len();
        for row in &mut self.rows {
            row.push(f64::NAN);
        }
        let mut new_row = vec![f64::NAN; n + 1];
        new_row[n] = 0.0;
        self.rows.push(new_row);
        self.dirty.push(true);
    }

    /// Marks slot `i` dirty: its summary statistics changed, so every
    /// distance involving it must be recomputed.
    pub fn touch(&mut self, i: usize) {
        self.dirty[i] = true;
    }

    /// Removes slot `i` with `Vec::swap_remove` semantics: the former
    /// last slot moves into `i`, carrying its cached distances and dirty
    /// flag with it (a moved bubble is unchanged — only its index is).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn swap_remove(&mut self, i: usize) {
        self.rows.swap_remove(i);
        for row in &mut self.rows {
            row.swap_remove(i);
        }
        self.dirty.swap_remove(i);
    }

    /// Recomputes every dirty slot's row *and* column against all slots
    /// (the *touched neighborhoods* of this epoch), leaving clean×clean
    /// pairs untouched. Returns the number of slots recomputed — the work
    /// metric the delta-vs-full benchmark reports.
    ///
    /// Both orientations of each touched pair are computed (they differ
    /// in the last bit; see the type docs). The computations are pure and
    /// fan out over contiguous chunks, so the refreshed matrix is
    /// bit-identical under every [`Parallelism`] mode — and bit-identical
    /// to a from-scratch matrix over the same summaries.
    ///
    /// # Panics
    /// Panics if `summaries.len()` differs from the tracked slot count.
    pub fn refresh<S: DataSummary + Sync>(&mut self, summaries: &[S], par: Parallelism) -> usize {
        let s = self.rows.len();
        assert_eq!(summaries.len(), s, "summary slice must cover every slot");
        let scratch = &mut self.scratch;
        scratch.dirty_rows.clear();
        scratch.dirty_rows.extend((0..s).filter(|&i| self.dirty[i]));
        if scratch.dirty_rows.is_empty() {
            return 0;
        }
        // Extract every slot's summary parts once (a dirty slot's row
        // touches all slots): rep() allocates per call, so per-slot
        // extraction into the flat scratch replaces O(s · dirty) trait
        // allocations inside the pair loop.
        let dim = summaries.iter().find(|x| x.n() > 0).map_or(1, |x| x.dim());
        scratch.reps.clear();
        scratch.extents.clear();
        scratch.nn1.clear();
        scratch.empty.clear();
        for x in summaries {
            if x.n() == 0 {
                scratch.empty.push(true);
                let pad = scratch.reps.len() + dim;
                scratch.reps.resize(pad, 0.0);
                scratch.extents.push(0.0);
                scratch.nn1.push(0.0);
            } else {
                scratch.empty.push(false);
                scratch.reps.extend_from_slice(&x.rep());
                scratch.extents.push(x.extent());
                scratch.nn1.push(x.nn_dist(1));
            }
        }
        let (reps, extents, nn1, empty) = (
            &scratch.reps,
            &scratch.extents,
            &scratch.nn1,
            &scratch.empty,
        );
        // Bit-identical to bubble_distance over the original summaries:
        // same parts, same operations, same order.
        let pairwise = |a: usize, b: usize| {
            if empty[a] || empty[b] {
                f64::NAN
            } else {
                bubble_distance_flat(
                    &reps[a * dim..(a + 1) * dim],
                    extents[a],
                    nn1[a],
                    &reps[b * dim..(b + 1) * dim],
                    extents[b],
                    nn1[b],
                )
            }
        };
        // For each dirty slot i: its outgoing row d(i, ·) and incoming
        // column d(·, i).
        if par.effective_threads() == 1 {
            // Serial path: write rows and columns in place — no per-slot
            // row/column buffers at all.
            for &i in &scratch.dirty_rows {
                for j in 0..s {
                    self.rows[i][j] = if j == i { 0.0 } else { pairwise(i, j) };
                }
                for j in 0..s {
                    if j != i {
                        // A dirty j's own row write carries the same pure
                        // value, so overwrite order cannot matter.
                        self.rows[j][i] = pairwise(j, i);
                    }
                }
            }
        } else {
            let computed = run_chunks(&scratch.dirty_rows, par.effective_threads(), |chunk| {
                chunk
                    .iter()
                    .map(|&i| {
                        let row: Vec<f64> = (0..s)
                            .map(|j| if j == i { 0.0 } else { pairwise(i, j) })
                            .collect();
                        let col: Vec<f64> = (0..s)
                            .map(|j| if j == i { 0.0 } else { pairwise(j, i) })
                            .collect();
                        (row, col)
                    })
                    .collect::<Vec<(Vec<f64>, Vec<f64>)>>()
            });
            for (&i, (row, col)) in scratch
                .dirty_rows
                .iter()
                .zip(computed.into_iter().flatten())
            {
                self.rows[i] = row;
                for (j, v) in col.into_iter().enumerate() {
                    if j != i {
                        self.rows[j][i] = v;
                    }
                }
            }
        }
        for d in &mut self.dirty {
            *d = false;
        }
        scratch.dirty_rows.len()
    }

    /// The dense sub-matrix over the slots in `order`, laid out exactly
    /// like the matrix `optics_bubbles_with` builds internally: row-major
    /// over `order` positions, `0.0` diagonal, each pair oriented lower
    /// position first and mirrored — ready for
    /// [`optics_from_matrix`](crate::optics_bubbles::optics_from_matrix).
    ///
    /// Callers must [`refresh`](Self::refresh) first and list only
    /// non-empty slots.
    ///
    /// # Panics
    /// Panics if a listed slot is out of range or (in debug builds) if
    /// any slot is still dirty or a selected entry is `NaN`.
    #[must_use]
    pub fn live_view(&self, order: &[usize]) -> Vec<f64> {
        debug_assert!(self.dirty.iter().all(|&d| !d), "refresh before viewing");
        let s = order.len();
        let mut out = vec![0.0f64; s * s];
        for (x, &a) in order.iter().enumerate() {
            for (y, &b) in order.iter().enumerate().skip(x + 1) {
                let v = self.rows[a][b];
                debug_assert!(!v.is_nan(), "live pair ({a}, {b}) has no cached distance");
                out[x * s + y] = v;
                out[y * s + x] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics_bubbles::bubble_distance;
    use idb_core::SufficientStats;

    #[derive(Debug, Clone)]
    struct Ball {
        stats: SufficientStats,
    }

    impl Ball {
        fn new(center: &[f64], radius: f64, n: usize) -> Self {
            let dim = center.len();
            let mut stats = SufficientStats::new(dim);
            for i in 0..n {
                let mut p = center.to_vec();
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                p[i % dim] += sign * radius;
                stats.add(&p);
            }
            Self { stats }
        }
    }

    impl DataSummary for Ball {
        fn dim(&self) -> usize {
            self.stats.dim()
        }
        fn n(&self) -> u64 {
            self.stats.n()
        }
        fn rep(&self) -> Vec<f64> {
            self.stats.rep().unwrap()
        }
        fn extent(&self) -> f64 {
            self.stats.extent()
        }
        fn nn_dist(&self, k: usize) -> f64 {
            self.stats.nn_dist(k)
        }
    }

    fn scratch_matrix(balls: &[Ball], order: &[usize]) -> Vec<f64> {
        let s = order.len();
        let mut out = vec![0.0f64; s * s];
        for (x, &a) in order.iter().enumerate() {
            for (y, &b) in order.iter().enumerate().skip(x + 1) {
                // Lower-position-first orientation, mirrored — exactly
                // how `optics_bubbles_with` fills its matrix.
                let v = bubble_distance(&balls[a], &balls[b]);
                out[x * s + y] = v;
                out[y * s + x] = v;
            }
        }
        out
    }

    #[test]
    fn reset_refresh_matches_scratch() {
        let balls: Vec<Ball> = (0..5)
            .map(|i| Ball::new(&[f64::from(i) * 3.0, 1.0], 0.5, 4 + i as usize))
            .collect();
        let mut cache = PairCache::new();
        cache.reset(balls.len());
        let touched = cache.refresh(&balls, Parallelism::Serial);
        assert_eq!(touched, 5);
        let order: Vec<usize> = (0..5).collect();
        assert_eq!(cache.live_view(&order), scratch_matrix(&balls, &order));
    }

    #[test]
    fn touch_recomputes_only_dirty_rows_yet_stays_exact() {
        let mut balls: Vec<Ball> = (0..6)
            .map(|i| Ball::new(&[f64::from(i), f64::from(i % 2)], 0.3, 5))
            .collect();
        let mut cache = PairCache::new();
        cache.reset(balls.len());
        cache.refresh(&balls, Parallelism::Serial);

        balls[2] = Ball::new(&[40.0, 0.0], 0.3, 9);
        cache.touch(2);
        let touched = cache.refresh(&balls, Parallelism::Serial);
        assert_eq!(touched, 1);
        let order: Vec<usize> = (0..6).collect();
        assert_eq!(cache.live_view(&order), scratch_matrix(&balls, &order));
    }

    #[test]
    fn swap_remove_carries_the_moved_slots_distances() {
        let mut balls: Vec<Ball> = (0..5)
            .map(|i| Ball::new(&[f64::from(i) * 2.0, 0.0], 0.4, 6))
            .collect();
        let mut cache = PairCache::new();
        cache.reset(balls.len());
        cache.refresh(&balls, Parallelism::Serial);

        balls.swap_remove(1);
        cache.swap_remove(1);
        // No refresh needed: the moved slot is unchanged.
        assert_eq!(cache.dirty_count(), 0);
        let order: Vec<usize> = (0..4).collect();
        assert_eq!(cache.live_view(&order), scratch_matrix(&balls, &order));
    }

    #[test]
    fn push_then_refresh_adds_one_dirty_row() {
        let mut balls: Vec<Ball> = (0..4)
            .map(|i| Ball::new(&[f64::from(i) * 2.0, 0.0], 0.4, 6))
            .collect();
        let mut cache = PairCache::new();
        cache.reset(balls.len());
        cache.refresh(&balls, Parallelism::Serial);

        balls.push(Ball::new(&[9.0, 9.0], 0.4, 3));
        cache.push();
        assert_eq!(cache.slots(), 5);
        let touched = cache.refresh(&balls, Parallelism::Serial);
        assert_eq!(touched, 1);
        let order: Vec<usize> = (0..5).collect();
        assert_eq!(cache.live_view(&order), scratch_matrix(&balls, &order));
    }

    #[test]
    fn empty_slots_are_nan_and_skipped_by_live_order() {
        let balls = vec![
            Ball::new(&[0.0, 0.0], 0.4, 6),
            Ball {
                stats: SufficientStats::new(2),
            },
            Ball::new(&[4.0, 0.0], 0.4, 6),
        ];
        let mut cache = PairCache::new();
        cache.reset(balls.len());
        cache.refresh(&balls, Parallelism::Serial);
        let order = vec![0, 2];
        assert_eq!(cache.live_view(&order), scratch_matrix(&balls, &order));
    }

    #[test]
    fn parallel_refresh_is_bit_identical_to_serial() {
        let balls: Vec<Ball> = (0..17)
            .map(|i| {
                Ball::new(
                    &[f64::from(i % 5) * 2.0, f64::from(i / 5)],
                    0.5,
                    3 + i as usize,
                )
            })
            .collect();
        let mut serial = PairCache::new();
        serial.reset(balls.len());
        serial.refresh(&balls, Parallelism::Serial);
        let order: Vec<usize> = (0..17).collect();
        let want = serial.live_view(&order);
        for threads in [2, 4, 8] {
            let mut par = PairCache::new();
            par.reset(balls.len());
            par.refresh(&balls, Parallelism::Threads(threads));
            assert_eq!(par.live_view(&order), want, "{threads} threads");
        }
    }
}
