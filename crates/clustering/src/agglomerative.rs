//! Generic agglomerative hierarchical clustering via the nearest-neighbour
//! chain algorithm with Lance–Williams updates.
//!
//! SLINK covers the single-link case in O(n) memory; this module provides
//! the remaining classic linkages — complete, average (UPGMA) and Ward —
//! exactly, in `O(n²)` time and memory. The NN-chain algorithm produces
//! the correct hierarchy for all *reducible* linkages, which includes all
//! four offered here.
//!
//! These serve as baselines for the hierarchical-clustering substrate and
//! let examples contrast the chaining behaviour of single-link with the
//! compact clusters of complete/Ward linkage.

use std::cmp::Ordering;

/// The linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance (chains).
    Single,
    /// Maximum pairwise distance (compact, diameter-bounded clusters —
    /// the criterion of Charikar et al., the paper's reference \[6\]).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion. Input distances must be
    /// Euclidean; merge heights are in squared-distance units.
    Ward,
}

/// One merge step: the two cluster representatives joined and the linkage
/// height, in merge order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster (slot of one original point).
    pub a: usize,
    /// Second merged cluster.
    pub b: usize,
    /// Linkage height of the merge.
    pub height: f64,
}

/// An agglomerative clustering result: `n − 1` merges over `n` points.
#[derive(Debug, Clone)]
pub struct AgglomerativeResult {
    n: usize,
    merges: Vec<Merge>,
}

impl AgglomerativeResult {
    /// The merges, in the order they were performed. NN-chain emits merges
    /// in non-monotone order for some inputs; they are sorted by height
    /// here, which is valid for reducible linkages.
    #[must_use]
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Number of clustered points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no point was clustered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Flat clustering into exactly `min(k, n)` clusters (dense labels).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn cut_into(&self, k: usize) -> Vec<usize> {
        assert!(k > 0, "k must be positive");
        let n = self.n;
        if n == 0 {
            return Vec::new();
        }
        let k = k.min(n);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        for m in self.merges.iter().take(n - k) {
            let a = find(&mut parent, m.a as u32);
            let b = find(&mut parent, m.b as u32);
            if a != b {
                parent[a as usize] = b;
            }
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0;
        for i in 0..n {
            let root = find(&mut parent, i as u32) as usize;
            if labels[root] == usize::MAX {
                labels[root] = next;
                next += 1;
            }
            labels[i] = labels[root];
        }
        labels
    }
}

/// Runs agglomerative clustering over `n` points with a caller-provided
/// distance oracle (`dist(i, j)`, symmetric; for [`Linkage::Ward`] it must
/// be the Euclidean distance — squaring happens internally).
///
/// `O(n²)` time and memory.
pub fn agglomerative<F: FnMut(usize, usize) -> f64>(
    n: usize,
    linkage: Linkage,
    mut dist: F,
) -> AgglomerativeResult {
    if n == 0 {
        return AgglomerativeResult {
            n,
            merges: Vec::new(),
        };
    }
    // Working distance matrix (squared for Ward).
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut v = dist(i, j);
            if linkage == Linkage::Ward {
                v *= v;
            }
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    let mut active = vec![true; n];
    let mut size = vec![1usize; n];
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            let start = (0..n).find(|&i| active[i]).expect("remaining > 1");
            chain.push(start);
        }
        loop {
            let top = *chain.last().expect("chain non-empty");
            // Nearest active neighbour of `top`, preferring the previous
            // chain element on ties (required for NN-chain correctness).
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            let mut nearest = None;
            let mut best = f64::INFINITY;
            for j in 0..n {
                if j == top || !active[j] {
                    continue;
                }
                let v = d[top * n + j];
                let better = match v.partial_cmp(&best) {
                    Some(Ordering::Less) => true,
                    Some(Ordering::Equal) => Some(j) == prev,
                    _ => false,
                };
                if (better || nearest.is_none()) && v <= best {
                    best = v;
                    nearest = Some(j);
                }
            }
            let nearest = nearest.expect("at least one other active cluster");
            if Some(nearest) == prev {
                // Reciprocal nearest neighbours: merge.
                chain.pop();
                chain.pop();
                let (a, b) = (top, nearest);
                merges.push(Merge { a, b, height: best });
                // Lance–Williams update into slot `a`; deactivate `b`.
                let (na, nb) = (size[a] as f64, size[b] as f64);
                for m in 0..n {
                    if !active[m] || m == a || m == b {
                        continue;
                    }
                    let dam = d[a * n + m];
                    let dbm = d[b * n + m];
                    let nm = size[m] as f64;
                    let new = match linkage {
                        Linkage::Single => dam.min(dbm),
                        Linkage::Complete => dam.max(dbm),
                        Linkage::Average => (na * dam + nb * dbm) / (na + nb),
                        Linkage::Ward => {
                            ((na + nm) * dam + (nb + nm) * dbm - nm * best) / (na + nb + nm)
                        }
                    };
                    d[a * n + m] = new;
                    d[m * n + a] = new;
                }
                size[a] += size[b];
                active[b] = false;
                remaining -= 1;
                break;
            }
            chain.push(nearest);
        }
    }

    // NN-chain can emit merges out of height order; sorting restores the
    // dendrogram order (valid for reducible linkages).
    merges.sort_by(|x, y| x.height.partial_cmp(&y.height).unwrap_or(Ordering::Equal));
    AgglomerativeResult { n, merges }
}

/// Agglomerative clustering over explicit coordinates with the Euclidean
/// metric.
pub fn agglomerative_points(points: &[Vec<f64>], linkage: Linkage) -> AgglomerativeResult {
    agglomerative(points.len(), linkage, |i, j| {
        idb_geometry::dist(&points[i], &points[j])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.3, 0.0]);
            pts.push(vec![100.0 + i as f64 * 0.3, 0.0]);
        }
        pts
    }

    #[test]
    fn all_linkages_separate_two_blobs() {
        let pts = two_blobs();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let r = agglomerative_points(&pts, linkage);
            assert_eq!(r.merges().len(), pts.len() - 1);
            let labels = r.cut_into(2);
            for (i, &l) in labels.iter().enumerate() {
                assert_eq!(l, labels[i % 2], "{linkage:?}");
            }
            assert_ne!(labels[0], labels[1], "{linkage:?}");
        }
    }

    #[test]
    fn single_link_matches_slink() {
        // Cross-validate against the independent SLINK implementation: the
        // sorted merge heights must coincide (they are the MST weights).
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                vec![
                    (i as f64 * 0.77).sin() * 10.0,
                    (i as f64 * 1.3).cos() * 10.0,
                ]
            })
            .collect();
        let agg = agglomerative_points(&pts, Linkage::Single);
        let slk = crate::slink::slink_points(&pts);
        let mut a: Vec<f64> = agg.merges().iter().map(|m| m.height).collect();
        let mut b = slk.merge_levels();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn complete_linkage_resists_chaining() {
        // A tight pair, a uniform chain, another tight pair — the classic
        // single-vs-complete discriminator. Single-link cuts at the single
        // largest gap (between the chain end at 7 and the pair at 9), so
        // the chain clings to the left pair; complete-link minimizes
        // diameters and splits the chain near its middle, so the chain's
        // right end joins the right pair.
        let xs = [0.0, 0.6, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0, 9.6];
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();

        let single = agglomerative_points(&pts, Linkage::Single).cut_into(2);
        let complete = agglomerative_points(&pts, Linkage::Complete).cut_into(2);
        // index 7 is x = 7.0, index 0 is x = 0.0, index 9 is x = 9.6.
        assert_eq!(single[7], single[0], "single link chains the bridge left");
        assert_ne!(single[7], single[9]);
        assert_eq!(complete[7], complete[9], "complete link balances diameters");
        assert_ne!(complete[7], complete[0]);
    }

    #[test]
    fn ward_merges_low_variance_first() {
        // Three points: a close pair and a far outlier — the pair merges
        // first under Ward.
        let pts = vec![vec![0.0], vec![1.0], vec![10.0]];
        let r = agglomerative_points(&pts, Linkage::Ward);
        let first = r.merges()[0];
        let pair = [first.a, first.b];
        assert!(pair.contains(&0) && pair.contains(&1));
    }

    #[test]
    fn average_linkage_height_is_mean_distance() {
        // Two singletons at distance 4 and 6 from a pair: UPGMA height of
        // the final merge is the average of all inter-cluster distances.
        let pts = vec![vec![0.0], vec![2.0], vec![10.0]];
        let r = agglomerative_points(&pts, Linkage::Average);
        // First merge: {0, 2} at height 2. Final: avg(d(0,10), d(2,10)) =
        // avg(10, 8) = 9.
        assert!((r.merges()[0].height - 2.0).abs() < 1e-9);
        assert!((r.merges()[1].height - 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        let r = agglomerative_points(&[], Linkage::Average);
        assert!(r.is_empty());
        assert!(r.cut_into(3).is_empty());

        let r = agglomerative_points(&[vec![1.0]], Linkage::Ward);
        assert_eq!(r.len(), 1);
        assert!(r.merges().is_empty());
        assert_eq!(r.cut_into(1), vec![0]);
    }
}
