//! ξ-cluster extraction from reachability plots (Ankerst, Breunig,
//! Kriegel, Sander — the original OPTICS paper's own extraction method).
//!
//! Where the cluster-tree method of [`crate::extract`] splits at
//! significant local *maxima*, the ξ method finds clusters bounded by
//! *ξ-steep areas*: a region is a cluster when the reachability falls by a
//! factor `1 − ξ` on its left flank (a steep-down area) and rises by the
//! same factor on its right flank (a steep-up area), with the interior
//! staying below both flanks. The output is a *set of nested clusters*
//! (the hierarchy), not a flat partition.
//!
//! The implementation follows the published ExtractClusters algorithm with
//! its `mib` (maximum-in-between) filtering; the documented simplification
//! is that plateaus of infinite reachability are not themselves steep
//! (they separate components outright).

use crate::reachability::ReachabilityPlot;

/// Parameters of the ξ extraction.
#[derive(Debug, Clone, Copy)]
pub struct XiParams {
    /// Relative reachability drop/rise that counts as steep, in `(0, 1)`.
    pub xi: f64,
    /// Minimum number of plot entries per cluster (also the bound on
    /// interruptions inside a steep area), typically OPTICS' MinPts.
    pub min_cluster_size: usize,
}

impl XiParams {
    /// Standard parameters: `xi = 0.05`, minimum size as given.
    #[must_use]
    pub fn new(xi: f64, min_cluster_size: usize) -> Self {
        assert!(xi > 0.0 && xi < 1.0, "xi must be in (0, 1)");
        assert!(min_cluster_size >= 2, "min_cluster_size must be at least 2");
        Self {
            xi,
            min_cluster_size,
        }
    }
}

/// One extracted ξ-cluster: a half-open entry range `[start, end)` of the
/// plot. Clusters may nest (the hierarchy); they never partially overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XiCluster {
    /// First plot index of the cluster.
    pub start: usize,
    /// One past the last plot index.
    pub end: usize,
}

impl XiCluster {
    /// Number of entries covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for a degenerate empty range (never produced).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

#[derive(Debug, Clone, Copy)]
struct SteepDownArea {
    start: usize,
    end: usize,
    /// Maximum reachability seen between this area's end and the current
    /// scan position.
    mib: f64,
}

/// `r[i]` with one-past-the-end reading as infinity (a virtual wall).
fn reach_at(r: &[f64], i: usize) -> f64 {
    r.get(i).copied().unwrap_or(f64::INFINITY)
}

fn steep_down(r: &[f64], i: usize, xi: f64) -> bool {
    let a = reach_at(r, i);
    let b = reach_at(r, i + 1);
    if a.is_infinite() {
        return b.is_finite();
    }
    a * (1.0 - xi) >= b
}

fn steep_up(r: &[f64], i: usize, xi: f64) -> bool {
    let a = reach_at(r, i);
    let b = reach_at(r, i + 1);
    if b.is_infinite() {
        return a.is_finite();
    }
    a <= b * (1.0 - xi)
}

/// Extends a steep area starting at `i`: returns its last index. `steep`
/// tests single-point steepness; `monotone` tests the allowed direction.
fn extend_area<FS, FM>(r: &[f64], mut i: usize, max_gap: usize, steep: FS, monotone: FM) -> usize
where
    FS: Fn(&[f64], usize) -> bool,
    FM: Fn(f64, f64) -> bool,
{
    let mut end = i;
    let mut gap = 0usize;
    while i + 1 < r.len() {
        if !monotone(reach_at(r, i), reach_at(r, i + 1)) {
            break;
        }
        i += 1;
        if steep(r, i) {
            end = i;
            gap = 0;
        } else {
            gap += 1;
            if gap >= max_gap {
                break;
            }
        }
    }
    end
}

/// Extracts the ξ-clusters of a reachability plot, sorted by start index
/// (outer clusters before the nested ones they contain).
#[must_use]
pub fn extract_xi(plot: &ReachabilityPlot, params: &XiParams) -> Vec<XiCluster> {
    let r: Vec<f64> = plot.entries().iter().map(|e| e.reachability).collect();
    let n = r.len();
    let xi = params.xi;
    let min_size = params.min_cluster_size;
    let mut sdas: Vec<SteepDownArea> = Vec::new();
    let mut clusters: Vec<XiCluster> = Vec::new();
    let mut mib = 0.0f64;
    let mut index = 0usize;

    // The scan runs up to and including the last entry: `reach_at` reads
    // one-past-the-end as an infinite wall, so a trailing valley still has
    // a steep-up flank.
    while index < n {
        mib = mib.max(reach_at(&r, index));
        if steep_down(&r, index, xi) {
            // Filter SDAs that the global mib invalidates, update the rest.
            sdas.retain(|d| {
                let start_r = reach_at(&r, d.start);
                start_r.is_infinite() || start_r * (1.0 - xi) >= mib
            });
            for d in &mut sdas {
                d.mib = d.mib.max(mib);
            }
            let end = extend_area(
                &r,
                index,
                min_size,
                |r, i| steep_down(r, i, xi),
                |a, b| a >= b,
            );
            sdas.push(SteepDownArea {
                start: index,
                end,
                mib: 0.0,
            });
            index = end + 1;
            mib = reach_at(&r, index.min(n - 1));
        } else if steep_up(&r, index, xi) {
            sdas.retain(|d| {
                let start_r = reach_at(&r, d.start);
                start_r.is_infinite() || start_r * (1.0 - xi) >= mib
            });
            for d in &mut sdas {
                d.mib = d.mib.max(mib);
            }
            let end = extend_area(
                &r,
                index,
                min_size,
                |r, i| steep_up(r, i, xi),
                |a, b| a <= b,
            );
            let end_next = reach_at(&r, end + 1);
            for d in &sdas {
                let start_r = reach_at(&r, d.start);
                // mib condition (sc2*): the in-between region must be
                // xi-significantly below both flanks.
                let bound = if start_r.is_finite() && end_next.is_finite() {
                    start_r.min(end_next) * (1.0 - xi)
                } else if start_r.is_finite() {
                    start_r * (1.0 - xi)
                } else if end_next.is_finite() {
                    end_next * (1.0 - xi)
                } else {
                    f64::INFINITY
                };
                if d.mib > bound {
                    continue;
                }
                // Boundary adjustment (cases a/b/c of the published
                // algorithm).
                let (mut s, mut e) = (d.start, end);
                if start_r.is_infinite() || start_r * (1.0 - xi) >= end_next {
                    // Left flank towers over the right: trim the start down
                    // to the first entry not above the right wall.
                    if end_next.is_finite() {
                        s = (d.start..=d.end)
                            .filter(|&x| reach_at(&r, x) > end_next)
                            .max()
                            .map_or(d.start, |x| x)
                            .max(d.start);
                    }
                } else if end_next * (1.0 - xi) >= start_r {
                    // Right flank towers over the left: trim the end back.
                    e = (index..=end)
                        .filter(|&x| reach_at(&r, x) < start_r)
                        .min()
                        .map_or(end, |x| x);
                }
                // Half-open range: the steep-up area's entries belong to
                // the cluster, the wall after them does not.
                let cluster = XiCluster {
                    start: s,
                    end: e + 1,
                };
                if cluster.len() >= min_size {
                    clusters.push(cluster);
                }
            }
            index = end + 1;
            mib = reach_at(&r, index.min(n - 1));
        } else {
            index += 1;
        }
    }

    clusters.sort_by_key(|c| (c.start, std::cmp::Reverse(c.end)));
    clusters.dedup();

    // Enforce the nesting guarantee. The published mib filtering admits
    // rare crossing pairs on noisy plots (a steep-down area opened inside
    // one cluster can survive to pair with a later steep-up area); drop
    // any cluster that partially overlaps an already-kept one, keeping the
    // outer cluster of each crossing pair.
    let mut kept: Vec<XiCluster> = Vec::with_capacity(clusters.len());
    'candidates: for c in clusters {
        for k in &kept {
            let disjoint = c.end <= k.start || k.end <= c.start;
            let nested =
                (k.start <= c.start && c.end <= k.end) || (c.start <= k.start && k.end <= c.end);
            if !disjoint && !nested {
                continue 'candidates;
            }
        }
        kept.push(c);
    }
    kept
}

/// Materializes ξ-clusters as id lists.
#[must_use]
pub fn xi_cluster_ids(plot: &ReachabilityPlot, clusters: &[XiCluster]) -> Vec<Vec<u64>> {
    clusters
        .iter()
        .map(|c| {
            plot.entries()[c.start..c.end]
                .iter()
                .map(|e| e.id)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::PlotEntry;

    fn plot_of(reach: &[f64]) -> ReachabilityPlot {
        ReachabilityPlot::from_entries(
            reach
                .iter()
                .enumerate()
                .map(|(i, &r)| PlotEntry {
                    id: i as u64,
                    reachability: r,
                })
                .collect(),
        )
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn two_deep_valleys_give_two_clusters() {
        // Steep fall into each valley, steep rise out.
        let reach = [INF, 0.1, 0.1, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_xi(&plot, &XiParams::new(0.1, 3));
        assert!(
            clusters.iter().any(|c| c.start <= 1 && c.end >= 4),
            "left valley found: {clusters:?}"
        );
        assert!(
            clusters.iter().any(|c| c.start >= 5 && c.end >= 9),
            "right valley found: {clusters:?}"
        );
    }

    #[test]
    fn shallow_fluctuation_is_not_a_cluster_boundary() {
        // Values fluctuate by far less than xi = 0.3: no steep area exists
        // except the initial fall from infinity, so at most one cluster.
        let reach = [INF, 1.0, 0.99, 1.0, 0.98, 1.0, 0.99, 1.0];
        let plot = plot_of(&reach);
        let clusters = extract_xi(&plot, &XiParams::new(0.3, 3));
        assert!(clusters.len() <= 1, "{clusters:?}");
    }

    #[test]
    fn nested_valleys_produce_nested_clusters() {
        let mut reach = vec![INF];
        reach.extend(std::iter::repeat_n(0.1, 5));
        reach.push(1.0);
        reach.extend(std::iter::repeat_n(0.1, 5));
        reach.push(10.0);
        reach.extend(std::iter::repeat_n(3.0, 5));
        let plot = plot_of(&reach);
        let clusters = extract_xi(&plot, &XiParams::new(0.2, 3));
        // Expect at least the two fine valleys; a surrounding coarse
        // cluster may also appear (nesting).
        let covers = |lo: usize, hi: usize| clusters.iter().any(|c| c.start <= lo && c.end >= hi);
        assert!(covers(1, 6), "first fine valley: {clusters:?}");
        assert!(covers(7, 12), "second fine valley: {clusters:?}");
        for c in &clusters {
            assert!(c.len() >= 3);
        }
        // Nesting only — no partial overlap.
        for a in &clusters {
            for b in &clusters {
                let disjoint = a.end <= b.start || b.end <= a.start;
                let nested = (a.start <= b.start && b.end <= a.end)
                    || (b.start <= a.start && a.end <= b.end);
                assert!(disjoint || nested, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn xi_ids_match_ranges() {
        let reach = [INF, 0.1, 0.1, 0.1, 5.0, 0.2, 0.2, 0.2];
        let plot = plot_of(&reach);
        let clusters = extract_xi(&plot, &XiParams::new(0.1, 3));
        let ids = xi_cluster_ids(&plot, &clusters);
        for (c, id_list) in clusters.iter().zip(&ids) {
            assert_eq!(id_list.len(), c.len());
            assert_eq!(id_list[0], c.start as u64);
        }
    }

    #[test]
    fn empty_and_tiny_plots() {
        let plot = ReachabilityPlot::new();
        assert!(extract_xi(&plot, &XiParams::new(0.1, 3)).is_empty());
        let plot = plot_of(&[INF]);
        assert!(extract_xi(&plot, &XiParams::new(0.1, 3)).is_empty());
    }

    #[test]
    fn crossing_candidates_are_reduced_to_nesting() {
        // Regression: on this noisy plot the raw mib filtering emits the
        // crossing pair {0, 52} and {22, 76}; the nesting filter must keep
        // only hierarchically consistent (disjoint or nested) clusters.
        let reach = [
            INF, 3.3530, 0.6900, 2.3498, 0.8682, 1.2153, 3.0410, 5.0201, 5.8027, 1.7420, 5.4355,
            4.8091, 6.0741, 8.5127, 3.3928, 1.0191, 8.9211, 0.0772, 1.7583, 5.7085, 5.4878, 4.4799,
            INF, 1.2545, 0.1079, 0.6827, 9.4729, 5.0560, 6.6477, 8.2132, 0.8623, 0.4861, 6.4328,
            4.7260, 8.1240, 3.8825, 0.9223, 1.6326, 4.1992, 9.8957, 5.4777, 5.4124, 2.4091, 1.3620,
            5.8797, INF, 3.6782, 6.6331, 6.5548, 6.6910, 6.6142, 9.2690, INF, 8.1212, 9.4931,
            9.9672, 7.9471, 0.5675, 4.2904, 8.6289, 1.4633, 7.8925, 4.3364, 0.0964, 9.5751, 9.9215,
            0.3388, 3.4932, 2.2387, 1.2927, 9.0609, 6.0907, 8.2923, 9.0163, 4.7986, 9.0870, INF,
        ];
        let plot = plot_of(&reach);
        let clusters = extract_xi(&plot, &XiParams::new(0.1, 3));
        assert!(!clusters.is_empty());
        for a in &clusters {
            for b in &clusters {
                let disjoint = a.end <= b.start || b.end <= a.start;
                let nested = (a.start <= b.start && b.end <= a.end)
                    || (b.start <= a.start && a.end <= b.end);
                assert!(disjoint || nested, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "xi must be")]
    fn invalid_xi_panics() {
        let _ = XiParams::new(1.0, 3);
    }

    #[test]
    fn larger_xi_is_more_conservative() {
        // A moderate wall (factor 2): xi = 0.3 splits, xi = 0.6 does not
        // (0.4 * wall > valley means the rise isn't steep enough).
        let reach = [INF, 1.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0, 1.0];
        let plot = plot_of(&reach);
        let fine = extract_xi(&plot, &XiParams::new(0.3, 3));
        let coarse = extract_xi(&plot, &XiParams::new(0.6, 3));
        assert!(fine.len() >= coarse.len(), "{fine:?} vs {coarse:?}");
    }
}
