//! Automatic extraction of flat clusters from a reachability plot.
//!
//! Implements the cluster-tree method of Sander, Qin, Lu, Niu and Kovarsky
//! (*Automatic Extraction of Clusters from Hierarchical Clustering
//! Representations*, 2003) — the paper's reference \[16\], which its
//! evaluation uses (in "a modified version") to turn OPTICS output into the
//! flat clusters scored by the F-measure.
//!
//! The idea: cluster boundaries are *significant local maxima* of the
//! reachability plot. The plot is split recursively at the largest local
//! maximum whose flanking regions are both, on average, sufficiently deeper
//! than the maximum itself (`significance_ratio`, 0.75 in the original);
//! insignificant maxima are skipped, regions smaller than
//! `min_cluster_size` are treated as noise, and the recursion's leaves are
//! the extracted clusters.

use crate::reachability::ReachabilityPlot;
use std::collections::HashMap;

/// Parameters of the extraction.
#[derive(Debug, Clone, Copy)]
pub struct ExtractParams {
    /// A split at maximum `m` is significant when the average reachability
    /// of both flanking regions is below `significance_ratio ·
    /// reachability(m)`. The original publication recommends 0.75.
    pub significance_ratio: f64,
    /// Regions smaller than this are considered noise, and maxima are
    /// required to dominate a window of this size on both sides.
    pub min_cluster_size: usize,
}

impl Default for ExtractParams {
    fn default() -> Self {
        Self {
            significance_ratio: 0.75,
            min_cluster_size: 5,
        }
    }
}

impl ExtractParams {
    /// Parameters with the given minimum cluster size and the standard
    /// significance ratio.
    #[must_use]
    pub fn with_min_size(min_cluster_size: usize) -> Self {
        Self {
            min_cluster_size,
            ..Self::default()
        }
    }
}

/// One node of the extracted cluster tree: a contiguous plot region and its
/// sub-clusters.
#[derive(Debug, Clone)]
pub struct ClusterNode {
    /// Half-open entry range `[start, end)` of the plot.
    pub range: (usize, usize),
    /// The reachability value this node was split off at (`None` for the
    /// root).
    pub split_value: Option<f64>,
    /// Nested sub-clusters (empty for leaves).
    pub children: Vec<ClusterNode>,
}

impl ClusterNode {
    /// Leaf ranges below (or at) this node, left to right.
    #[must_use]
    pub fn leaves(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<(usize, usize)>) {
        if self.children.is_empty() {
            out.push(self.range);
        } else {
            for c in &self.children {
                c.collect_leaves(out);
            }
        }
    }
}

/// Indices of the local maxima of the reachability sequence, in descending
/// value order. An index qualifies when its value dominates a window of
/// `w` entries on each side (infinite values always qualify).
fn local_maxima(reach: &[f64], w: usize) -> Vec<usize> {
    let n = reach.len();
    let mut maxima = Vec::new();
    for m in 1..n {
        let v = reach[m];
        if v.is_infinite() {
            maxima.push(m);
            continue;
        }
        let lo = m.saturating_sub(w);
        let hi = (m + w + 1).min(n);
        let dominated = (lo..hi).any(|j| reach[j] > v);
        if !dominated && (reach[m - 1] < v || (m + 1 < n && reach[m + 1] < v)) {
            maxima.push(m);
        }
    }
    maxima.sort_by(|&a, &b| {
        reach[b]
            .partial_cmp(&reach[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    maxima
}

/// Average of the finite reachability values in `reach[range]`; 0 when the
/// range has no finite values (an all-dense region never blocks a split).
fn avg_finite(reach: &[f64], start: usize, end: usize) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &r in &reach[start..end] {
        if r.is_finite() {
            sum += r;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

fn build_node(
    reach: &[f64],
    start: usize,
    end: usize,
    maxima: &[usize],
    split_value: Option<f64>,
    params: &ExtractParams,
) -> ClusterNode {
    let mut node = ClusterNode {
        range: (start, end),
        split_value,
        children: Vec::new(),
    };

    // Try the maxima inside (start, end), largest first. Splitting at `m`
    // yields left [start, m) and right [m, end) — the separating entry
    // *starts* the right region (its displayed reachability is the cost of
    // jumping into it).
    for (pos, &m) in maxima.iter().enumerate() {
        if m <= start || m >= end {
            continue;
        }
        let v = reach[m];
        let significant = if v.is_infinite() {
            true
        } else {
            let left_avg = avg_finite(reach, start, m);
            let right_avg = avg_finite(reach, m + 1, end);
            left_avg < params.significance_ratio * v && right_avg < params.significance_ratio * v
        };
        if !significant {
            continue;
        }
        let rest = &maxima[pos + 1..];
        let left_ok = m - start >= params.min_cluster_size;
        let right_ok = end - m >= params.min_cluster_size;
        if !left_ok && !right_ok {
            // Both flanks are noise-sized; treat the region as a leaf.
            continue;
        }
        if left_ok {
            node.children
                .push(build_node(reach, start, m, rest, Some(v), params));
        }
        if right_ok {
            node.children
                .push(build_node(reach, m, end, rest, Some(v), params));
        }
        break;
    }
    node
}

/// Builds the full cluster tree of a reachability plot.
///
/// The root covers the whole plot; leaves are the extracted clusters.
#[must_use]
pub fn cluster_tree(plot: &ReachabilityPlot, params: &ExtractParams) -> ClusterNode {
    let reach: Vec<f64> = plot.entries().iter().map(|e| e.reachability).collect();
    let maxima = local_maxima(&reach, params.min_cluster_size);
    build_node(&reach, 0, reach.len(), &maxima, None, params)
}

/// Reuse statistics of one [`cluster_tree_delta`] call.
///
/// `reused + rebuilt` can be smaller than `components`: a component that
/// never receives an exact-range recursion call (it was merged into a
/// neighbouring leaf because an infinite separator had two noise-sized
/// flanks) is neither reused nor rebuilt as a unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeDeltaStats {
    /// Components (maximal segments delimited by infinite reachability
    /// entries) in the plot.
    pub components: usize,
    /// Component subtrees copied from the cache without recursing.
    pub reused: usize,
    /// Component subtrees rebuilt by the full recursion.
    pub rebuilt: usize,
}

/// Cross-epoch cache of per-component extraction subtrees, the incremental
/// side of [`cluster_tree_delta`].
///
/// **Why component-level reuse is sound.** A reachability plot decomposes
/// into *components* at its infinite entries (every OPTICS ordering starts
/// each connected component with an infinite reachability). A finite local
/// maximum whose `±min_cluster_size` window would cross a component
/// boundary is dominated by the infinite boundary entry and never
/// qualifies, so every surviving finite maximum — index, value and
/// significance decision — is a pure function of its own component's
/// entries. Exact full-component ranges are only ever reached through
/// splits at infinite maxima (for `min_cluster_size ≥ 1`, finite maxima
/// are strictly interior to a component, so splitting at one never yields
/// a component-aligned range), and every such call sees the same effective
/// maxima subsequence (all finite maxima sort after every infinite one).
/// The subtree built for an exact full-component range is therefore a pure
/// function of the component's reachability bits, whether the component is
/// terminal (window clamping at the plot end differs from domination by a
/// following infinite entry), and the parameters — which is exactly the
/// cache key. Bit-identity of [`cluster_tree_delta`] against
/// [`cluster_tree`] is asserted over randomized plots and edits in
/// `tests/delta_properties.rs`.
#[derive(Debug, Default)]
pub struct TreeCache {
    /// Parameters the cached subtrees were built under
    /// (`significance_ratio` bits, `min_cluster_size`); entries are
    /// dropped when they change.
    params: Option<(u64, usize)>,
    /// `(component reachability bits, is terminal)` → subtree with ranges
    /// relative to the component start and a `None` root split value.
    entries: HashMap<(Vec<u64>, bool), ClusterNode>,
}

impl TreeCache {
    /// An empty cache; the first [`cluster_tree_delta`] call through it
    /// rebuilds every component.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached component subtrees currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Clone of `node` with every range rebased from component-start `from`
/// to `to`.
fn rebase(node: &ClusterNode, from: usize, to: usize) -> ClusterNode {
    ClusterNode {
        range: (node.range.0 - from + to, node.range.1 - from + to),
        split_value: node.split_value,
        children: node.children.iter().map(|c| rebase(c, from, to)).collect(),
    }
}

/// The component-reuse oracle threaded through the cached recursion.
struct ReuseOracle<'a> {
    /// Full component ranges, ascending; empty when reuse is disabled
    /// (`min_cluster_size == 0`, where finite maxima can touch component
    /// boundaries and the purity argument does not hold).
    components: &'a [(usize, usize)],
    reach: &'a [f64],
    prev: HashMap<(Vec<u64>, bool), ClusterNode>,
    fresh: HashMap<(Vec<u64>, bool), ClusterNode>,
    stats: TreeDeltaStats,
}

impl ReuseOracle<'_> {
    /// The cache key of the exact component `[start, end)`, if that range
    /// is one.
    fn component_key(&self, start: usize, end: usize) -> Option<(Vec<u64>, bool)> {
        let idx = self.components.binary_search_by_key(&start, |c| c.0).ok()?;
        if self.components[idx].1 != end {
            return None;
        }
        let bits: Vec<u64> = self.reach[start..end].iter().map(|r| r.to_bits()).collect();
        let terminal = end == self.reach.len();
        Some((bits, terminal))
    }

    fn lookup(
        &mut self,
        start: usize,
        end: usize,
        split_value: Option<f64>,
    ) -> Option<ClusterNode> {
        let key = self.component_key(start, end)?;
        let cached = self.fresh.get(&key).or_else(|| self.prev.get(&key))?;
        let mut node = rebase(cached, 0, start);
        node.split_value = split_value;
        self.stats.reused += 1;
        let relative = rebase(cached, 0, 0);
        self.fresh.insert(key, relative);
        Some(node)
    }

    fn record(&mut self, start: usize, end: usize, node: &ClusterNode) {
        if let Some(key) = self.component_key(start, end) {
            self.stats.rebuilt += 1;
            let mut relative = rebase(node, start, 0);
            relative.split_value = None;
            self.fresh.insert(key, relative);
        }
    }
}

/// [`build_node`] with the component-reuse oracle: identical recursion,
/// except that a call whose range is an exact full component is served
/// from (and recorded into) the cache.
fn build_node_cached(
    reach: &[f64],
    start: usize,
    end: usize,
    maxima: &[usize],
    split_value: Option<f64>,
    params: &ExtractParams,
    oracle: &mut ReuseOracle<'_>,
) -> ClusterNode {
    if let Some(node) = oracle.lookup(start, end, split_value) {
        return node;
    }
    let mut node = ClusterNode {
        range: (start, end),
        split_value,
        children: Vec::new(),
    };
    for (pos, &m) in maxima.iter().enumerate() {
        if m <= start || m >= end {
            continue;
        }
        let v = reach[m];
        let significant = if v.is_infinite() {
            true
        } else {
            let left_avg = avg_finite(reach, start, m);
            let right_avg = avg_finite(reach, m + 1, end);
            left_avg < params.significance_ratio * v && right_avg < params.significance_ratio * v
        };
        if !significant {
            continue;
        }
        let rest = &maxima[pos + 1..];
        let left_ok = m - start >= params.min_cluster_size;
        let right_ok = end - m >= params.min_cluster_size;
        if !left_ok && !right_ok {
            continue;
        }
        if left_ok {
            node.children.push(build_node_cached(
                reach,
                start,
                m,
                rest,
                Some(v),
                params,
                oracle,
            ));
        }
        if right_ok {
            node.children.push(build_node_cached(
                reach,
                m,
                end,
                rest,
                Some(v),
                params,
                oracle,
            ));
        }
        break;
    }
    oracle.record(start, end, &node);
    node
}

/// [`cluster_tree`] with cross-epoch component reuse: bit-identical output
/// (see [`TreeCache`] for the soundness argument), but components whose
/// reachability bits are unchanged since the previous call are copied from
/// `cache` instead of recursed into. After the call, `cache` holds exactly
/// the current plot's component subtrees (stale entries are dropped).
#[must_use]
pub fn cluster_tree_delta(
    plot: &ReachabilityPlot,
    params: &ExtractParams,
    cache: &mut TreeCache,
) -> (ClusterNode, TreeDeltaStats) {
    let reach: Vec<f64> = plot.entries().iter().map(|e| e.reachability).collect();
    let params_key = (params.significance_ratio.to_bits(), params.min_cluster_size);
    if cache.params != Some(params_key) {
        cache.entries.clear();
        cache.params = Some(params_key);
    }
    let maxima = local_maxima(&reach, params.min_cluster_size);

    // Component table: segments delimited by infinite entries.
    let mut components: Vec<(usize, usize)> = Vec::new();
    if !reach.is_empty() && params.min_cluster_size >= 1 {
        let mut starts = vec![0];
        for (m, r) in reach.iter().enumerate().skip(1) {
            if r.is_infinite() {
                starts.push(m);
            }
        }
        starts.push(reach.len());
        components = starts.windows(2).map(|w| (w[0], w[1])).collect();
    }

    let mut oracle = ReuseOracle {
        components: &components,
        reach: &reach,
        prev: std::mem::take(&mut cache.entries),
        fresh: HashMap::new(),
        stats: TreeDeltaStats {
            components: components.len(),
            reused: 0,
            rebuilt: 0,
        },
    };
    let root = build_node_cached(&reach, 0, reach.len(), &maxima, None, params, &mut oracle);
    cache.entries = oracle.fresh;
    (root, oracle.stats)
}

/// Extracts flat clusters: the leaf regions of the cluster tree, as lists
/// of the entries' opaque ids. Regions smaller than
/// `params.min_cluster_size` (possible only for the root of a tiny plot)
/// are dropped.
#[must_use]
pub fn extract_clusters(plot: &ReachabilityPlot, params: &ExtractParams) -> Vec<Vec<u64>> {
    let tree = cluster_tree(plot, params);
    tree.leaves()
        .into_iter()
        .filter(|(s, e)| e - s >= params.min_cluster_size)
        .map(|(s, e)| plot.entries()[s..e].iter().map(|p| p.id).collect())
        .collect()
}

/// Horizontal-cut extraction: the DBSCAN-equivalent flat clustering at a
/// fixed reachability threshold `t`. A cluster is a maximal run of entries
/// whose reachability is below `t`; the entry that exceeds `t` starts the
/// next candidate run (its own displayed reachability is the cost of
/// jumping to it, but the *following* entries decide whether a cluster
/// forms). Runs shorter than `min_size` are dropped as noise.
///
/// Simpler and more rigid than [`extract_clusters`] — it fixes one global
/// density level, which is exactly the single-resolution limitation
/// hierarchical extraction avoids — but useful for cross-checks against
/// DBSCAN and for callers who know their density scale.
#[must_use]
pub fn extract_clusters_at(plot: &ReachabilityPlot, t: f64, min_size: usize) -> Vec<Vec<u64>> {
    let mut clusters = Vec::new();
    let mut current: Vec<u64> = Vec::new();
    for e in plot.entries() {
        if e.reachability > t {
            if current.len() >= min_size {
                clusters.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
        // The boundary entry opens the next run: it is the first point of
        // the cluster reached by crossing the wall.
        current.push(e.id);
    }
    if current.len() >= min_size {
        clusters.push(current);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::PlotEntry;

    fn plot_of(reach: &[f64]) -> ReachabilityPlot {
        ReachabilityPlot::from_entries(
            reach
                .iter()
                .enumerate()
                .map(|(i, &r)| PlotEntry {
                    id: i as u64,
                    reachability: r,
                })
                .collect(),
        )
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn single_valley_is_one_cluster() {
        let plot = plot_of(&[INF, 0.1, 0.12, 0.1, 0.11, 0.1, 0.12]);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 7);
    }

    #[test]
    fn two_valleys_split_at_the_spike() {
        let reach = [INF, 0.1, 0.1, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        assert_eq!(clusters[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(clusters[1], vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn insignificant_bump_does_not_split() {
        // The bump (0.12) is not 1/0.75 times deeper than its flanks.
        let reach = [INF, 0.1, 0.1, 0.1, 0.12, 0.1, 0.1, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn nested_valleys_produce_nested_tree() {
        // Two fine clusters inside one coarse cluster, plus a separate
        // coarse cluster: plot [inf, A..., 1.0, B..., 10.0, C...].
        let mut reach = vec![INF];
        reach.extend(std::iter::repeat_n(0.1, 6));
        reach.push(1.0);
        reach.extend(std::iter::repeat_n(0.1, 6));
        reach.push(10.0);
        reach.extend(std::iter::repeat_n(0.3, 6));
        let plot = plot_of(&reach);
        let params = ExtractParams::with_min_size(4);
        let tree = cluster_tree(&plot, &params);
        // Root splits at 10.0 into [A+B] and [C]; [A+B] splits at 1.0.
        assert_eq!(tree.children.len(), 2);
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 3, "leaves {leaves:?}");
        let clusters = extract_clusters(&plot, &params);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].len(), 7); // inf + six 0.1 entries
        assert_eq!(clusters[1].len(), 7); // the 1.0 separator + six 0.1
        assert_eq!(clusters[2].len(), 7); // the 10.0 separator + six 0.3
    }

    #[test]
    fn infinite_separator_always_splits() {
        let reach = [INF, 0.5, 0.5, 0.5, 0.5, INF, 0.5, 0.5, 0.5, 0.5];
        let plot = plot_of(&reach);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn noise_sized_flank_is_dropped() {
        // Right flank after the spike has only 2 entries < min size 4.
        let reach = [INF, 0.1, 0.1, 0.1, 0.1, 0.1, 6.0, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(4));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 6, "left valley kept, tail dropped");
    }

    #[test]
    fn empty_plot_yields_no_clusters() {
        let plot = ReachabilityPlot::new();
        assert!(extract_clusters(&plot, &ExtractParams::default()).is_empty());
    }

    #[test]
    fn tiny_plot_below_min_size_yields_nothing() {
        let plot = plot_of(&[INF, 0.1]);
        assert!(extract_clusters(&plot, &ExtractParams::with_min_size(5)).is_empty());
    }

    #[test]
    fn horizontal_cut_splits_at_threshold() {
        let reach = [INF, 0.1, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_clusters_at(&plot, 1.0, 2);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2, 3]);
        assert_eq!(clusters[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn horizontal_cut_drops_small_runs() {
        let reach = [INF, 0.1, 0.1, 5.0, 0.1, 5.0, 0.1, 0.1, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_clusters_at(&plot, 1.0, 3);
        // The middle run (entries 3, 4) has size 2 < 3 and is dropped.
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 3);
        assert_eq!(clusters[1].len(), 4);
    }

    #[test]
    fn horizontal_cut_threshold_above_everything_is_one_cluster() {
        let reach = [INF, 0.5, 0.9, 0.5];
        let plot = plot_of(&reach);
        // INF always exceeds t, so the first entry re-opens the single run.
        let clusters = extract_clusters_at(&plot, 10.0, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    #[test]
    fn plateau_maxima_are_handled() {
        // A flat-topped separator; exactly one split must result.
        let reach = [INF, 0.1, 0.1, 0.1, 3.0, 3.0, 0.1, 0.1, 0.1];
        let plot = plot_of(&reach);
        let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(3));
        assert_eq!(clusters.len(), 2, "{clusters:?}");
    }
}
