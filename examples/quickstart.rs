//! Quickstart: summarize a static database with data bubbles and obtain a
//! hierarchical clustering from the summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2004);

    // 1. A labeled database: four Gaussian clusters plus 3 % uniform noise.
    let model = MixtureModel::new(
        2,
        vec![
            ClusterModel::new(vec![20.0, 20.0], 2.5),
            ClusterModel::new(vec![20.0, 80.0], 2.5),
            ClusterModel::new(vec![80.0, 20.0], 2.5),
            ClusterModel::new(vec![80.0, 80.0], 2.5),
        ],
        0.03,
        (0.0, 100.0),
    );
    let store = model.populate(20_000, &mut rng);
    println!(
        "database: {} points in {} dimensions",
        store.len(),
        store.dim()
    );

    // 2. Compress into 100 data bubbles. The triangle-inequality pruning of
    //    the paper's Section 3 is on by default; SearchStats records how
    //    much work it saved.
    let mut search = SearchStats::new();
    let bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(100), &mut rng, &mut search);
    println!(
        "summarized into {} bubbles: {} full distance computations, {} pruned, {} early-exited ({:.1} % saved)",
        bubbles.num_bubbles(),
        search.computed,
        search.pruned,
        search.partial,
        search.avoided_fraction() * 100.0
    );

    // 3. Hierarchical clustering on the summary only: OPTICS over 100
    //    bubbles instead of 20,000 points, then automatic cluster
    //    extraction from the reachability plot.
    let outcome = pipeline::cluster_bubbles(&bubbles, 10, 200);
    println!("extracted {} clusters:", outcome.clusters.len());
    for (i, cluster) in outcome.clusters.iter().enumerate() {
        println!("  cluster {i}: {} points", cluster.len());
    }

    // 4. Score against the generator's ground truth.
    let f = fscore(&store, &outcome.clusters);
    println!("F-score vs. ground truth: {:.4}", f.overall);
    println!(
        "compactness (avg squared member-to-rep distance): {:.3}",
        compactness_per_point(&bubbles, &store)
    );
}
