//! Data bubbles vs. BIRCH clustering features on the same database.
//!
//! The paper chooses data bubbles over BIRCH's CFs because bubbles were
//! shown to serve hierarchical clustering much better. This example puts
//! both summarizations through the identical OPTICS → extraction pipeline
//! and scores them against ground truth. It also shows the practical
//! trouble with BIRCH's global threshold: the number of summaries is an
//! emergent property of `T`, not a chosen compression rate.
//!
//! ```text
//! cargo run --release --example summarizer_comparison
//! ```

use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // Clusters of very different densities — the regime where a global
    // spatial threshold hurts.
    let model = MixtureModel::new(
        2,
        vec![
            ClusterModel::new(vec![20.0, 20.0], 1.0), // dense
            ClusterModel::new(vec![20.0, 80.0], 1.0), // dense
            ClusterModel::new(vec![75.0, 50.0], 6.0), // diffuse
        ],
        0.02,
        (0.0, 100.0),
    );
    let store = model.populate(15_000, &mut rng);
    println!(
        "database: {} points, 3 clusters of mixed density",
        store.len()
    );

    // --- Data bubbles: compression rate chosen directly. -----------------
    let mut search = SearchStats::new();
    let bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(120), &mut rng, &mut search);
    let outcome = pipeline::cluster_bubbles(&bubbles, 10, 150);
    let f_bubbles = fscore(&store, &outcome.clusters);
    println!();
    println!(
        "data bubbles : {:>4} summaries -> {} clusters, F = {:.4}",
        bubbles.num_bubbles(),
        outcome.clusters.len(),
        f_bubbles.overall
    );

    // --- BIRCH CF-tree at several thresholds. ----------------------------
    // BIRCH does not track point memberships, so the expansion uses
    // synthetic ids and the F-score is computed at the summary level by
    // assigning every CF its centroid's true cluster (the best case for
    // BIRCH).
    for threshold in [2.0, 4.0, 8.0] {
        let mut tree = CfTree::new(2, 8, 16, threshold);
        for (_, p, _) in store.iter() {
            tree.insert(p);
        }
        let leaves = tree.leaf_entries();
        let outcome = pipeline::cluster_summaries(&leaves, 10, 150, |i| {
            let n = leaves[i].n();
            (0..n).map(move |j| (i as u64) << 32 | j)
        });
        // Summary-level score: label each synthetic id by the generating
        // cluster nearest to its CF centroid.
        let centers = [vec![20.0, 20.0], vec![20.0, 80.0], vec![75.0, 50.0]];
        let mut correct = 0usize;
        let mut total = 0usize;
        for cluster in &outcome.clusters {
            let mut counts = [0usize; 3];
            for &id in cluster {
                let leaf = (id >> 32) as usize;
                let c = leaves[leaf].rep();
                let nearest = (0..3)
                    .min_by(|&a, &b| {
                        idb_geometry::dist(&c, &centers[a])
                            .partial_cmp(&idb_geometry::dist(&c, &centers[b]))
                            .unwrap()
                    })
                    .unwrap();
                counts[nearest] += 1;
            }
            correct += counts.iter().max().unwrap();
            total += cluster.len();
        }
        let purity = correct as f64 / total.max(1) as f64;
        println!(
            "BIRCH T={threshold:<4}: {:>4} summaries -> {} clusters, purity = {:.4}",
            leaves.len(),
            outcome.clusters.len(),
            purity
        );
    }

    println!();
    println!(
        "note how the CF count swings with T while the bubble count is the chosen \
         compression rate — Section 4.1's argument against spatial-extent thresholds"
    );
}
