//! Running the pipeline on your own data: CSV in, clusters out.
//!
//! This example writes a small CSV (standing in for an external dataset),
//! loads it back through `idb_synth::io`, summarizes, clusters and renders
//! the reachability plot in the terminal. Point it at a real file with
//!
//! ```text
//! cargo run --release --example custom_data -- path/to/points.csv
//! ```
//!
//! Format: one point per row, comma-separated coordinates, optional final
//! label column (integer or `noise`). The example's synthetic file uses
//! labels; pass an unlabeled file and the F-score is simply skipped.

use incremental_data_bubbles::clustering::render_reachability;
use incremental_data_bubbles::prelude::*;
use incremental_data_bubbles::synth::io::{load_csv, save_csv};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    let path: PathBuf = match std::env::args().nth(1) {
        Some(p) => p.into(),
        None => {
            // No file given: manufacture one, as documentation of the format.
            let model = MixtureModel::new(
                3,
                vec![
                    ClusterModel::new(vec![10.0, 10.0, 10.0], 1.5),
                    ClusterModel::new(vec![40.0, 40.0, 10.0], 1.5),
                    ClusterModel::new(vec![10.0, 40.0, 40.0], 1.5),
                ],
                0.05,
                (0.0, 50.0),
            );
            let store = model.populate(6_000, &mut rng);
            let path = std::env::temp_dir().join("idb_custom_data_example.csv");
            save_csv(&store, &path).expect("write example csv");
            println!(
                "no input file given; wrote a demo dataset to {}",
                path.display()
            );
            path
        }
    };

    let store = match load_csv(&path, true) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to load {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "loaded {} points in {} dimensions from {}",
        store.len(),
        store.dim(),
        path.display()
    );

    if store.len() < 8 {
        eprintln!(
            "need at least 8 points to summarize; {} has {}",
            path.display(),
            store.len()
        );
        std::process::exit(1);
    }
    // One bubble per ~100 points, at least 20 (but never more than half
    // the database — tiny files would otherwise request more seeds than
    // points), at most 500.
    let num_bubbles = (store.len() / 100).clamp(20, 500).min(store.len() / 2);
    let mut search = SearchStats::new();
    let bubbles = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(num_bubbles),
        &mut rng,
        &mut search,
    );
    println!(
        "{} bubbles built; {:.1} % of distance computations pruned",
        bubbles.num_bubbles(),
        search.pruned_fraction() * 100.0
    );

    let min_cluster = (store.len() / 100).max(10);
    let outcome = pipeline::cluster_bubbles(&bubbles, 10, min_cluster);
    println!("\nreachability plot (valleys are clusters):");
    print!("{}", render_reachability(&outcome.plot, 72, 9));
    println!("\n{} clusters:", outcome.clusters.len());
    for (i, c) in outcome.clusters.iter().enumerate() {
        println!("  cluster {i}: {} points", c.len());
    }

    let labeled = store.iter().any(|(_, _, l)| l.is_some());
    if labeled {
        let f = fscore(&store, &outcome.clusters);
        println!("\nF-score vs. the file's label column: {:.4}", f.overall);
    }
}
