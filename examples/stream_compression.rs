//! A data stream as a degenerate incremental database (paper, Section 1):
//! a sliding window over a drifting stream, maintained by incremental data
//! bubbles.
//!
//! The stream's distribution drifts continuously. Each step expires the
//! oldest window slice and inserts a fresh one; the bubble population
//! follows the drift via its ordinary insert/delete statistics updates
//! plus merge/split repair — no rebuild ever happens.
//!
//! ```text
//! cargo run --release --example stream_compression
//! ```

use incremental_data_bubbles::prelude::*;
use incremental_data_bubbles::synth::gauss::gaussian_point;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

const WINDOW_SLICES: usize = 10;
const SLICE: usize = 2_000;

/// The stream source: two sources, one fixed, one orbiting.
fn draw_slice(t: f64, rng: &mut StdRng) -> Vec<(Vec<f64>, Label)> {
    let orbit = [50.0 + 35.0 * t.cos(), 50.0 + 35.0 * t.sin()];
    (0..SLICE)
        .map(|i| {
            if i % 2 == 0 {
                (gaussian_point(rng, &[50.0, 50.0], 2.0), Some(0))
            } else {
                (gaussian_point(rng, &orbit, 2.0), Some(1))
            }
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = PointStore::new(2);
    let mut window: VecDeque<Vec<PointId>> = VecDeque::new();

    // Fill the initial window.
    for s in 0..WINDOW_SLICES {
        let t = s as f64 * 0.05;
        let ids: Vec<PointId> = draw_slice(t, &mut rng)
            .into_iter()
            .map(|(p, label)| store.insert(&p, label))
            .collect();
        window.push_back(ids);
    }

    let mut search = SearchStats::new();
    let mut bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(80), &mut rng, &mut search);
    println!(
        "window: {} slices x {} points = {} live points, {} bubbles",
        WINDOW_SLICES,
        SLICE,
        store.len(),
        bubbles.num_bubbles()
    );
    println!();
    println!("step  orbit-at        clusters  F-score  rebuilt  pruned%");

    for step in 0..20 {
        let t = (WINDOW_SLICES + step) as f64 * 0.05;
        // Expire the oldest slice, ingest a new one — one Batch.
        let expired = window.pop_front().expect("window is full");
        let batch = Batch {
            deletes: expired,
            inserts: draw_slice(t, &mut rng),
        };
        let mut step_search = SearchStats::new();
        let new_ids = bubbles.apply_batch(&mut store, &batch, &mut step_search);
        let report = bubbles.maintain(&store, &mut rng, &mut step_search);
        window.push_back(new_ids);

        let outcome = pipeline::cluster_bubbles(&bubbles, 10, 400);
        let f = fscore(&store, &outcome.clusters);
        let orbit = [50.0 + 35.0 * t.cos(), 50.0 + 35.0 * t.sin()];
        println!(
            "{step:>4}  ({:>5.1},{:>5.1})  {:>8}  {:>7.4}  {:>7}  {:>6.1}",
            orbit[0],
            orbit[1],
            outcome.clusters.len(),
            f.overall,
            report.rebuilt_bubbles,
            step_search.pruned_fraction() * 100.0
        );
    }

    println!();
    println!(
        "the moving source stays tracked: the window summary is never rebuilt, \
         only {} bubbles exist at any time",
        bubbles.num_bubbles()
    );
}
