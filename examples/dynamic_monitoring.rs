//! Dynamic monitoring: keep an up-to-date hierarchical clustering of a
//! changing database — the paper's motivating application (detecting
//! changing purchase patterns, fraud, etc.).
//!
//! A new cluster gradually appears while the database churns. After every
//! batch the incremental maintainer adapts (statistics updates + the
//! merge/split repair), and the clustering is re-derived from the bubbles
//! alone. For contrast, the same batches are replayed against a
//! complete-rebuild baseline.
//!
//! ```text
//! cargo run --release --example dynamic_monitoring
//! ```

use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = ScenarioSpec::named(ScenarioKind::Appear, 2, 30_000, 0.05);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);

    let mut search = SearchStats::new();
    let mut bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(150), &mut rng, &mut search);
    println!(
        "initial: {} points, {} bubbles, {} clusters",
        store.len(),
        bubbles.num_bubbles(),
        pipeline::cluster_bubbles(&bubbles, 10, 300).clusters.len()
    );
    println!();
    println!("batch  clusters  F-score  rebuilt  inc-ms  rebuild-ms");

    for batch_no in 0..12 {
        let batch = engine.plan(&mut rng);

        // Incremental path: apply + maintain.
        let t0 = Instant::now();
        let mut batch_search = SearchStats::new();
        let new_ids = bubbles.apply_batch(&mut store, &batch, &mut batch_search);
        let report = bubbles.maintain(&store, &mut rng, &mut batch_search);
        let inc_ms = t0.elapsed().as_secs_f64() * 1e3;
        engine.confirm(&new_ids);

        // Complete-rebuild baseline on the same store contents.
        let t1 = Instant::now();
        let mut rebuild_search = SearchStats::new();
        let rebuilt = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(150).with_seed_search(SeedSearch::Brute),
            &mut rng,
            &mut rebuild_search,
        );
        let rebuild_ms = t1.elapsed().as_secs_f64() * 1e3;
        drop(rebuilt);

        let outcome = pipeline::cluster_bubbles(&bubbles, 10, 300);
        let f = fscore(&store, &outcome.clusters);
        println!(
            "{batch_no:>5}  {:>8}  {:>7.4}  {:>7}  {inc_ms:>6.1}  {rebuild_ms:>10.1}",
            outcome.clusters.len(),
            f.overall,
            report.rebuilt_bubbles,
        );
    }

    println!();
    println!(
        "appearing cluster grew to {} points and is tracked without ever rebuilding \
         the full summarization",
        engine.cluster_size(3)
    );
}
